"""Generic iterative data flow framework.

The paper frames its contribution as a (non-standard) instance of
classical data flow analysis, citing Cooper & Torczon.  This module
implements the classical machinery: a direction, a meet operator, a
per-block transfer function, and a worklist fixed-point solver.  The
thermal analysis of :mod:`repro.core.tdfa` reuses the same solver shape
but adds δ-convergence and an iteration budget, because its lattice
(discretized temperature fields) has no finite height.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Generic, TypeVar

from ..errors import DataflowError
from ..ir.cfg import reverse_postorder
from ..ir.function import Function

T = TypeVar("T")


class Direction(enum.Enum):
    """Propagation direction of an analysis."""

    FORWARD = "forward"
    BACKWARD = "backward"


class DataflowProblem(Generic[T]):
    """Specification of a classical data flow problem.

    Subclasses define the lattice implicitly through :meth:`meet`,
    :meth:`boundary`, :meth:`initial` and :meth:`transfer`.  Values must
    support ``==`` for the fixed-point test.
    """

    direction: Direction = Direction.FORWARD

    def boundary(self, function: Function) -> T:
        """Value at the entry (forward) or the exits (backward)."""
        raise NotImplementedError

    def initial(self, function: Function) -> T:
        """Optimistic initial value for interior blocks."""
        raise NotImplementedError

    def meet(self, values: list[T]) -> T:
        """Combine predecessor (forward) or successor (backward) values."""
        raise NotImplementedError

    def transfer(self, function: Function, block_name: str, value: T) -> T:
        """Propagate *value* through the named block."""
        raise NotImplementedError


@dataclass
class DataflowResult(Generic[T]):
    """Solution of a data flow problem.

    ``in_values``/``out_values`` are keyed by block name; for backward
    problems ``in_values`` still means "value at block entry" (i.e. the
    *output* of the backward transfer).
    """

    in_values: dict[str, T]
    out_values: dict[str, T]
    iterations: int = 0

    def entry(self, block: str) -> T:
        return self.in_values[block]

    def exit(self, block: str) -> T:
        return self.out_values[block]


def solve(
    function: Function,
    problem: DataflowProblem[T],
    max_iterations: int = 10_000,
) -> DataflowResult[T]:
    """Run the round-robin worklist solver to a fixed point.

    Blocks are visited in reverse postorder for forward problems and
    postorder for backward problems, which gives the textbook
    near-linear convergence for reducible CFGs.

    Raises
    ------
    DataflowError
        If no fixed point is reached within *max_iterations* sweeps.
        Classical bit-vector problems always converge; this guard exists
        for user-supplied problems with ill-behaved lattices.
    """
    rpo = reverse_postorder(function)
    order = rpo if problem.direction is Direction.FORWARD else list(reversed(rpo))
    preds = function.predecessors_map()
    succs = {name: function.block(name).successors() for name in function.blocks}

    if problem.direction is Direction.FORWARD:
        sources = preds
    else:
        sources = succs

    boundary_blocks: set[str]
    if problem.direction is Direction.FORWARD:
        boundary_blocks = {function.entry.name}
    else:
        # May be empty (an infinite loop with no exit block): every block
        # then starts from its optimistic initial value.
        boundary_blocks = {name for name in rpo if not succs[name]}

    in_values: dict[str, T] = {}
    out_values: dict[str, T] = {}
    boundary = problem.boundary(function)
    for name in order:
        in_values[name] = problem.initial(function)
        out_values[name] = problem.initial(function)

    iterations = 0
    changed = True
    while changed:
        iterations += 1
        if iterations > max_iterations:
            raise DataflowError(
                f"dataflow solve did not converge after {max_iterations} sweeps"
            )
        changed = False
        for name in order:
            incoming = [
                out_values[s] for s in sources[name] if s in out_values
            ]
            if name in boundary_blocks:
                merged = problem.meet(incoming + [boundary]) if incoming else boundary
            elif incoming:
                merged = problem.meet(incoming)
            else:
                merged = problem.initial(function)
            new_out = problem.transfer(function, name, merged)
            if merged != in_values[name] or new_out != out_values[name]:
                in_values[name] = merged
                out_values[name] = new_out
                changed = True

    if problem.direction is Direction.BACKWARD:
        # Present results in program order: in_values = at block entry.
        return DataflowResult(in_values=out_values, out_values=in_values,
                              iterations=iterations)
    return DataflowResult(in_values=in_values, out_values=out_values,
                          iterations=iterations)


class SetUnionProblem(DataflowProblem[frozenset]):
    """Convenience base for may-problems over frozensets (meet = union)."""

    def boundary(self, function: Function) -> frozenset:
        return frozenset()

    def initial(self, function: Function) -> frozenset:
        return frozenset()

    def meet(self, values: list[frozenset]) -> frozenset:
        result: frozenset = frozenset()
        for value in values:
            result |= value
        return result


class SetIntersectionProblem(DataflowProblem[frozenset]):
    """Convenience base for must-problems (meet = intersection).

    ``initial`` returns the universal set, supplied by subclasses via
    :meth:`universe`.
    """

    def universe(self, function: Function) -> frozenset:
        raise NotImplementedError

    def boundary(self, function: Function) -> frozenset:
        return frozenset()

    def initial(self, function: Function) -> frozenset:
        return self.universe(function)

    def meet(self, values: list[frozenset]) -> frozenset:
        if not values:
            return frozenset()
        result = values[0]
        for value in values[1:]:
            result &= value
        return result
