"""Available-expressions analysis (classical must-problem).

Included both for completeness of the data-flow substrate and as the
enabling analysis for the small CSE cleanup pass that keeps optimization
outputs comparable (copy insertion can create redundant expressions).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.function import Function
from ..ir.instructions import BINARY_OPS, COMMUTATIVE_OPS, COMPARE_OPS, Instruction
from ..ir.values import Value
from .framework import DataflowResult, Direction, SetIntersectionProblem, solve

#: An expression: (opcode name, operand reprs) — canonicalized for commutativity.
Expression = tuple[str, tuple[str, ...]]


def expression_of(inst: Instruction) -> Expression | None:
    """The pure expression computed by *inst*, or ``None`` if impure.

    Loads are not expressions (memory may change); ``li``/``copy`` are
    excluded because they are handled by constant/copy propagation.
    """
    if inst.opcode in BINARY_OPS or inst.opcode in COMPARE_OPS:
        ops = tuple(str(op) for op in inst.operands)
        if inst.opcode in COMMUTATIVE_OPS:
            ops = tuple(sorted(ops))
        return (inst.opcode.value, ops)
    return None


def _expression_uses(expr: Expression, reg: Value) -> bool:
    return str(reg) in expr[1]


class AvailableExpressionsProblem(SetIntersectionProblem):
    """Forward must-analysis over frozensets of expressions."""

    direction = Direction.FORWARD

    def universe(self, function: Function) -> frozenset:
        exprs = set()
        for inst in function.instructions():
            expr = expression_of(inst)
            if expr is not None:
                exprs.add(expr)
        return frozenset(exprs)

    def transfer(self, function: Function, block_name: str, value: frozenset) -> frozenset:
        available = set(value)
        for inst in function.block(block_name).instructions:
            for d in inst.defs():
                available = {e for e in available if not _expression_uses(e, d)}
            expr = expression_of(inst)
            if expr is not None:
                available.add(expr)
        return frozenset(available)


@dataclass
class AvailabilityInfo:
    """Solved available expressions per block boundary."""

    function: Function
    avail_in: dict[str, frozenset]
    avail_out: dict[str, frozenset]

    def available_at_entry(self, block_name: str) -> frozenset:
        return self.avail_in[block_name]


def available_expressions(function: Function) -> AvailabilityInfo:
    """Solve available expressions for *function*."""
    result: DataflowResult[frozenset] = solve(function, AvailableExpressionsProblem())
    return AvailabilityInfo(
        function=function,
        avail_in=dict(result.in_values),
        avail_out=dict(result.out_values),
    )
