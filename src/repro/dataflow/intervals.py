"""Linear instruction numbering and live intervals.

The linear-scan register allocator and the thermal access-weighting both
view the function as a single instruction sequence.  A register's live
interval is the smallest ``[start, end)`` range of linear indices
covering every point where it is live; access positions (each def and
use index) are kept alongside, since access *density* — not just
lifetime — is what heats register file cells (paper §1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.cfg import linearize
from ..ir.function import Function
from ..ir.instructions import Instruction
from ..ir.values import Value
from .liveness import LivenessInfo, liveness


@dataclass
class LiveInterval:
    """Live interval of one register over the linear order."""

    reg: Value
    start: int
    end: int  # exclusive
    accesses: list[int] = field(default_factory=list)

    @property
    def length(self) -> int:
        return self.end - self.start

    @property
    def access_count(self) -> int:
        return len(self.accesses)

    @property
    def density(self) -> float:
        """Accesses per covered instruction slot — the power-density proxy."""
        return self.access_count / max(1, self.length)

    def overlaps(self, other: "LiveInterval") -> bool:
        return self.start < other.end and other.start < self.end

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LiveInterval {self.reg} [{self.start},{self.end}) x{self.access_count}>"


@dataclass
class LinearOrder:
    """A fixed linearization of a function's instructions."""

    function: Function
    block_order: list[str]
    #: (block name, index-in-block) for each linear position
    positions: list[tuple[str, int]]
    #: block name -> linear index of its first instruction
    block_start: dict[str, int]

    def instruction_at(self, index: int) -> Instruction:
        name, i = self.positions[index]
        return self.function.block(name).instructions[i]

    def index_of(self, block_name: str, index_in_block: int) -> int:
        return self.block_start[block_name] + index_in_block

    def __len__(self) -> int:
        return len(self.positions)

    def __iter__(self):
        for idx in range(len(self.positions)):
            yield idx, self.instruction_at(idx)


def linear_order(function: Function) -> LinearOrder:
    """Linearize the reachable blocks of *function* in reverse postorder."""
    block_order = linearize(function)
    positions: list[tuple[str, int]] = []
    block_start: dict[str, int] = {}
    for name in block_order:
        block_start[name] = len(positions)
        for i in range(len(function.block(name).instructions)):
            positions.append((name, i))
    return LinearOrder(
        function=function,
        block_order=block_order,
        positions=positions,
        block_start=block_start,
    )


def live_intervals(
    function: Function,
    order: LinearOrder | None = None,
    info: LivenessInfo | None = None,
) -> dict[Value, LiveInterval]:
    """Compute a conservative live interval for every register.

    The interval of a register spans from the first linear point where it
    is defined or live to the last point where it is live or used.  With
    reverse-postorder layout this is the classical "extend across the
    loop" approximation used by linear scan.
    """
    order = order or linear_order(function)
    info = info or liveness(function)

    starts: dict[Value, int] = {}
    ends: dict[Value, int] = {}
    accesses: dict[Value, list[int]] = {}

    def note(reg: Value, index: int, is_access: bool) -> None:
        if reg not in starts:
            starts[reg] = index
            ends[reg] = index + 1
        else:
            starts[reg] = min(starts[reg], index)
            ends[reg] = max(ends[reg], index + 1)
        if is_access:
            accesses.setdefault(reg, []).append(index)

    # Parameters are live from position 0.
    for p in function.params:
        note(p, 0, is_access=False)

    for name in order.block_order:
        before = info.live_before(name)
        after = info.live_after(name)
        base = order.block_start[name]
        block = function.block(name)
        for i, inst in enumerate(block.instructions):
            idx = base + i
            for reg in before[i]:
                note(reg, idx, is_access=False)
            for reg in after[i]:
                note(reg, idx, is_access=False)
            for reg in inst.uses():
                note(reg, idx, is_access=True)
            for reg in inst.defs():
                note(reg, idx, is_access=True)

    return {
        reg: LiveInterval(
            reg=reg,
            start=starts[reg],
            end=ends[reg],
            accesses=sorted(accesses.get(reg, [])),
        )
        for reg in starts
    }


def pressure_profile(
    function: Function, order: LinearOrder | None = None
) -> list[int]:
    """Number of live registers at each linear point (for pressure sweeps)."""
    order = order or linear_order(function)
    intervals = live_intervals(function, order)
    profile = [0] * (len(order) + 1)
    for interval in intervals.values():
        for idx in range(interval.start, interval.end):
            if idx < len(profile):
                profile[idx] += 1
    return profile
