"""Classical data flow analyses and the generic fixed-point framework."""

from .available import (
    AvailabilityInfo,
    AvailableExpressionsProblem,
    available_expressions,
    expression_of,
)
from .bitwidth import BitwidthInfo, Interval, bitwidth_analysis
from .defuse import DefUseChains, UseSite, def_use_chains
from .framework import (
    DataflowProblem,
    DataflowResult,
    Direction,
    SetIntersectionProblem,
    SetUnionProblem,
    solve,
)
from .freq import StaticProfile, edge_probabilities, static_profile
from .intervals import (
    LinearOrder,
    LiveInterval,
    linear_order,
    live_intervals,
    pressure_profile,
)
from .liveness import LivenessInfo, LivenessProblem, liveness
from .reaching import DefSite, ReachingInfo, reaching_definitions

__all__ = [
    "DataflowProblem",
    "DataflowResult",
    "Direction",
    "SetUnionProblem",
    "SetIntersectionProblem",
    "solve",
    "LivenessInfo",
    "LivenessProblem",
    "liveness",
    "ReachingInfo",
    "DefSite",
    "reaching_definitions",
    "DefUseChains",
    "UseSite",
    "def_use_chains",
    "AvailabilityInfo",
    "AvailableExpressionsProblem",
    "available_expressions",
    "expression_of",
    "BitwidthInfo",
    "Interval",
    "bitwidth_analysis",
    "LinearOrder",
    "LiveInterval",
    "linear_order",
    "live_intervals",
    "pressure_profile",
    "StaticProfile",
    "edge_probabilities",
    "static_profile",
]
