"""Live-variable analysis.

Liveness is the paper's own example of a simple data flow lattice (§3:
"a single bit of information per variable") and the prerequisite for
everything downstream: interference graphs, live intervals, and the
definition of "interfering variables" in the motivating example (§2:
two variables interfere if their lifetimes overlap).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.function import Function
from ..ir.values import Value
from .framework import DataflowResult, Direction, SetUnionProblem, solve


class LivenessProblem(SetUnionProblem):
    """Backward may-analysis: a register is live if some path uses it later."""

    direction = Direction.BACKWARD

    def transfer(self, function: Function, block_name: str, value: frozenset) -> frozenset:
        live = set(value)
        for inst in reversed(function.block(block_name).instructions):
            for d in inst.defs():
                live.discard(d)
            live.update(inst.uses())
        return frozenset(live)


@dataclass
class LivenessInfo:
    """Solved liveness with per-block and per-instruction queries."""

    function: Function
    live_in: dict[str, frozenset]
    live_out: dict[str, frozenset]

    def live_before(self, block_name: str) -> list[set[Value]]:
        """Live sets immediately *before* each instruction of the block."""
        before, _after = self._per_instruction(block_name)
        return before

    def live_after(self, block_name: str) -> list[set[Value]]:
        """Live sets immediately *after* each instruction of the block."""
        _before, after = self._per_instruction(block_name)
        return after

    def _per_instruction(self, block_name: str) -> tuple[list[set[Value]], list[set[Value]]]:
        block = self.function.block(block_name)
        n = len(block.instructions)
        before: list[set[Value]] = [set() for _ in range(n)]
        after: list[set[Value]] = [set() for _ in range(n)]
        live = set(self.live_out[block_name])
        for i in range(n - 1, -1, -1):
            inst = block.instructions[i]
            after[i] = set(live)
            for d in inst.defs():
                live.discard(d)
            live.update(inst.uses())
            before[i] = set(live)
        return before, after

    def max_pressure(self) -> int:
        """Maximum number of simultaneously live registers anywhere.

        This is the "register pressure" of §2's chessboard caveat: the
        chessboard policy needs pressure ≤ half the register file.
        """
        peak = 0
        for name in self.function.blocks:
            for live in self.live_before(name):
                peak = max(peak, len(live))
            for live in self.live_after(name):
                peak = max(peak, len(live))
        return peak


def liveness(function: Function) -> LivenessInfo:
    """Solve live-variable analysis for *function*."""
    result: DataflowResult[frozenset] = solve(function, LivenessProblem())
    return LivenessInfo(
        function=function,
        live_in=dict(result.in_values),
        live_out=dict(result.out_values),
    )
