"""Def-use chains built on reaching definitions.

The critical-variable optimizations (spill, split, promote) need to know
where each variable is defined and used; this module gives them an
indexed view without re-walking the IR.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from ..ir.function import Function
from ..ir.values import Value
from .reaching import DefSite, reaching_definitions

#: A use site: (block name, instruction index, operand position).
UseSite = tuple[str, int, int]


@dataclass
class DefUseChains:
    """Maps registers to their definition and use sites, and links them."""

    function: Function
    defs: dict[Value, set[DefSite]] = field(default_factory=dict)
    uses: dict[Value, set[UseSite]] = field(default_factory=dict)
    #: def site -> use sites reached by that def
    du: dict[tuple[Value, DefSite], set[UseSite]] = field(default_factory=dict)

    def def_count(self, reg: Value) -> int:
        return len(self.defs.get(reg, ()))

    def use_count(self, reg: Value) -> int:
        return len(self.uses.get(reg, ()))

    def access_count(self, reg: Value) -> int:
        """Static accesses = defs + uses (the RF power-density proxy)."""
        return self.def_count(reg) + self.use_count(reg)

    def uses_of_def(self, reg: Value, site: DefSite) -> set[UseSite]:
        return self.du.get((reg, site), set())

    def is_dead(self, reg: Value) -> bool:
        """True when the register is defined but never used."""
        return self.def_count(reg) > 0 and self.use_count(reg) == 0


def def_use_chains(function: Function) -> DefUseChains:
    """Compute def/use sites and def→use links for every register."""
    reach = reaching_definitions(function)
    chains = DefUseChains(function=function)
    defs: dict[Value, set[DefSite]] = defaultdict(set)
    uses: dict[Value, set[UseSite]] = defaultdict(set)
    du: dict[tuple[Value, DefSite], set[UseSite]] = defaultdict(set)

    for name, block in function.blocks.items():
        for i, inst in enumerate(block.instructions):
            for pos, op in enumerate(inst.operands):
                if op.is_register:
                    use_site: UseSite = (name, i, pos)
                    uses[op].add(use_site)
                    for def_site in reach.defs_reaching(name, i, op):
                        du[(op, def_site)].add(use_site)
            for d in inst.defs():
                defs[d].add((name, i))

    chains.defs = dict(defs)
    chains.uses = dict(uses)
    chains.du = dict(du)
    return chains
