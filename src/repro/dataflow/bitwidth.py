"""Bitwidth analysis (after Stephenson et al., PLDI 2000).

The paper's §3 uses bitwidth analysis as its example of a data flow
analysis with a richer lattice than liveness — an interval per variable
instead of one bit.  We implement the forward interval analysis with
widening; the derived bitwidth is the number of bits needed to represent
every value in the interval (two's complement for negative bounds).

This analysis is also genuinely used by the reproduction: the energy
model can scale access energy by operand bitwidth (narrow operands
toggle fewer bitlines), one of the "technology coefficients linked to
high-level information" the paper alludes to in §4.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.cfg import reverse_postorder
from ..ir.function import Function
from ..ir.instructions import Instruction, Opcode
from ..ir.values import Constant, Value

#: Machine word bounds (32-bit two's complement).
WORD_MIN = -(2**31)
WORD_MAX = 2**31 - 1

#: Sweeps before widening kicks in.
_WIDEN_AFTER = 4


@dataclass(frozen=True)
class Interval:
    """A closed integer interval ``[lo, hi]`` clamped to the machine word."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "lo", max(WORD_MIN, min(self.lo, WORD_MAX)))
        object.__setattr__(self, "hi", max(WORD_MIN, min(self.hi, WORD_MAX)))

    def hull(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def widen(self, previous: "Interval") -> "Interval":
        """Jump growing bounds to the word limits (standard widening)."""
        lo = self.lo if self.lo >= previous.lo else WORD_MIN
        hi = self.hi if self.hi <= previous.hi else WORD_MAX
        return Interval(lo, hi)

    @property
    def bitwidth(self) -> int:
        """Bits needed to represent every value in the interval."""
        if self.lo >= 0:
            return max(1, self.hi.bit_length())
        # Two's complement: need sign bit plus magnitude bits.
        neg_bits = (abs(self.lo) - 1).bit_length() if self.lo < 0 else 0
        pos_bits = self.hi.bit_length() if self.hi > 0 else 0
        return max(neg_bits, pos_bits) + 1

    def __str__(self) -> str:
        return f"[{self.lo}, {self.hi}]"


TOP = Interval(WORD_MIN, WORD_MAX)
BOOL = Interval(0, 1)

#: State type: register -> interval (missing = undefined / bottom).
IntervalMap = dict[Value, Interval]


def _operand_interval(op: Value, state: IntervalMap) -> Interval:
    if isinstance(op, Constant):
        return Interval(op.value, op.value)
    return state.get(op, TOP)


def _eval(inst: Instruction, state: IntervalMap) -> Interval | None:
    """Interval of the instruction's result, or ``None`` for no result."""
    if inst.dest is None:
        return None
    op = inst.opcode
    if op is Opcode.LI:
        assert isinstance(inst.operands[0], Constant)
        v = inst.operands[0].value
        return Interval(v, v)
    if op is Opcode.COPY:
        return _operand_interval(inst.operands[0], state)
    if op in (Opcode.LOAD, Opcode.RELOAD):
        return TOP
    if op in (Opcode.CMPEQ, Opcode.CMPNE, Opcode.CMPLT, Opcode.CMPLE,
              Opcode.CMPGT, Opcode.CMPGE):
        return BOOL
    if op is Opcode.NEG:
        a = _operand_interval(inst.operands[0], state)
        return Interval(-a.hi, -a.lo)
    if op is Opcode.NOT:
        a = _operand_interval(inst.operands[0], state)
        return Interval(~a.hi, ~a.lo)
    a = _operand_interval(inst.operands[0], state)
    b = _operand_interval(inst.operands[1], state)
    if op is Opcode.ADD:
        return Interval(a.lo + b.lo, a.hi + b.hi)
    if op is Opcode.SUB:
        return Interval(a.lo - b.hi, a.hi - b.lo)
    if op is Opcode.MUL:
        corners = [a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi]
        return Interval(min(corners), max(corners))
    if op in (Opcode.DIV, Opcode.REM):
        # Conservative: magnitude bounded by the dividend's.
        bound = max(abs(a.lo), abs(a.hi))
        return Interval(-bound, bound)
    if op is Opcode.AND:
        if a.lo >= 0 and b.lo >= 0:
            return Interval(0, min(a.hi, b.hi))
        # Masking with a non-negative operand bounds the result by the
        # mask in two's complement, whatever the other operand's sign.
        if b.lo >= 0:
            return Interval(0, b.hi)
        if a.lo >= 0:
            return Interval(0, a.hi)
        return TOP
    if op is Opcode.OR or op is Opcode.XOR:
        if a.lo >= 0 and b.lo >= 0:
            hi = max(a.hi, b.hi)
            # Result fits in the wider operand's bit count.
            bits = max(1, hi.bit_length())
            return Interval(0, (1 << bits) - 1)
        return TOP
    if op is Opcode.SHL:
        if a.lo >= 0 and 0 <= b.lo and b.hi <= 31:
            return Interval(a.lo << b.lo, a.hi << b.hi)
        return TOP
    if op is Opcode.SHR:
        if a.lo >= 0 and 0 <= b.lo and b.hi <= 31:
            return Interval(a.lo >> b.hi, a.hi >> b.lo)
        return TOP
    return TOP


def _transfer(function: Function, block_name: str, state: IntervalMap) -> IntervalMap:
    current = dict(state)
    for inst in function.block(block_name).instructions:
        result = _eval(inst, current)
        if result is not None and inst.dest is not None:
            current[inst.dest] = result
    return current


def _merge(states: list[IntervalMap]) -> IntervalMap:
    merged: IntervalMap = {}
    for state in states:
        for reg, interval in state.items():
            merged[reg] = merged[reg].hull(interval) if reg in merged else interval
    return merged


@dataclass
class BitwidthInfo:
    """Solved bitwidth analysis.

    ``intervals`` maps each register to its value interval at the end of
    the function's fixed point; ``widths`` derives the bit count.
    """

    function: Function
    intervals: dict[Value, Interval]

    def width(self, reg: Value) -> int:
        """Bitwidth of *reg* (32 when unknown)."""
        interval = self.intervals.get(reg)
        return interval.bitwidth if interval is not None else 32

    def mean_width(self) -> float:
        """Average bitwidth over all analyzed registers."""
        if not self.intervals:
            return 32.0
        return sum(i.bitwidth for i in self.intervals.values()) / len(self.intervals)


def bitwidth_analysis(function: Function, max_sweeps: int = 64) -> BitwidthInfo:
    """Run interval analysis with widening; always terminates.

    Parameters are assumed to span the full machine word (their values
    come from outside the function).
    """
    rpo = reverse_postorder(function)
    preds = function.predecessors_map()
    entry = function.entry.name

    boundary: IntervalMap = {p: TOP for p in function.params}
    out_states: dict[str, IntervalMap] = {name: {} for name in rpo}
    sweeps = 0
    changed = True
    while changed and sweeps < max_sweeps:
        sweeps += 1
        changed = False
        for name in rpo:
            incoming = [out_states[p] for p in preds[name] if p in out_states]
            if name == entry:
                merged = _merge(incoming + [boundary])
            else:
                merged = _merge(incoming) if incoming else {}
            new_out = _transfer(function, name, merged)
            if sweeps > _WIDEN_AFTER:
                previous = out_states[name]
                new_out = {
                    reg: (iv.widen(previous[reg]) if reg in previous else iv)
                    for reg, iv in new_out.items()
                }
            if new_out != out_states[name]:
                out_states[name] = new_out
                changed = True

    final: dict[Value, Interval] = _merge(list(out_states.values()))
    return BitwidthInfo(function=function, intervals=final)
