"""Static execution-frequency estimation.

The thermal analysis runs before any execution, so it needs a static
profile: how often is each block expected to execute?  We use the
classical approach (ball-larus-style heuristics + linear flow solve):

* unconditional edges have probability 1;
* conditional branches split 50/50, except loop back edges which take
  probability ``loop_back_prob`` (default 0.9 — i.e. an expected trip
  count of 10), matching the paper's emphasis that loops concentrate
  register accesses and therefore heat;
* block frequencies solve the linear flow system
  ``f = e + Pᵀ f`` with numpy, where ``e`` is the entry indicator and
  ``P`` the edge-probability matrix.

Frequency-weighted merging is the default CFG join mode of the thermal
data flow analysis (see :mod:`repro.core.tdfa`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DataflowError
from ..ir.cfg import reverse_postorder
from ..ir.function import Function


@dataclass
class StaticProfile:
    """Estimated block/edge execution frequencies (entry block = 1.0)."""

    function: Function
    block_freq: dict[str, float]
    edge_prob: dict[tuple[str, str], float]

    def edge_freq(self, src: str, dst: str) -> float:
        return self.block_freq.get(src, 0.0) * self.edge_prob.get((src, dst), 0.0)

    def instruction_weight(self, block_name: str) -> float:
        """Expected executions of each instruction in the block."""
        return self.block_freq.get(block_name, 0.0)

    def total_weighted_instructions(self) -> float:
        """Expected dynamic instruction count for one function invocation."""
        return sum(
            self.block_freq.get(name, 0.0) * len(block.instructions)
            for name, block in self.function.blocks.items()
        )


def edge_probabilities(
    function: Function, loop_back_prob: float = 0.9
) -> dict[tuple[str, str], float]:
    """Assign a probability to every CFG edge using branch heuristics.

    For a two-way branch, the edge that *stays inside* the source's
    innermost loop (equivalently, the back edge itself) takes
    ``loop_back_prob``; the loop-exiting edge takes the complement.
    Branches with no loop involvement split 50/50.
    """
    if not 0.0 < loop_back_prob < 1.0:
        raise DataflowError("loop_back_prob must lie strictly between 0 and 1")
    from ..ir.loops import LoopInfo

    loop_info = LoopInfo(function)
    probs: dict[tuple[str, str], float] = {}
    for name, block in function.blocks.items():
        succs = block.successors()
        if not succs:
            continue
        if len(succs) == 1:
            probs[(name, succs[0])] = 1.0
            continue
        # Conditional branch with two successors.
        a, b = succs[0], succs[1]
        if a == b:
            probs[(name, a)] = 1.0
            continue
        loop = loop_info.innermost(name)
        a_stays = loop is not None and loop.contains(a)
        b_stays = loop is not None and loop.contains(b)
        if a_stays and not b_stays:
            probs[(name, a)] = loop_back_prob
            probs[(name, b)] = 1.0 - loop_back_prob
        elif b_stays and not a_stays:
            probs[(name, b)] = loop_back_prob
            probs[(name, a)] = 1.0 - loop_back_prob
        else:
            probs[(name, a)] = 0.5
            probs[(name, b)] = 0.5
    return probs


def static_profile(
    function: Function, loop_back_prob: float = 0.9
) -> StaticProfile:
    """Solve the linear flow system for expected block frequencies."""
    rpo = reverse_postorder(function)
    index = {name: i for i, name in enumerate(rpo)}
    n = len(rpo)
    probs = edge_probabilities(function, loop_back_prob)

    # f = e + P^T f  =>  (I - P^T) f = e
    transition = np.zeros((n, n))
    for (src, dst), p in probs.items():
        if src in index and dst in index:
            transition[index[dst], index[src]] += p
    entry_vec = np.zeros(n)
    entry_vec[index[function.entry.name]] = 1.0

    system = np.eye(n) - transition
    try:
        freq = np.linalg.solve(system, entry_vec)
    except np.linalg.LinAlgError:
        # Probability-1 cycles (infinite loops): damp and retry.
        damped = {edge: min(p, 0.99) for edge, p in probs.items()}
        transition = np.zeros((n, n))
        for (src, dst), p in damped.items():
            if src in index and dst in index:
                transition[index[dst], index[src]] += p
        freq = np.linalg.solve(np.eye(n) - transition, entry_vec)
        probs = damped

    freq = np.maximum(freq, 0.0)
    return StaticProfile(
        function=function,
        block_freq={name: float(freq[index[name]]) for name in rpo},
        edge_prob=probs,
    )
