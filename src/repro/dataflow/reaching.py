"""Reaching-definitions analysis.

A definition site is identified by ``(block_name, index)``.  Reaching
definitions feed the def-use chains used by the register promotion and
live-range splitting passes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.function import Function
from ..ir.values import Value
from .framework import DataflowResult, Direction, SetUnionProblem, solve

#: A definition site: (block name, instruction index within the block).
DefSite = tuple[str, int]


class ReachingDefsProblem(SetUnionProblem):
    """Forward may-analysis over frozensets of ``(register, site)`` pairs."""

    direction = Direction.FORWARD

    def transfer(self, function: Function, block_name: str, value: frozenset) -> frozenset:
        current = set(value)
        for i, inst in enumerate(function.block(block_name).instructions):
            for d in inst.defs():
                current = {(reg, site) for reg, site in current if reg != d}
                current.add((d, (block_name, i)))
        return frozenset(current)


@dataclass
class ReachingInfo:
    """Solved reaching definitions with per-instruction queries."""

    function: Function
    reach_in: dict[str, frozenset]
    reach_out: dict[str, frozenset]

    def defs_reaching(self, block_name: str, index: int, reg: Value) -> set[DefSite]:
        """Definition sites of *reg* that reach just before instruction *index*."""
        current = set(self.reach_in[block_name])
        block = self.function.block(block_name)
        for i in range(index):
            inst = block.instructions[i]
            for d in inst.defs():
                current = {(r, site) for r, site in current if r != d}
                current.add((d, (block_name, i)))
        return {site for r, site in current if r == reg}

    def all_def_sites(self, reg: Value) -> set[DefSite]:
        """Every definition site of *reg* in the function."""
        sites: set[DefSite] = set()
        for name, block in self.function.blocks.items():
            for i, inst in enumerate(block.instructions):
                if reg in inst.defs():
                    sites.add((name, i))
        return sites


def reaching_definitions(function: Function) -> ReachingInfo:
    """Solve reaching definitions for *function*."""
    result: DataflowResult[frozenset] = solve(function, ReachingDefsProblem())
    return ReachingInfo(
        function=function,
        reach_in=dict(result.in_values),
        reach_out=dict(result.out_values),
    )
