"""Small shared utilities (table formatting, banners)."""

from .tables import banner, format_table

__all__ = ["format_table", "banner"]
