"""Plain-text table formatting for bench output.

Every bench prints its experiment as an aligned table (the "rows the
paper reports"); this module keeps that formatting in one place.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_format: str = "{:.3f}",
    min_width: int = 6,
) -> str:
    """Render *rows* under *headers* with aligned columns.

    Floats are formatted with *float_format*; everything else with
    ``str``.  Column widths adapt to content.
    """
    rendered_rows: list[list[str]] = []
    for row in rows:
        rendered: list[str] = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)

    widths = [max(min_width, len(h)) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))

    def fmt_line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(widths[i]) for i, c in enumerate(cells))

    lines = [fmt_line(list(headers))]
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_line(row) for row in rendered_rows)
    return "\n".join(lines)


def banner(title: str, char: str = "=", width: int = 72) -> str:
    """A section banner for bench output."""
    pad = max(0, width - len(title) - 2)
    left = pad // 2
    right = pad - left
    return f"{char * left} {title} {char * right}"
