"""Spill-critical-variables pass.

Paper §4: *"For the purposes of thermal management, the greatest benefit
will be achieved by spilling these 'critical' variables to memory."*
The pass demotes the targeted virtual registers to stack slots (reusing
the allocator's spill machinery), trading RF power density for memory
traffic and extra cycles.
"""

from __future__ import annotations

from ..ir.function import Function
from ..ir.values import VirtualRegister
from ..regalloc.spill import insert_spill_code
from .passes import FunctionPass, PassReport, register_pass


@register_pass("spill_critical")
class SpillCriticalPass(FunctionPass):
    """Demote the given virtual registers to memory.

    Parameters
    ----------
    targets:
        Virtual registers to spill (typically the top of the
        critical-variable ranking).  Non-virtual targets are ignored —
        physical registers cannot be spilled post-assignment.
    """

    def __init__(self, targets: tuple = ()) -> None:
        self.targets = tuple(targets)

    def run(self, function: Function) -> tuple[Function, PassReport]:
        spillable = {
            t for t in self.targets
            if isinstance(t, VirtualRegister) and t in function.virtual_registers()
        }
        if not spillable:
            return function.copy(), PassReport(
                pass_name=self.name, changed=False, details={"spilled": 0}
            )
        before = function.instruction_count()
        result = insert_spill_code(function, spillable)
        return result, PassReport(
            pass_name=self.name,
            changed=True,
            details={
                "spilled": len(spillable),
                "added_instructions": result.instruction_count() - before,
            },
        )
