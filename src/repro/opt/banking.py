"""Register-bank switch-off analysis — the §4 tension, quantified.

Paper §4: *"However, power reduction techniques based on switching off
register banks could not theoretically be applied after the spread
register assignment, and a compromise between these types of techniques
for different optimization metrics can be explored at the compiler
level."*

This module provides the other side of that compromise: given an
allocated function on a banked register file, it estimates how much of
the time each bank could be power-gated.  A bank is gateable over a
region (we use natural loops plus the remaining straight-line code as
regions, weighted by static frequency) iff no instruction in the region
touches any register of the bank.  Spreading policies deliberately touch
all banks and destroy this opportunity — exactly the paper's point — so
experiment E9 reports both the thermal spreading metrics and the bank
idle fraction per policy, making the trade-off measurable.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.machine import MachineDescription
from ..dataflow.freq import static_profile
from ..errors import ThermalModelError
from ..ir.function import Function
from ..ir.loops import LoopInfo
from ..ir.values import PhysicalRegister


@dataclass(frozen=True)
class BankingReport:
    """Bank power-gating opportunity of one allocated function."""

    banks: int
    #: Per bank: fraction of (frequency-weighted) execution during which
    #: the bank is untouched and could be switched off.
    idle_fraction: tuple[float, ...]
    #: Mean of idle_fraction — the headline "gating opportunity".
    mean_idle: float
    #: Estimated leakage saved (W) assuming idle banks are fully gated.
    leakage_saved: float

    def __str__(self) -> str:
        per_bank = ", ".join(f"{f:.2f}" for f in self.idle_fraction)
        return (
            f"banks={self.banks} idle=[{per_bank}] mean={self.mean_idle:.2f} "
            f"leakage_saved={self.leakage_saved * 1e3:.3f} mW"
        )


def _regions(function: Function) -> list[set[str]]:
    """Gating regions: innermost-first natural loops, then leftover blocks.

    Power gating has enter/exit latency, so the realistic granularity is
    a region executed many times (a loop) or the residual straight-line
    code, not an individual instruction.
    """
    info = LoopInfo(function)
    regions: list[set[str]] = []
    covered: set[str] = set()
    for loop in sorted(info.loops, key=lambda l: -l.depth):
        body = loop.body - covered
        if body:
            regions.append(body)
            covered |= body
    rest = set(function.blocks) - covered
    if rest:
        regions.append(rest)
    return regions


def _banks_touched(function: Function, blocks: set[str],
                   machine: MachineDescription) -> set[int]:
    touched: set[int] = set()
    geometry = machine.geometry
    for name in blocks:
        for inst in function.block(name).instructions:
            for reg in inst.registers():
                if not isinstance(reg, PhysicalRegister):
                    raise ThermalModelError(
                        "banking analysis needs an allocated function "
                        f"(found {reg})"
                    )
                touched.add(geometry.bank_of(reg.index))
    return touched


def analyze_banking(
    function: Function, machine: MachineDescription
) -> BankingReport:
    """Estimate per-bank switch-off opportunity for an allocated function."""
    banks = machine.geometry.banks
    if banks < 2:
        return BankingReport(
            banks=banks, idle_fraction=(0.0,) * banks, mean_idle=0.0,
            leakage_saved=0.0,
        )
    profile = static_profile(function)
    regions = _regions(function)

    # Weight of a region = its share of expected dynamic instructions.
    weights = []
    touched_sets = []
    for blocks in regions:
        weight = sum(
            profile.block_freq.get(name, 0.0)
            * len(function.block(name).instructions)
            for name in blocks
        )
        weights.append(weight)
        touched_sets.append(_banks_touched(function, blocks, machine))
    total = sum(weights) or 1.0

    idle = []
    for bank in range(banks):
        idle_weight = sum(
            w for w, touched in zip(weights, touched_sets) if bank not in touched
        )
        idle.append(idle_weight / total)

    cells_per_bank = machine.geometry.num_registers / banks
    leakage_per_bank = machine.energy.leakage_power * cells_per_bank
    saved = sum(f * leakage_per_bank for f in idle)
    return BankingReport(
        banks=banks,
        idle_fraction=tuple(idle),
        mean_idle=sum(idle) / banks,
        leakage_saved=saved,
    )
