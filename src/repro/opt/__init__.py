"""Thermal-aware optimization passes and the compilation pipeline."""

from .banking import BankingReport, analyze_banking
from .cse import LocalCSEPass
from .dce import DeadCodeEliminationPass
from .nops import NopInsertionPass
from .passes import (
    FunctionPass,
    PassManager,
    PassReport,
    create_pass,
    register_pass,
    registered_passes,
)
from .pipeline import (
    PRE_ALLOCATION_PASSES,
    CompilationResult,
    ThermalAwareCompiler,
)
from .promote import RegisterPromotionPass
from .reassign import ReassignPass, spreading_permutation, weighted_register_accesses
from .schedule import ThermalSchedulePass, min_reuse_distance
from .spill_critical import SpillCriticalPass
from .split import SplitLiveRangesPass

__all__ = [
    "BankingReport",
    "analyze_banking",
    "LocalCSEPass",
    "FunctionPass",
    "PassManager",
    "PassReport",
    "create_pass",
    "register_pass",
    "registered_passes",
    "SpillCriticalPass",
    "SplitLiveRangesPass",
    "ThermalSchedulePass",
    "min_reuse_distance",
    "RegisterPromotionPass",
    "NopInsertionPass",
    "ReassignPass",
    "weighted_register_accesses",
    "spreading_permutation",
    "DeadCodeEliminationPass",
    "ThermalAwareCompiler",
    "CompilationResult",
    "PRE_ALLOCATION_PASSES",
]
