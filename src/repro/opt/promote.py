"""Register promotion (memory → register).

Paper §4: accesses can be made more uniform in time *"using register
promotion (i.e., promoting some memory-resident variables into
registers), which would help on avoiding the thermal gradients between
hot and cold registers, by making more uniform the use of registers in
time"*.

The pass performs conservative intra-block load forwarding: within a
basic block, a second ``load`` from the *same address register holding
the same value* is replaced by a ``copy`` from the previously loaded
temporary, provided no intervening instruction may write memory and the
address register is not redefined.  The promoted value then occupies a
register across the region, adding steady (cooler, distributed) register
traffic in place of bursty cache traffic.
"""

from __future__ import annotations

from ..ir import instructions as ins
from ..ir.function import Function
from ..ir.instructions import Opcode
from ..ir.values import Value
from .passes import FunctionPass, PassReport, register_pass

#: Opcodes that may write memory (kill all promoted values).
_MEMORY_WRITERS = {Opcode.STORE}


@register_pass("promote")
class RegisterPromotionPass(FunctionPass):
    """Forward repeated same-address loads through a register."""

    def __init__(self, targets: tuple = ()) -> None:
        self.targets = tuple(targets)  # accepted for registry uniformity

    def run(self, function: Function) -> tuple[Function, PassReport]:
        clone = function.copy()
        promoted = 0
        for block in clone.blocks.values():
            available: dict[Value, Value] = {}  # address reg -> value reg
            new_instructions = []
            for inst in block.instructions:
                if inst.opcode in _MEMORY_WRITERS:
                    available.clear()
                replacement = None
                if inst.opcode is Opcode.LOAD:
                    held = available.get(inst.operands[0])
                    if held is not None:
                        replacement = ins.copy_of(inst.dest, held)
                        promoted += 1
                # A redefinition of an address or value register invalidates
                # entries mentioning it — checked *before* registering this
                # instruction's own load so it doesn't self-invalidate.
                emitted = replacement if replacement is not None else inst
                for d in emitted.defs():
                    for key in [k for k, v in available.items() if k == d or v == d]:
                        del available[key]
                if replacement is None and inst.opcode is Opcode.LOAD:
                    available[inst.operands[0]] = inst.dest
                new_instructions.append(emitted)
            block.instructions = new_instructions
        return clone, PassReport(
            pass_name=self.name,
            changed=promoted > 0,
            details={"loads_promoted": promoted},
        )
