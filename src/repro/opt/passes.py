"""Pass protocol, registry and pass manager.

Optimization passes transform a function and report what they did; the
pass manager runs a named sequence (usually the one a
:class:`~repro.core.rules.ThermalPlan` recommends) and accumulates the
reports.  Passes are small objects rather than bare functions so they
can carry configuration and targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..errors import ReproError
from ..ir.function import Function
from ..ir.verifier import verify_function


@dataclass
class PassReport:
    """What one pass did to one function."""

    pass_name: str
    changed: bool
    details: dict[str, float | int | str] = field(default_factory=dict)

    def __str__(self) -> str:
        info = ", ".join(f"{k}={v}" for k, v in self.details.items())
        return f"{self.pass_name}: {'changed' if self.changed else 'no-op'} ({info})"


class FunctionPass:
    """Base class: transform a function copy, never mutate the input."""

    name: str = "abstract"

    def run(self, function: Function) -> tuple[Function, PassReport]:
        """Return (new function, report).  Must keep the IR verifiable."""
        raise NotImplementedError


@dataclass
class PassManager:
    """Runs a pass sequence with post-pass verification."""

    passes: list[FunctionPass] = field(default_factory=list)
    verify_after_each: bool = True

    def add(self, pass_: FunctionPass) -> "PassManager":
        self.passes.append(pass_)
        return self

    def run(self, function: Function) -> tuple[Function, list[PassReport]]:
        current = function
        reports: list[PassReport] = []
        for pass_ in self.passes:
            current, report = pass_.run(current)
            if self.verify_after_each:
                verify_function(current)
            reports.append(report)
        return current, reports


#: Registry: plan pass-name -> factory(targets) -> FunctionPass.
_REGISTRY: dict[str, Callable[..., FunctionPass]] = {}


def register_pass(name: str):
    """Class decorator registering a pass factory under *name*."""

    def decorate(cls):
        _REGISTRY[name] = cls
        cls.name = name
        return cls

    return decorate


def create_pass(name: str, **kwargs) -> FunctionPass:
    """Instantiate a registered pass by plan name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ReproError(
            f"unknown pass {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None
    return factory(**kwargs)


def registered_passes() -> list[str]:
    """Names of all registered passes."""
    return sorted(_REGISTRY)
