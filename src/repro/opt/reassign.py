"""Post-allocation register re-assignment (the Zhou et al. baseline).

The paper's reference [3] (Zhou et al., DAC 2008) reduces RF power
density by *re-assigning* registers after allocation.  Because our IR
has no fixed calling convention, any bijective renaming of physical
registers preserves semantics — so the pass computes a permutation that
spreads the hottest (most-accessed, frequency-weighted) registers across
the RF and applies it uniformly.

Placement strategy: registers are processed hottest-first; each is moved
to the position minimizing the exponential-kernel "load" of already
placed heat (the same objective as the coolest-first policy), which
pushes heavy hitters toward mutually distant cells — §4's "disparate
regions of the RF".
"""

from __future__ import annotations

import numpy as np

from ..arch.machine import MachineDescription
from ..dataflow.freq import static_profile
from ..ir.function import Function
from ..ir.values import PhysicalRegister, Value
from .passes import FunctionPass, PassReport, register_pass


def weighted_register_accesses(
    function: Function,
) -> dict[int, float]:
    """Frequency-weighted access count per physical register index."""
    profile = static_profile(function)
    counts: dict[int, float] = {}
    for name, block in function.blocks.items():
        weight = profile.block_freq.get(name, 0.0)
        for inst in block.instructions:
            for reg in inst.registers():
                if isinstance(reg, PhysicalRegister):
                    counts[reg.index] = counts.get(reg.index, 0.0) + weight
    return counts


def spreading_permutation(
    counts: dict[int, float],
    machine: MachineDescription,
    kernel_radius: float = 1.5,
) -> dict[int, int]:
    """Permutation old→new spreading heavy registers apart.

    Reserved registers are fixed points; unused registers fill the
    remaining cells in index order.
    """
    geometry = machine.geometry
    n = geometry.num_registers
    reserved = set(machine.reserved_registers)
    movable_positions = [i for i in range(n) if i not in reserved]

    kernel = np.zeros((n, n))
    for a in range(n):
        for b in range(n):
            kernel[a, b] = np.exp(-geometry.manhattan_distance(a, b) / kernel_radius)

    load = np.zeros(n)
    permutation: dict[int, int] = {r: r for r in reserved}
    taken: set[int] = set(reserved)
    # Hottest registers first; zero-count registers afterwards.
    order = sorted(
        (r for r in range(n) if r not in reserved),
        key=lambda r: (-counts.get(r, 0.0), r),
    )
    for reg in order:
        weight = counts.get(reg, 0.0)
        candidates = [p for p in movable_positions if p not in taken]
        local = kernel @ load
        best = min(candidates, key=lambda p: (local[p], p))
        permutation[reg] = best
        taken.add(best)
        load[best] += weight
    return permutation


@register_pass("reassign")
class ReassignPass(FunctionPass):
    """Apply a heat-spreading permutation to all physical registers.

    Parameters
    ----------
    machine:
        Needed for geometry and reserved registers.  Without it the pass
        is a no-op.
    targets:
        Accepted for registry uniformity; the permutation considers all
        registers regardless.
    """

    def __init__(
        self,
        machine: MachineDescription | None = None,
        targets: tuple = (),
        kernel_radius: float = 1.5,
    ) -> None:
        self.machine = machine
        self.kernel_radius = kernel_radius

    def run(self, function: Function) -> tuple[Function, PassReport]:
        if self.machine is None:
            return function.copy(), PassReport(
                pass_name=self.name, changed=False, details={"moved": 0}
            )
        counts = weighted_register_accesses(function)
        if not counts:
            return function.copy(), PassReport(
                pass_name=self.name, changed=False, details={"moved": 0}
            )
        permutation = spreading_permutation(
            counts, self.machine, kernel_radius=self.kernel_radius
        )
        mapping: dict[Value, Value] = {
            PhysicalRegister(old): PhysicalRegister(new)
            for old, new in permutation.items()
            if old != new
        }
        clone = function.copy()
        for block in clone.blocks.values():
            for inst in block.instructions:
                inst.replace_all(mapping)
        clone.params = [mapping.get(p, p) for p in clone.params]  # type: ignore[misc]
        moved = sum(
            1 for old, new in permutation.items()
            if old != new and counts.get(old, 0.0) > 0
        )
        return clone, PassReport(
            pass_name=self.name,
            changed=moved > 0,
            details={"moved": moved},
        )
