"""Dead code elimination (cleanup pass).

Splitting and promotion can leave pure instructions whose results are
never read; removing them keeps the optimization comparisons honest
(no pass gets credit for heating the RF with dead copies).
"""

from __future__ import annotations

from ..dataflow.liveness import liveness
from ..ir.function import Function
from ..ir.instructions import BINARY_OPS, COMPARE_OPS, Opcode, UNARY_OPS
from .passes import FunctionPass, PassReport, register_pass

#: Opcodes safe to delete when their result is dead.
_PURE = (
    BINARY_OPS
    | UNARY_OPS
    | COMPARE_OPS
    | {Opcode.LI, Opcode.COPY, Opcode.RELOAD}
)


@register_pass("dce")
class DeadCodeEliminationPass(FunctionPass):
    """Iteratively remove pure instructions with dead destinations."""

    def __init__(self, targets: tuple = ()) -> None:
        self.targets = tuple(targets)  # accepted for registry uniformity

    def run(self, function: Function) -> tuple[Function, PassReport]:
        clone = function.copy()
        removed_total = 0
        while True:
            info = liveness(clone)
            removed = 0
            for name, block in clone.blocks.items():
                live_after = info.live_after(name)
                keep = []
                for i, inst in enumerate(block.instructions):
                    dead = (
                        inst.opcode in _PURE
                        and inst.dest is not None
                        and inst.dest not in live_after[i]
                    )
                    if dead:
                        removed += 1
                    else:
                        keep.append(inst)
                block.instructions = keep
            removed_total += removed
            if removed == 0:
                break
        return clone, PassReport(
            pass_name=self.name,
            changed=removed_total > 0,
            details={"removed": removed_total},
        )
