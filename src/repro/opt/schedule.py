"""Thermal-aware instruction scheduling.

Paper §4: accesses can be spread *in time* *"using instruction
scheduling, to avoid consecutive accesses to already hot registers"*.

The pass list-schedules each basic block's body under its dependence
DAG.  Among ready instructions it picks the one whose registers were
accessed *longest ago* in the emitted schedule — maximizing the temporal
gap between touches of the same (or co-located) register, which gives
each cell time to diffuse its heat before being hit again.  Program
semantics are preserved exactly: all RAW/WAR/WAW register dependences,
a total order among memory operations, and a total order among
operations on the same stack slot.
"""

from __future__ import annotations

from ..ir.block import BasicBlock
from ..ir.function import Function
from ..ir.instructions import Instruction, Opcode
from ..ir.values import StackSlot, Value
from .passes import FunctionPass, PassReport, register_pass


def _build_dependences(body: list[Instruction]) -> list[set[int]]:
    """``deps[i]`` = indices that must execute before instruction *i*."""
    deps: list[set[int]] = [set() for _ in body]
    last_def: dict[Value, int] = {}
    last_uses: dict[Value, list[int]] = {}
    last_memory: int | None = None
    last_slot_op: dict[StackSlot, int] = {}

    for i, inst in enumerate(body):
        for reg in inst.uses():
            if reg in last_def:
                deps[i].add(last_def[reg])  # RAW
        for reg in inst.defs():
            if reg in last_def:
                deps[i].add(last_def[reg])  # WAW
            for use_idx in last_uses.get(reg, ()):
                deps[i].add(use_idx)  # WAR
        if inst.opcode in (Opcode.LOAD, Opcode.STORE):
            if last_memory is not None:
                deps[i].add(last_memory)
            last_memory = i
        if inst.opcode in (Opcode.SPILL, Opcode.RELOAD):
            slot = inst.operands[0]
            assert isinstance(slot, StackSlot)
            if slot in last_slot_op:
                deps[i].add(last_slot_op[slot])
            last_slot_op[slot] = i
        for reg in inst.uses():
            last_uses.setdefault(reg, []).append(i)
        for reg in inst.defs():
            last_def[reg] = i
            last_uses[reg] = []
        deps[i].discard(i)
    return deps


def _schedule_block(block: BasicBlock) -> tuple[list[Instruction], int]:
    """Reorder the block body; returns (new body, #instructions moved)."""
    body = block.body
    n = len(body)
    if n <= 2:
        return body, 0
    deps = _build_dependences(body)
    succs: list[set[int]] = [set() for _ in body]
    remaining = [len(deps[i]) for i in range(n)]
    for i in range(n):
        for d in deps[i]:
            succs[d].add(i)

    scheduled: list[int] = []
    emitted_at: dict[str, int] = {}  # register repr -> last emission slot
    ready = sorted(i for i in range(n) if remaining[i] == 0)

    def coolness(idx: int) -> tuple:
        """Higher = better: prefer registers untouched for longest."""
        regs = [str(r) for r in body[idx].registers()]
        slot = len(scheduled)
        if not regs:
            gap = slot + 1  # register-free instructions are always "cool"
        else:
            gap = min(slot - emitted_at.get(r, -1) for r in regs)
        # Prefer large gap; tie-break toward original order for stability.
        return (gap, -idx)

    while ready:
        ready.sort(key=coolness, reverse=True)
        chosen = ready.pop(0)
        slot = len(scheduled)
        scheduled.append(chosen)
        for reg in body[chosen].registers():
            emitted_at[str(reg)] = slot
        for succ in sorted(succs[chosen]):
            remaining[succ] -= 1
            if remaining[succ] == 0:
                ready.append(succ)

    new_body = [body[i] for i in scheduled]
    changed = sum(1 for pos, original in enumerate(scheduled) if pos != original)
    return new_body, changed


@register_pass("thermal_schedule")
class ThermalSchedulePass(FunctionPass):
    """Reorder block bodies to maximize same-register access distance."""

    def __init__(self, targets: tuple = ()) -> None:
        self.targets = tuple(targets)  # accepted for registry uniformity

    def run(self, function: Function) -> tuple[Function, PassReport]:
        clone = function.copy()
        total_moved = 0
        for block in clone.blocks.values():
            new_body, moved = _schedule_block(block)
            if moved:
                block.replace_body(new_body)
                total_moved += moved
        return clone, PassReport(
            pass_name=self.name,
            changed=total_moved > 0,
            details={"instructions_moved": total_moved},
        )


def min_reuse_distance(function: Function) -> int:
    """Smallest distance between two touches of the same register.

    The scheduler's objective: larger is thermally better.  Distance is
    measured within blocks; returns a large sentinel for register-free
    functions.
    """
    best = 1 << 30
    for block in function.blocks.values():
        last_seen: dict[str, int] = {}
        for i, inst in enumerate(block.instructions):
            for reg in inst.registers():
                key = str(reg)
                if key in last_seen:
                    best = min(best, i - last_seen[key])
                last_seen[key] = i
    return best
