"""The thermal-aware compilation pipeline.

Paper §4: *"the result of the analysis phase can be used to conduct the
compilation process achieving a temperature-aware compilation at
different stages."*  This module wires everything together:

1. baseline register allocation under the configured policy;
2. thermal data flow analysis of the *virtual* function with the
   baseline placement (so criticality lands on actionable virtual
   registers);
3. the rule engine turns the analysis into a :class:`ThermalPlan`;
4. pre-allocation passes from the plan (spill, split, schedule,
   promote) transform the virtual function, followed by CSE + DCE
   cleanup;
5. final allocation — switching to the chessboard policy when the plan
   says it is viable;
6. post-allocation passes (re-assignment, last-resort NOPs);
7. a final analysis of the allocated function documents the effect.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..arch.machine import MachineDescription
from ..core.context import AnalysisContext
from ..core.estimator import ExactPlacement
from ..core.predictive import AllocationPlacement
from ..core.rules import RuleConfig, ThermalPlan, evaluate_rules
from ..core.tdfa import TDFAConfig, TDFAResult
from ..ir.function import Function
from ..regalloc.assignment import Allocation
from ..regalloc.linearscan import allocate_linear_scan
from ..regalloc.policies import AssignmentPolicy, ChessboardPolicy, FirstFreePolicy
from ..thermal.rcmodel import RFThermalModel
from .cse import LocalCSEPass
from .dce import DeadCodeEliminationPass
from .nops import NopInsertionPass
from .passes import PassReport, create_pass
from .promote import RegisterPromotionPass  # noqa: F401  (registry import)
from .reassign import ReassignPass
from .schedule import ThermalSchedulePass  # noqa: F401  (registry import)
from .spill_critical import SpillCriticalPass  # noqa: F401  (registry import)
from .split import SplitLiveRangesPass  # noqa: F401  (registry import)

#: Plan pass names that transform the pre-allocation (virtual) function.
PRE_ALLOCATION_PASSES = (
    "spill_critical",
    "split_live_ranges",
    "thermal_schedule",
    "promote",
)


@dataclass
class CompilationResult:
    """Everything the thermal-aware pipeline produced for one function."""

    original: Function
    optimized_virtual: Function
    allocated: Function
    allocation: Allocation
    plan: ThermalPlan
    pass_reports: list[PassReport] = field(default_factory=list)
    analysis_before: TDFAResult | None = None
    analysis_after: TDFAResult | None = None

    def summary(self) -> dict[str, float]:
        """Before/after thermal headline numbers."""
        result: dict[str, float] = {
            "instructions_before": float(self.original.instruction_count()),
            "instructions_after": float(self.allocated.instruction_count()),
        }
        if self.analysis_before is not None:
            peak = self.analysis_before.peak_state()
            result["peak_before"] = peak.peak
            result["gradient_before"] = peak.max_gradient()
        if self.analysis_after is not None:
            peak = self.analysis_after.peak_state()
            result["peak_after"] = peak.peak
            result["gradient_after"] = peak.max_gradient()
        return result


class ThermalAwareCompiler:
    """Analysis-driven thermal-aware compilation (no emulation feedback).

    Parameters
    ----------
    machine:
        Target machine.
    policy:
        Baseline assignment policy (default: the hot-spot-prone
        first-free order, which gives the analysis something to fix).
    delta / merge / engine:
        Analysis parameters (paper's δ, the CFG join mode, and the
        fixed-point engine — ``"auto"`` uses compiled block transfers
        whenever the thermal model is linear).
    config:
        Full :class:`~repro.core.tdfa.TDFAConfig` for the pipeline
        analyses.  Takes precedence over the individual
        *delta*/*merge*/*engine* arguments (which survive as
        conveniences for the common case); this is how the service
        layer's :class:`~repro.service.requests.CompileRequest` maps
        its analysis surface onto the pipeline in one value.
    rule_config:
        Thresholds of the rule engine.
    enable_nops:
        Allow the last-resort NOP rule to actually insert NOPs.
    context:
        Shared :class:`~repro.core.context.AnalysisContext`.  Every
        analysis the pipeline runs — baseline (before), interim (NOP
        rule) and final (after) — goes through this one context, so the
        thermal model is built and factorized once and block transfers
        compile at most once per (function version, placement).  Pass a
        long-lived context to amortize further across many ``compile()``
        calls; by default the compiler creates its own.
    """

    def __init__(
        self,
        machine: MachineDescription,
        policy: AssignmentPolicy | None = None,
        delta: float = 0.05,
        merge: str = "freq",
        rule_config: RuleConfig | None = None,
        model: RFThermalModel | None = None,
        enable_nops: bool = True,
        engine: str = "auto",
        context: AnalysisContext | None = None,
        config: TDFAConfig | None = None,
    ) -> None:
        self.machine = machine
        self.policy = policy or FirstFreePolicy()
        self.config = config or TDFAConfig(
            delta=delta, merge=merge, engine=engine
        )
        self.delta = self.config.delta
        self.merge = self.config.merge
        self.engine = self.config.engine
        self.rule_config = rule_config or RuleConfig()
        self.context = context or AnalysisContext(machine, model=model)
        self.model = self.context.model
        self.enable_nops = enable_nops

    # ------------------------------------------------------------------
    def _analyze(self, function: Function, placement) -> TDFAResult:
        config = self.config
        return self.context.analyze(
            function,
            placement=placement,
            delta=config.delta,
            merge=config.merge,
            engine=config.engine,
            sweep=config.sweep,
            max_iterations=config.max_iterations,
            include_leakage=config.include_leakage,
        )

    def compile(self, function: Function) -> CompilationResult:
        """Run the full pipeline on a virtual-register function."""
        num_regs = self.machine.geometry.num_registers

        # 1-2: baseline allocation + analysis on the virtual function.
        baseline_alloc = allocate_linear_scan(function, self.machine, self.policy)
        baseline_placement = AllocationPlacement(baseline_alloc, num_regs)
        analysis_before = self._analyze(function, baseline_placement)

        # 3: rules.
        plan = evaluate_rules(
            analysis_before, baseline_placement, self.machine, self.rule_config
        )

        # 4: pre-allocation passes in plan order.
        reports: list[PassReport] = []
        current = function
        use_chessboard = False
        want_reassign = False
        want_nops = False
        for rec in plan.ordered():
            if rec.pass_name in PRE_ALLOCATION_PASSES:
                pass_ = create_pass(rec.pass_name, targets=rec.targets)
                current, report = pass_.run(current)
                reports.append(report)
            elif rec.pass_name == "chessboard_assignment":
                use_chessboard = True
            elif rec.pass_name == "reassign":
                want_reassign = True
            elif rec.pass_name == "insert_nops":
                want_nops = True
        current, cse_report = LocalCSEPass().run(current)
        reports.append(cse_report)
        current, dce_report = DeadCodeEliminationPass().run(current)
        reports.append(dce_report)

        # 5: final allocation.
        final_policy: AssignmentPolicy = (
            ChessboardPolicy() if use_chessboard else self.policy
        )
        allocation = allocate_linear_scan(current, self.machine, final_policy)
        allocated = allocation.function

        # 6: post-allocation passes.
        if want_reassign:
            allocated, report = ReassignPass(machine=self.machine).run(allocated)
            reports.append(report)
        if want_nops and self.enable_nops:
            interim = self._analyze(allocated, ExactPlacement(num_regs))
            threshold = self.model.params.ambient + self.rule_config.peak_threshold
            nop_pass = NopInsertionPass(analysis=interim, threshold=threshold)
            allocated, report = nop_pass.run(allocated)
            reports.append(report)

        # 7: final analysis.
        analysis_after = self._analyze(allocated, ExactPlacement(num_regs))

        return CompilationResult(
            original=function,
            optimized_virtual=current,
            allocated=allocated,
            allocation=allocation,
            plan=plan,
            pass_reports=reports,
            analysis_before=analysis_before,
            analysis_after=analysis_after,
        )
