"""NOP insertion for cool-down — the paper's explicit last resort.

Paper §4: *"the insertion of NOP instructions gives the RF a chance to
cool down between accesses in extremely hot situations, although it can
affect overall system performance and should be applied only if no
other option to cool down the system is feasible."*

The pass inserts a burst of NOPs after every instruction whose
analysis-predicted post-state exceeds a temperature threshold.  The
benches measure both effects the sentence predicts: peak temperature
drops, cycle count rises.
"""

from __future__ import annotations

from ..core.tdfa import TDFAResult
from ..ir import instructions as ins
from ..ir.function import Function
from .passes import FunctionPass, PassReport, register_pass


@register_pass("insert_nops")
class NopInsertionPass(FunctionPass):
    """Insert cool-down NOPs after predicted-hot instructions.

    Parameters
    ----------
    analysis:
        A thermal DFA result for the function being transformed; the
        per-instruction states decide where NOPs go.  Without it the
        pass is a no-op (it refuses to guess).
    threshold:
        Peak node temperature (K) above which an instruction is "hot".
    burst:
        Number of NOPs inserted after each hot instruction.
    targets:
        Accepted for registry uniformity; unused.
    """

    def __init__(
        self,
        analysis: TDFAResult | None = None,
        threshold: float = 330.0,
        burst: int = 2,
        targets: tuple = (),
    ) -> None:
        self.analysis = analysis
        self.threshold = threshold
        self.burst = max(1, burst)

    def run(self, function: Function) -> tuple[Function, PassReport]:
        if self.analysis is None:
            return function.copy(), PassReport(
                pass_name=self.name, changed=False, details={"nops": 0}
            )
        hot_sites: set[tuple[str, int]] = {
            (block, idx)
            for (block, idx), state in self.analysis.after.items()
            if state.peak > self.threshold
        }
        clone = function.copy()
        inserted = 0
        for name, block in clone.blocks.items():
            new_instructions = []
            for idx, inst in enumerate(block.instructions):
                new_instructions.append(inst)
                if (name, idx) in hot_sites and not inst.is_terminator:
                    for _ in range(self.burst):
                        new_instructions.append(ins.nop())
                        inserted += 1
            block.instructions = new_instructions
        return clone, PassReport(
            pass_name=self.name,
            changed=inserted > 0,
            details={"nops": inserted, "hot_sites": len(hot_sites)},
        )
