"""Live-range splitting via copy insertion.

Paper §4: critical variables can be *"split ... (via copy insertion) to
spread their accesses across a multitude of registers"*.

The transformation is intra-block and correct by construction: within a
basic block we track the variable's *current alias* (initially the
variable itself).  After every ``chunk`` accesses through the alias, a
fresh temporary is copied from it and subsequent uses in the block read
the temporary instead.  A redefinition of the variable resets the alias.
Cross-block liveness is untouched (the original register always holds
the live-out value), so no SSA machinery is needed; each temporary is a
distinct virtual register the allocator can place elsewhere, which is
precisely the spreading effect the paper wants.
"""

from __future__ import annotations

from ..ir import instructions as ins
from ..ir.function import Function
from ..ir.values import Value, VirtualRegister
from .passes import FunctionPass, PassReport, register_pass


@register_pass("split_live_ranges")
class SplitLiveRangesPass(FunctionPass):
    """Split the given virtual registers' uses across fresh temporaries.

    Parameters
    ----------
    targets:
        Virtual registers to split.
    chunk:
        Number of uses routed through one alias before a new copy is
        introduced (≥ 1).
    """

    def __init__(self, targets: tuple = (), chunk: int = 2) -> None:
        self.targets = tuple(targets)
        self.chunk = max(1, chunk)

    def run(self, function: Function) -> tuple[Function, PassReport]:
        victims = {
            t for t in self.targets
            if isinstance(t, VirtualRegister) and t in function.virtual_registers()
        }
        if not victims:
            return function.copy(), PassReport(
                pass_name=self.name, changed=False, details={"copies": 0}
            )
        clone = function.copy()
        copies = 0
        for block in clone.blocks.values():
            new_instructions = []
            alias: dict[VirtualRegister, Value] = {}
            uses_since_copy: dict[VirtualRegister, int] = {}
            for inst in block.instructions:
                # Redirect uses of split variables through their alias.
                mapping: dict[Value, Value] = {}
                for reg in inst.uses():
                    if isinstance(reg, VirtualRegister) and reg in victims:
                        current = alias.get(reg, reg)
                        count = uses_since_copy.get(reg, 0)
                        if count >= self.chunk:
                            temp = clone.new_vreg(f"sp_{reg.name}_")
                            new_instructions.append(ins.copy_of(temp, current))
                            copies += 1
                            alias[reg] = temp
                            uses_since_copy[reg] = 0
                            current = temp
                        if current is not reg:
                            mapping[reg] = current
                        uses_since_copy[reg] = uses_since_copy.get(reg, 0) + 1
                if mapping:
                    inst.replace_uses(mapping)
                new_instructions.append(inst)
                # A redefinition resets the alias chain.
                for reg in inst.defs():
                    if isinstance(reg, VirtualRegister) and reg in victims:
                        alias[reg] = reg
                        uses_since_copy[reg] = 0
            block.instructions = new_instructions
        return clone, PassReport(
            pass_name=self.name,
            changed=copies > 0,
            details={"copies": copies, "targets": len(victims)},
        )
