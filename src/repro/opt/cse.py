"""Local common-subexpression elimination (block-scoped value numbering).

A cleanup pass: live-range splitting and promotion can leave duplicate
pure computations; CSE folds them so that the thermal comparisons in E4
measure the transformations themselves, not incidental redundancy.
Duplicated pure instructions are replaced by copies from the register
already holding the value (the copy itself may then be removed by the
allocator's coalescing or by DCE when unused).

The analysis is block-local: an expression computed earlier in the same
block with none of its operands redefined since is reused.  Loads are
excluded (memory may change); the promotion pass handles those.
"""

from __future__ import annotations

from ..ir import instructions as ins
from ..ir.function import Function
from ..ir.values import Value
from ..dataflow.available import expression_of
from .passes import FunctionPass, PassReport, register_pass


@register_pass("cse")
class LocalCSEPass(FunctionPass):
    """Fold repeated pure expressions within each basic block."""

    def __init__(self, targets: tuple = ()) -> None:
        self.targets = tuple(targets)  # accepted for registry uniformity

    def run(self, function: Function) -> tuple[Function, PassReport]:
        clone = function.copy()
        folded = 0
        for block in clone.blocks.values():
            value_table: dict[tuple, Value] = {}
            new_instructions = []
            for inst in block.instructions:
                expr = expression_of(inst)
                replacement = None
                if expr is not None:
                    held = value_table.get(expr)
                    if held is not None and held != inst.dest:
                        replacement = ins.copy_of(inst.dest, held)
                        folded += 1
                emitted = replacement if replacement is not None else inst
                # Any redefinition invalidates expressions that read the
                # register, and the defined register's own table entry.
                for d in emitted.defs():
                    value_table = {
                        e: reg
                        for e, reg in value_table.items()
                        if reg != d and str(d) not in e[1]
                    }
                if expr is not None and replacement is None:
                    value_table[expr] = inst.dest
                new_instructions.append(emitted)
            block.instructions = new_instructions
        return clone, PassReport(
            pass_name=self.name,
            changed=folded > 0,
            details={"folded": folded},
        )
