"""Command-line interface: a thin client of the analysis service.

Every subcommand builds one declarative request
(:mod:`repro.service.requests`), executes it through the process-wide
:class:`~repro.service.AnalysisService`, and prints the resulting
:class:`~repro.service.ResultEnvelope` — so ``analyze``, ``compile``
and ``emulate`` invocations in one process share a single
:class:`~repro.core.context.AnalysisContext` (thermal model, operator
caches, compiled block transfers) instead of rebuilding it per command.

Subcommands
-----------
``analyze``    run the thermal data flow analysis on an IR file or a
               named workload and print the report (optionally the map).
``compile``    run the full thermal-aware pipeline and print the
               before/after comparison.
``emulate``    run the feedback-driven reference flow (ground truth).
``fig1``       render the Fig. 1 policy comparison for a workload.
``suite``      analyze the whole workload suite (plus optional scenario
               generators) through one shared analysis context and
               write a machine-readable JSON report.
``pipeline``   analyze an ordered pipeline of kernels as one thermal
               program (entry of stage k+1 = exit of stage k), via the
               stacked pipeline sweep, exact summary composition or the
               sequential carry-through reference.
``schedule``   search stage orderings (and placements) for the coolest
               schedule: exhaustive/greedy/anneal strategies over
               composed-summary scoring, argmin returned with its full
               stacked pipeline analysis as evidence.
``workloads``  list the built-in workload suite.
``serve``      serve line-delimited JSON requests from stdin (one
               request per line, one envelope per line on stdout;
               ``--unordered`` writes each envelope as its request
               completes instead of in request order).  Since
               ``repro.service/3`` the loop also speaks the async
               job-queue kinds — ``submit``/``poll``/``events``/
               ``cancel`` — so a pipe client can run jobs in the
               background and stream their progress as event frames.
``worker``     serve the same envelope protocol over a TCP socket
               (``--listen HOST:PORT``) — the remote end of
               ``suite --workers`` and of ``RemoteBackend``.
``bench``      benchmark-results tooling (:mod:`repro.obs.store`):
               ``bench list`` scans a results directory for schema
               drift, ``bench ingest`` appends report metrics to the
               trend store, ``bench trend`` computes per-metric deltas
               against the rolling baseline and (with ``--gate``)
               fails CI on sustained regressions.
``dash``       terminal dashboard (:mod:`repro.obs.dash`) over the
               events stream: replay captured frames (stdin or
               ``--replay``), attach to a running worker's job
               (``--attach HOST:PORT --job ID``) or play back the
               heat strip of an archived report (``--playback``).

The analysis subcommands accept ``--metrics``, enabling the
process-wide :mod:`repro.obs` registry — counters/timers ride home on
the envelope's ``metrics`` field and print after the report.

Exit codes: 0 success, 1 error, 2 the analysis did not converge;
``serve`` additionally exits 3 when any answered line was a protocol
error (bad JSON, unknown kind, unknown fields); ``bench trend --gate``
exits 4 on a sustained regression.

Examples
--------
::

    python -m repro workloads
    python -m repro analyze --workload fir --delta 0.01
    python -m repro analyze path/to/kernel.ir --policy chessboard
    python -m repro compile --workload iir --engine compiled --merge mean
    python -m repro emulate --workload fib --compare-analysis --engine stepped
    python -m repro suite --json BENCH_suite.json
    python -m repro suite --quick --chip --pressure
    python -m repro pipeline fib crc32 fib --strategy stacked
    python -m repro pipeline --random 10 --seed 3 --json BENCH_pipeline.json
    python -m repro schedule fib crc32 fir iir fib --strategy exhaustive
    python -m repro schedule --random 6 --seed 3 --strategy anneal --budget 500
    python -m repro fig1 --workload fir
    echo '{"kind": "analyze", "workload": "fir"}' | python -m repro serve
    python -m repro worker --listen 127.0.0.1:7601
    python -m repro suite --workers 127.0.0.1:7601,127.0.0.1:7602
    python -m repro suite --quick --metrics --events-jsonl frames.jsonl
    python -m repro bench list --results benchmarks/results
    python -m repro bench trend --ingest BENCH_suite.json --gate
    python -m repro dash --replay frames.jsonl
"""

from __future__ import annotations

import argparse
import sys

from .arch import MACHINE_PRESETS
from .core.pipeline_runner import PipelineReport
from .errors import ReproError, UnknownWorkloadError
from .service import (
    AnalysisRequest,
    AnalysisService,
    CompileRequest,
    EmulateRequest,
    Fig1Request,
    PipelineRequest,
    ResultEnvelope,
    SuiteRequest,
    WorkloadListRequest,
    default_service,
    serve_forever,
)

_MACHINES = MACHINE_PRESETS


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Thermal-aware data flow analysis (DAC 2009 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_input_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("ir_file", nargs="?", help="textual IR file (one function)")
        p.add_argument("--workload", "-w", help="built-in workload name")
        p.add_argument(
            "--machine", "-m", choices=sorted(_MACHINES), default="rf64",
            help="target register file preset (default rf64)",
        )

    def add_analysis_args(p: argparse.ArgumentParser, delta: float) -> None:
        p.add_argument("--delta", type=float, default=delta,
                       help=f"convergence threshold in Kelvin (default {delta})")
        p.add_argument("--merge", choices=["max", "mean", "freq"],
                       default="freq", help="CFG join mode (default freq)")
        p.add_argument("--engine", choices=["auto", "compiled", "stepped"],
                       default="auto",
                       help="fixed-point engine: compiled block transfers or "
                            "the per-instruction stepped loop (default auto)")

    def add_sweep_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument("--sweep",
                       choices=["auto", "batched", "blockwise", "sparse"],
                       default="auto",
                       help="compiled-engine sweep strategy: dense stacked "
                            "map (batched), CSR stacked map (sparse), "
                            "per-block loop (blockwise), or density-chosen "
                            "(default auto)")

    def add_stats_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument("--stats", action="store_true",
                       help="print the shared analysis context's cache stats")

    def add_metrics_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument("--metrics", action="store_true",
                       help="enable the process-wide observability "
                            "registry: sweep/cache/dispatch counters "
                            "ride home on the envelope's metrics field "
                            "and print after the report")

    p_an = sub.add_parser("analyze", help="run the thermal data flow analysis")
    add_input_args(p_an)
    add_analysis_args(p_an, delta=0.01)
    add_sweep_arg(p_an)
    p_an.add_argument("--max-iterations", type=int, default=2000,
                      help="iteration budget before reporting non-convergence "
                           "(default 2000)")
    p_an.add_argument("--policy", default="first-free",
                      help="assignment policy for allocation (default first-free)")
    p_an.add_argument("--chip", action="store_true",
                      help="analyze on the die-level chip model "
                           "(RF + ALU + D-cache)")
    p_an.add_argument("--no-map", action="store_true",
                      help="suppress the ASCII thermal map")
    p_an.add_argument("--top", type=int, default=5,
                      help="number of critical variables to report")
    add_stats_arg(p_an)
    add_metrics_arg(p_an)

    p_co = sub.add_parser("compile", help="thermal-aware compilation pipeline")
    add_input_args(p_co)
    add_analysis_args(p_co, delta=0.05)
    add_sweep_arg(p_co)
    p_co.add_argument("--policy", default="first-free",
                      help="baseline assignment policy (default first-free)")
    add_stats_arg(p_co)
    add_metrics_arg(p_co)

    p_em = sub.add_parser("emulate", help="feedback-driven thermal emulation")
    add_input_args(p_em)
    p_em.add_argument("--policy", default="first-free")
    p_em.add_argument("--compare-analysis", action="store_true",
                      help="also run the analysis and report its accuracy")
    add_analysis_args(p_em, delta=0.01)
    add_stats_arg(p_em)

    p_f1 = sub.add_parser("fig1", help="Fig. 1 policy comparison maps")
    add_input_args(p_f1)

    p_su = sub.add_parser(
        "suite",
        help="analyze the whole workload suite through one shared context",
    )
    p_su.add_argument("--workloads", "-w", nargs="+", metavar="NAME",
                      help="kernel subset (default: the full suite)")
    p_su.add_argument("--machine", "-m", choices=sorted(_MACHINES),
                      default="rf64",
                      help="target register file preset (default rf64)")
    p_su.add_argument("--delta", type=float, default=0.01,
                      help="convergence threshold in Kelvin (default 0.01)")
    p_su.add_argument("--merge", choices=["max", "mean", "freq"],
                      default="freq", help="CFG join mode (default freq)")
    p_su.add_argument("--engine", choices=["auto", "compiled", "stepped"],
                      default="auto", help="fixed-point engine (default auto)")
    add_sweep_arg(p_su)
    p_su.add_argument("--policy", default="first-free",
                      help="assignment policy for allocation "
                           "(default first-free)")
    p_su.add_argument("--chip", action="store_true",
                      help="analyze on the die-level chip model "
                           "(RF + ALU + D-cache)")
    p_su.add_argument("--pressure", action="store_true",
                      help="also run the E5 pressure-scenario generators")
    p_su.add_argument("--random", type=int, default=0, metavar="N",
                      help="also run N seeded random-loop scenarios")
    p_su.add_argument("--quick", action="store_true",
                      help="five-kernel subset (CI smoke mode)")
    p_su.add_argument("--processes", type=int, default=1,
                      help="worker processes (default 1: one process, "
                           "one shared context)")
    p_su.add_argument("--workers", metavar="HOST:PORT,...",
                      help="shard the suite across remote workers "
                           "(`python -m repro worker --listen HOST:PORT` "
                           "processes), merging per-worker reports and "
                           "summing their context stats; lost workers' "
                           "shards are resubmitted to the survivors")
    p_su.add_argument("--max-worker-failures", type=int, default=2,
                      metavar="N",
                      help="consecutive failures before the registry "
                           "marks a worker dead (default 2)")
    p_su.add_argument("--json", metavar="PATH", dest="json_path",
                      help="write the machine-readable report "
                           "(e.g. BENCH_suite.json)")
    p_su.add_argument("--events-jsonl", metavar="PATH",
                      dest="events_jsonl",
                      help="capture the run's progress events as "
                           "event-frame JSON lines (replayable with "
                           "`repro dash --replay PATH`)")
    add_metrics_arg(p_su)

    p_pl = sub.add_parser(
        "pipeline",
        help="analyze a pipeline of kernels as one thermal program",
    )
    p_pl.add_argument("stages", nargs="*", metavar="NAME",
                      help="ordered workload names (repeats allowed); the "
                           "entry state of each stage is the exit state of "
                           "the previous one")
    p_pl.add_argument("--machine", "-m", choices=sorted(_MACHINES),
                      default="rf64",
                      help="target register file preset (default rf64)")
    p_pl.add_argument("--strategy",
                      choices=["stacked", "composed", "sequential"],
                      default="stacked",
                      help="pipeline engine: one stacked pipeline-wide "
                           "fixed point, exact summary composition, or the "
                           "per-kernel carry-through reference "
                           "(default stacked)")
    p_pl.add_argument("--delta", type=float, default=0.01,
                      help="convergence threshold in Kelvin (default 0.01)")
    p_pl.add_argument("--merge", choices=["max", "mean", "freq"],
                      default="freq", help="CFG join mode (default freq; "
                      "max requires --strategy sequential)")
    p_pl.add_argument("--engine", choices=["auto", "compiled", "stepped"],
                      default="auto", help="fixed-point engine for the "
                      "sequential strategy (default auto)")
    add_sweep_arg(p_pl)
    p_pl.add_argument("--warm-start", action="store_true",
                      help="restart the stacked fixed point from the "
                           "shared context's stored pipeline solution "
                           "when one is still valid (incremental "
                           "re-analysis; off keeps runs bit-reproducible)")
    p_pl.add_argument("--policy", default="first-free",
                      help="assignment policy for allocation "
                           "(default first-free)")
    p_pl.add_argument("--chip", action="store_true",
                      help="analyze on the die-level chip model")
    p_pl.add_argument("--random", type=int, default=0, metavar="N",
                      help="generate a seeded random N-stage pipeline "
                           "instead of naming stages")
    p_pl.add_argument("--seed", type=int, default=0,
                      help="seed for --random (default 0)")
    p_pl.add_argument("--json", metavar="PATH", dest="json_path",
                      help="write the machine-readable report "
                           "(e.g. BENCH_pipeline.json)")
    add_stats_arg(p_pl)
    add_metrics_arg(p_pl)

    p_sc = sub.add_parser(
        "schedule",
        help="search stage orderings for the coolest schedule",
    )
    p_sc.add_argument("stages", nargs="*", metavar="NAME",
                      help="the stage multiset as workload names (repeats "
                           "allowed); the search picks their order")
    p_sc.add_argument("--machine", "-m", choices=sorted(_MACHINES),
                      default="rf64",
                      help="target register file preset (default rf64)")
    p_sc.add_argument("--strategy",
                      choices=["exhaustive", "greedy", "anneal"],
                      default="greedy",
                      help="search strategy: full deterministic enumeration "
                           "(small N), insertion construction, or seeded "
                           "simulated annealing (default greedy)")
    p_sc.add_argument("--objective", choices=["peak", "dwell", "steady"],
                      default="peak",
                      help="metric to minimize: one-pass peak temperature, "
                           "instruction-weighted hotspot dwell, or the "
                           "steady-schedule peak via the summary fixed "
                           "point (default peak)")
    p_sc.add_argument("--budget", type=int, default=2000,
                      help="candidate-evaluation budget (default 2000)")
    p_sc.add_argument("--seed", type=int, default=0,
                      help="RNG seed for --strategy anneal and --random "
                           "stage generation (default 0)")
    p_sc.add_argument("--random", type=int, default=0, metavar="N",
                      help="search a seeded random N-stage pipeline "
                           "instead of naming stages")
    p_sc.add_argument("--policy", default="first-free",
                      help="base assignment policy (default first-free)")
    p_sc.add_argument("--placements", metavar="POLICY,...",
                      help="comma-separated assignment policies to search "
                           "per slot (the chip-level placement axis)")
    p_sc.add_argument("--chip", action="store_true",
                      help="score on the die-level chip model")
    p_sc.add_argument("--dwell-threshold", type=float, default=1.0,
                      help="Kelvin above ambient that counts as hot for "
                           "the dwell objective (default 1.0)")
    p_sc.add_argument("--delta", type=float, default=0.01,
                      help="convergence threshold for the evidence "
                           "pipeline (default 0.01)")
    p_sc.add_argument("--merge", choices=["max", "mean", "freq"],
                      default="freq", help="CFG join mode (default freq)")
    add_sweep_arg(p_sc)
    p_sc.add_argument("--workers", metavar="HOST:PORT,...",
                      help="shard exhaustive candidate batches across "
                           "remote workers (same argmin as inline; lost "
                           "workers' shards are resubmitted)")
    p_sc.add_argument("--max-worker-failures", type=int, default=2,
                      metavar="N",
                      help="consecutive failures before the registry "
                           "marks a worker dead (default 2)")
    p_sc.add_argument("--json", metavar="PATH", dest="json_path",
                      help="write the machine-readable repro.schedule/1 "
                           "report (e.g. BENCH_schedule.json)")
    add_stats_arg(p_sc)
    add_metrics_arg(p_sc)

    sub.add_parser("workloads", help="list the built-in workload suite")

    p_sv = sub.add_parser(
        "serve",
        help="serve line-delimited JSON requests from stdin",
    )
    p_sv.add_argument("--max-workers", type=int, default=4,
                      help="service thread-pool width (default 4)")
    p_sv.add_argument("--unordered", action="store_true",
                      help="write each envelope as its request completes "
                           "(no head-of-line blocking; match responses on "
                           "the request_id echo) instead of request order")

    p_wk = sub.add_parser(
        "worker",
        help="serve the envelope protocol over a TCP socket",
    )
    p_wk.add_argument("--listen", metavar="HOST:PORT",
                      default="127.0.0.1:7601",
                      help="bind address (default 127.0.0.1:7601; port 0 "
                           "picks an ephemeral port and prints it)")
    p_wk.add_argument("--max-workers", type=int, default=4,
                      help="service thread-pool width (default 4)")

    p_be = sub.add_parser(
        "bench",
        help="benchmark results: schema listing, trend store, CI gate",
    )
    bsub = p_be.add_subparsers(dest="bench_command", required=True)

    b_ls = bsub.add_parser(
        "list",
        help="scan a results directory for known/stale/unknown schemas",
    )
    b_ls.add_argument("--results", default="benchmarks/results",
                      metavar="DIR",
                      help="results directory to scan "
                           "(default benchmarks/results)")

    def add_store_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument("--store",
                       default="benchmarks/results/trends.jsonl",
                       metavar="PATH",
                       help="trend store JSONL file (default "
                            "benchmarks/results/trends.jsonl)")
        p.add_argument("--commit", metavar="SHA",
                       help="commit id to stamp ingested records with "
                            "(default: the payload's meta block)")

    b_in = bsub.add_parser(
        "ingest",
        help="append one or more reports' metrics to the trend store",
    )
    b_in.add_argument("files", nargs="+", metavar="REPORT.json",
                      help="schema-bearing report files (BENCH_*.json, "
                           "suite/pipeline/schedule reports)")
    add_store_arg(b_in)

    b_tr = bsub.add_parser(
        "trend",
        help="per-metric deltas vs the rolling baseline; --gate "
             "fails on sustained regressions",
    )
    add_store_arg(b_tr)
    b_tr.add_argument("--ingest", nargs="*", default=[],
                      metavar="REPORT.json",
                      help="reports to ingest into the store first")
    b_tr.add_argument("--window", type=int, default=8,
                      help="rolling-baseline width in commits "
                           "(default 8)")
    b_tr.add_argument("-k", type=float, default=3.0, dest="k",
                      help="MAD multiplier for the noise floor "
                           "(default 3.0)")
    b_tr.add_argument("--rel-floor", type=float, default=0.02,
                      help="relative noise floor as a fraction of the "
                           "baseline median (default 0.02)")
    b_tr.add_argument("--limit", type=int, default=20,
                      help="table rows to print (default 20)")
    b_tr.add_argument("--gate", action="store_true",
                      help="exit 4 when a metric regressed on two "
                           "consecutive commits")
    b_tr.add_argument("--json", metavar="PATH", dest="json_path",
                      help="write the repro.obs-trend/1 verdict")

    p_da = sub.add_parser(
        "dash",
        help="terminal dashboard over the job events stream",
    )
    p_da.add_argument("--replay", metavar="PATH",
                      help="event-frame JSON lines to replay "
                           "(default: stdin)")
    p_da.add_argument("--attach", metavar="HOST:PORT",
                      help="poll a running worker's job through the "
                           "events job-queue kind (requires --job)")
    p_da.add_argument("--job", metavar="ID",
                      help="job id to follow with --attach")
    p_da.add_argument("--playback", metavar="REPORT.json",
                      help="heat-strip playback of an archived "
                           "suite/pipeline report")
    p_da.add_argument("--every", type=int, default=25,
                      help="redraw every N events (0: final frame "
                           "only; default 25)")
    p_da.add_argument("--poll", type=float, default=0.5,
                      help="--attach poll interval in seconds "
                           "(default 0.5)")
    return parser


def _print_envelope(envelope: ResultEnvelope, stats: bool = False) -> int:
    """Render one envelope the way the pre-service CLI printed results."""
    if not envelope.ok:
        print(f"error: {envelope.error_message()}", file=sys.stderr)
        return envelope.exit_code
    rendered = envelope.rendered
    if rendered:
        print(rendered.rstrip("\n"))
    if stats and envelope.context_stats:
        s = envelope.context_stats
        print(
            f"context: {s.get('analyses', 0)} analyses, "
            f"{s.get('block_compiles', 0)} block compiles, "
            f"{s.get('block_hits', 0)} block hits, "
            f"{s.get('operator_hits', 0)} operator hits"
        )
    return envelope.exit_code


def _enable_metrics(args) -> None:
    """Flip the process-wide obs registry on for ``--metrics`` runs."""
    if getattr(args, "metrics", False):
        from .obs.metrics import enable_metrics

        enable_metrics()


def _print_metrics(args) -> None:
    if getattr(args, "metrics", False):
        from .obs.metrics import default_registry

        print(default_registry().render())


def cmd_analyze(args) -> int:
    request = AnalysisRequest(
        workload=args.workload,
        ir_path=args.ir_file,
        machine=args.machine,
        chip=args.chip,
        policy=args.policy,
        delta=args.delta,
        merge=args.merge,
        engine=args.engine,
        sweep=args.sweep,
        max_iterations=args.max_iterations,
        top=args.top,
        show_map=not args.no_map,
    )
    _enable_metrics(args)
    code = _print_envelope(default_service().execute(request), stats=args.stats)
    _print_metrics(args)
    return code


def cmd_compile(args) -> int:
    request = CompileRequest(
        workload=args.workload,
        ir_path=args.ir_file,
        machine=args.machine,
        policy=args.policy,
        delta=args.delta,
        merge=args.merge,
        engine=args.engine,
        sweep=args.sweep,
    )
    _enable_metrics(args)
    code = _print_envelope(default_service().execute(request), stats=args.stats)
    _print_metrics(args)
    return code


def cmd_emulate(args) -> int:
    request = EmulateRequest(
        workload=args.workload,
        ir_path=args.ir_file,
        machine=args.machine,
        policy=args.policy,
        compare_analysis=args.compare_analysis,
        delta=args.delta,
        merge=args.merge,
        engine=args.engine,
    )
    return _print_envelope(default_service().execute(request), stats=args.stats)


def cmd_fig1(args) -> int:
    request = Fig1Request(
        workload=args.workload, ir_path=args.ir_file, machine=args.machine
    )
    return _print_envelope(default_service().execute(request))


def _shard_narration(event: dict) -> str | None:
    """A stderr line for shard/retry progress events (else ``None``)."""
    kind = event.get("event")
    if kind == "shard":
        return (
            f"shard {event['index']} on {event['worker']}: "
            f"{'ok' if event['ok'] else 'FAILED'}"
        )
    if kind == "retry":
        error = event.get("error") or {}
        return (
            f"worker {event.get('worker')} lost "
            f"(attempt {event.get('attempt')}, "
            f"{error.get('type', 'WorkerError')}): resubmitting shard"
        )
    return None


def _remote_backend(args):
    """A RemoteBackend over the comma-separated ``--workers`` list."""
    from .service import RemoteBackend

    return RemoteBackend(
        [w.strip() for w in args.workers.split(",") if w.strip()],
        max_failures=args.max_worker_failures,
    )


class _EventCapture:
    """Progress events → event-frame JSON lines (``--events-jsonl``).

    Writes the wire shape (``{"frame": "event", ...}``) so the capture
    replays through ``repro dash --replay`` and any other frame reader.
    A lock serializes writers — sharded runs narrate from multiple
    dispatcher threads.
    """

    def __init__(self, path: str) -> None:
        import itertools
        import threading

        self.path = path
        self._handle = open(path, "w")
        self._count = itertools.count()
        self._lock = threading.Lock()

    def write(self, event: dict) -> None:
        import json as _json

        from .service import EventFrame

        frame = EventFrame(
            job_id=event.get("job_id"), seq=next(self._count),
            event=dict(event),
        )
        line = _json.dumps(frame.to_dict(), sort_keys=True)
        with self._lock:
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        self._handle.close()


def cmd_suite(args) -> int:
    request = SuiteRequest(
        workloads=tuple(args.workloads) if args.workloads else None,
        machine=args.machine,
        chip=args.chip,
        delta=args.delta,
        merge=args.merge,
        engine=args.engine,
        sweep=args.sweep,
        policy=args.policy,
        quick=args.quick,
        include_pressure=args.pressure,
        random_count=args.random,
        processes=args.processes,
    )
    _enable_metrics(args)
    capture = _EventCapture(args.events_jsonl) if args.events_jsonl else None
    try:
        if args.workers:
            # Shard across remote workers: submit as a job on the remote
            # backend and narrate shard completions (and any worker-loss
            # resubmissions) while it runs.
            backend = _remote_backend(args)

            def narrate(event):
                if capture is not None:
                    capture.write(event)
                text = _shard_narration(event)
                if text:
                    print(text, file=sys.stderr)

            try:
                envelope = default_service().submit(
                    request, progress=narrate, backend=backend
                ).result()
            finally:
                backend.close()
        elif capture is not None:
            envelope = default_service().execute(
                request, progress=capture.write
            )
        else:
            envelope = default_service().execute(request)
    finally:
        if capture is not None:
            capture.close()
    code = _print_envelope(envelope)
    if capture is not None:
        print(f"events written to {capture.path}")
    _print_metrics(args)
    if envelope.ok and args.json_path:
        import json as _json

        # The envelope already carries the report in its to_dict form;
        # one write site for both shapes, in write_json's format.
        report = dict(envelope.result["report"])
        worker_breakdown = envelope.result.get("workers")
        if worker_breakdown:
            # Keep the per-worker breakdown alongside the merged report
            # (SuiteReport.from_dict ignores the extra key on revival).
            # Absent when the run was forwarded whole to one worker
            # (single address, <2 kernels, pressure/random) — omitting
            # the key beats writing an empty list that breaks the
            # "stats equal the sum of the workers" invariant.
            report["workers"] = worker_breakdown
        with open(args.json_path, "w") as handle:
            _json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"report written to {args.json_path}")
    return code


def cmd_pipeline(args) -> int:
    stages: tuple[str, ...] | None = None
    ir_texts: tuple[str, ...] | None = None
    if args.random > 0 and args.stages:
        print(
            "error: name stages or generate them with --random, not both",
            file=sys.stderr,
        )
        return 1
    if args.random > 0:
        # Seeded random pipelines carry generated kernels the service
        # cannot load by name; ship each stage as its textual IR
        # (repeated stages share one text, hence one parsed object).
        from .ir.printer import print_function
        from .workloads import random_pipeline

        ir_texts = tuple(
            print_function(workload.function)
            for workload in random_pipeline(seed=args.seed,
                                            length=args.random)
        )
    else:
        stages = tuple(args.stages)
    request = PipelineRequest(
        stages=stages,
        ir_texts=ir_texts,
        machine=args.machine,
        chip=args.chip,
        strategy=args.strategy,
        policy=args.policy,
        delta=args.delta,
        merge=args.merge,
        engine=args.engine,
        sweep=args.sweep,
        warm_start=args.warm_start,
    )
    _enable_metrics(args)
    envelope = default_service().execute(request)
    code = _print_envelope(envelope, stats=args.stats)
    if envelope.ok and args.json_path:
        PipelineReport.from_dict(envelope.result["report"]).write_json(
            args.json_path
        )
        print(f"report written to {args.json_path}")
    _print_metrics(args)
    return code


def cmd_schedule(args) -> int:
    from .service import ScheduleRequest

    if args.random > 0 and args.stages:
        print(
            "error: name stages or generate them with --random, not both",
            file=sys.stderr,
        )
        return 1
    placements = None
    if args.placements:
        placements = tuple(
            p.strip() for p in args.placements.split(",") if p.strip()
        )
    request = ScheduleRequest(
        stages=tuple(args.stages) if args.stages else None,
        random_stages=args.random,
        seed=args.seed,
        machine=args.machine,
        chip=args.chip,
        strategy=args.strategy,
        objective=args.objective,
        budget=args.budget,
        delta=args.delta,
        merge=args.merge,
        sweep=args.sweep,
        policy=args.policy,
        placements=placements,
        dwell_threshold=args.dwell_threshold,
    )
    _enable_metrics(args)
    if args.workers:
        # Shard exhaustive candidate batches across remote workers,
        # narrating shard completions, worker-loss resubmissions and
        # running evaluation totals.
        backend = _remote_backend(args)

        def narrate(event):
            text = _shard_narration(event)
            if text:
                print(text, file=sys.stderr)
                return
            if event.get("event") == "batch":
                best = event.get("best_score")
                best_text = f"{best:.4f}" if best is not None else "-"
                print(
                    f"evaluated {event['evaluated']} candidate(s), "
                    f"best {best_text}",
                    file=sys.stderr,
                )

        try:
            envelope = default_service().submit(
                request, progress=narrate, backend=backend
            ).result()
        finally:
            backend.close()
    else:
        envelope = default_service().execute(request)
    code = _print_envelope(envelope, stats=args.stats)
    if envelope.ok and args.json_path:
        from .sched import ScheduleReport

        ScheduleReport.from_dict(envelope.result["report"]).write_json(
            args.json_path
        )
        print(f"report written to {args.json_path}")
    _print_metrics(args)
    return code


def cmd_workloads(_args) -> int:
    return _print_envelope(default_service().execute(WorkloadListRequest()))


def cmd_serve(args) -> int:
    with AnalysisService(max_workers=args.max_workers) as service:
        result = serve_forever(service, unordered=args.unordered)
    # 3 = protocol errors were answered (malformed lines, unknown
    # kinds); request-level failures still come back as envelopes.
    return result.exit_code


def cmd_worker(args) -> int:
    from .service import WorkerServer, parse_worker_address

    host, port = parse_worker_address(args.listen)
    with WorkerServer(
        host=host, port=port, max_workers=args.max_workers
    ) as worker:
        # Announce the resolved address (port 0 binds ephemerally) so
        # drivers know when — and where — the worker is reachable.
        print(f"worker listening on {worker.label}", flush=True)
        try:
            worker.serve_forever()
        except KeyboardInterrupt:
            pass
    return 0


def cmd_bench(args) -> int:
    from .obs.store import (
        TrendStore,
        render_results,
        render_trend,
        scan_results,
    )

    if args.bench_command == "list":
        print(render_results(scan_results(args.results)))
        return 0
    store = TrendStore(args.store)
    if args.bench_command == "ingest":
        total = 0
        for path in args.files:
            count = store.ingest_file(path, commit=args.commit)
            print(f"{path}: {count} metric(s)")
            total += count
        print(f"ingested {total} metric(s) into {store.path}")
        return 0
    # trend
    for path in args.ingest:
        count = store.ingest_file(path, commit=args.commit)
        print(f"ingested {count} metric(s) from {path}", file=sys.stderr)
    verdict = store.trend(window=args.window, k=args.k,
                          rel_floor=args.rel_floor)
    print(render_trend(verdict, limit=args.limit))
    if args.json_path:
        import json as _json

        with open(args.json_path, "w") as handle:
            _json.dump(verdict, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"verdict written to {args.json_path}")
    if args.gate and not verdict["gate"]["pass"]:
        # 4 = sustained regression — distinct from analysis failures
        # (1/2) and serve protocol errors (3).
        return 4
    return 0


def cmd_dash(args) -> int:
    from .obs.dash import DashboardState, follow, heat_frames

    if args.playback:
        import json as _json

        with open(args.playback) as handle:
            report = _json.load(handle)
        frames = heat_frames(report)
        for frame in frames:
            print(frame)
        if not frames:
            print("no kernel/stage heat points in report",
                  file=sys.stderr)
            return 1
        return 0

    if args.attach:
        if not args.job:
            print("error: --attach requires --job ID", file=sys.stderr)
            return 1
        import time as _time

        from .service import EventsRequest, TERMINAL_STATUSES, WorkerClient

        state = DashboardState()
        client = WorkerClient(args.attach)
        cursor = 0
        try:
            while True:
                envelope = client.request(
                    EventsRequest(job_id=args.job, after=cursor),
                    on_event=state.consume,
                )
                if not envelope.ok:
                    print(f"error: {envelope.error_message()}",
                          file=sys.stderr)
                    return 1
                state.consume(envelope.to_dict())
                cursor = int(envelope.result.get("next", cursor))
                status = envelope.result.get("status")
                print(state.render() + "\n", flush=True)
                if status in TERMINAL_STATUSES:
                    break
                _time.sleep(args.poll)
        finally:
            client.close()
        return 0 if state.events else 1

    if args.replay:
        with open(args.replay) as handle:
            state = follow(handle, out=sys.stdout, every=args.every)
    else:
        state = follow(sys.stdin, out=sys.stdout, every=args.every)
    # The smoke-test contract: an empty stream is a wiring failure.
    if not state.events:
        print("no events consumed", file=sys.stderr)
        return 1
    return 0


_COMMANDS = {
    "analyze": cmd_analyze,
    "compile": cmd_compile,
    "emulate": cmd_emulate,
    "fig1": cmd_fig1,
    "suite": cmd_suite,
    "pipeline": cmd_pipeline,
    "schedule": cmd_schedule,
    "workloads": cmd_workloads,
    "serve": cmd_serve,
    "worker": cmd_worker,
    "bench": cmd_bench,
    "dash": cmd_dash,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except UnknownWorkloadError as exc:
        # Only the workload-registry miss — a KeyError from anywhere
        # else is a bug and must surface as one.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
