"""Command-line interface.

Subcommands
-----------
``analyze``    run the thermal data flow analysis on an IR file or a
               named workload and print the report (optionally the map).
``compile``    run the full thermal-aware pipeline and print the
               before/after comparison.
``emulate``    run the feedback-driven reference flow (ground truth).
``fig1``       render the Fig. 1 policy comparison for a workload.
``suite``      analyze the whole workload suite (plus optional scenario
               generators) through one shared analysis context and
               write a machine-readable JSON report.
``workloads``  list the built-in workload suite.

Examples
--------
::

    python -m repro workloads
    python -m repro analyze --workload fir --delta 0.01
    python -m repro analyze path/to/kernel.ir --policy chessboard
    python -m repro compile --workload iir --engine compiled --merge mean
    python -m repro suite --json BENCH_suite.json
    python -m repro suite --quick --chip --pressure
    python -m repro fig1 --workload fir
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .arch import MACHINE_PRESETS, MachineDescription
from .core import (
    ExactPlacement,
    analyze,
    evaluate_rules,
    format_result,
    rank_critical_variables,
    run_suite,
)
from .errors import ReproError
from .ir import parse_function
from .opt import ThermalAwareCompiler
from .regalloc import allocate_linear_scan, policy_by_name
from .sim import ThermalEmulator, compare_to_emulation
from .thermal import render_side_by_side, summarize
from .util import format_table
from .workloads import full_suite, load, workload_names

_MACHINES = MACHINE_PRESETS


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Thermal-aware data flow analysis (DAC 2009 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_input_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("ir_file", nargs="?", help="textual IR file (one function)")
        p.add_argument("--workload", "-w", help="built-in workload name")
        p.add_argument(
            "--machine", "-m", choices=sorted(_MACHINES), default="rf64",
            help="target register file preset (default rf64)",
        )

    p_an = sub.add_parser("analyze", help="run the thermal data flow analysis")
    add_input_args(p_an)
    p_an.add_argument("--delta", type=float, default=0.01,
                      help="convergence threshold in Kelvin (default 0.01)")
    p_an.add_argument("--merge", choices=["max", "mean", "freq"], default="freq",
                      help="CFG join mode (default freq)")
    p_an.add_argument("--engine", choices=["auto", "compiled", "stepped"],
                      default="auto",
                      help="fixed-point engine: compiled block transfers or "
                           "the per-instruction stepped loop (default auto)")
    p_an.add_argument("--policy", default="first-free",
                      help="assignment policy for allocation (default first-free)")
    p_an.add_argument("--no-map", action="store_true",
                      help="suppress the ASCII thermal map")
    p_an.add_argument("--top", type=int, default=5,
                      help="number of critical variables to report")

    p_co = sub.add_parser("compile", help="thermal-aware compilation pipeline")
    add_input_args(p_co)
    p_co.add_argument("--delta", type=float, default=0.05)
    p_co.add_argument("--merge", choices=["max", "mean", "freq"], default="freq",
                      help="CFG join mode for the pipeline analyses "
                           "(default freq)")
    p_co.add_argument("--engine", choices=["auto", "compiled", "stepped"],
                      default="auto",
                      help="fixed-point engine for the pipeline analyses "
                           "(default auto)")

    p_em = sub.add_parser("emulate", help="feedback-driven thermal emulation")
    add_input_args(p_em)
    p_em.add_argument("--policy", default="first-free")
    p_em.add_argument("--compare-analysis", action="store_true",
                      help="also run the analysis and report its accuracy")

    p_f1 = sub.add_parser("fig1", help="Fig. 1 policy comparison maps")
    add_input_args(p_f1)

    p_su = sub.add_parser(
        "suite",
        help="analyze the whole workload suite through one shared context",
    )
    p_su.add_argument("--workloads", "-w", nargs="+", metavar="NAME",
                      help="kernel subset (default: the full suite)")
    p_su.add_argument("--machine", "-m", choices=sorted(_MACHINES),
                      default="rf64",
                      help="target register file preset (default rf64)")
    p_su.add_argument("--delta", type=float, default=0.01,
                      help="convergence threshold in Kelvin (default 0.01)")
    p_su.add_argument("--merge", choices=["max", "mean", "freq"],
                      default="freq", help="CFG join mode (default freq)")
    p_su.add_argument("--engine", choices=["auto", "compiled", "stepped"],
                      default="auto", help="fixed-point engine (default auto)")
    p_su.add_argument("--policy", default="first-free",
                      help="assignment policy for allocation "
                           "(default first-free)")
    p_su.add_argument("--chip", action="store_true",
                      help="analyze on the die-level chip model "
                           "(RF + ALU + D-cache)")
    p_su.add_argument("--pressure", action="store_true",
                      help="also run the E5 pressure-scenario generators")
    p_su.add_argument("--random", type=int, default=0, metavar="N",
                      help="also run N seeded random-loop scenarios")
    p_su.add_argument("--quick", action="store_true",
                      help="five-kernel subset (CI smoke mode)")
    p_su.add_argument("--processes", type=int, default=1,
                      help="worker processes (default 1: one process, "
                           "one shared context)")
    p_su.add_argument("--json", metavar="PATH", dest="json_path",
                      help="write the machine-readable report "
                           "(e.g. BENCH_suite.json)")

    sub.add_parser("workloads", help="list the built-in workload suite")
    return parser


def _load_function(args) -> tuple:
    """Resolve (function, args list, memory dict) from CLI arguments."""
    if args.workload:
        wl = load(args.workload)
        return wl.function, wl.args, dict(wl.memory)
    if args.ir_file:
        text = Path(args.ir_file).read_text()
        return parse_function(text), [], {}
    raise ReproError("provide an IR file or --workload NAME")


def _machine(args) -> MachineDescription:
    return _MACHINES[args.machine]()


def cmd_analyze(args) -> int:
    machine = _machine(args)
    function, _run_args, _memory = _load_function(args)
    allocation = allocate_linear_scan(
        function, machine, policy_by_name(args.policy)
    )
    result = analyze(
        allocation.function, machine, delta=args.delta, merge=args.merge,
        engine=args.engine,
    )
    placement = ExactPlacement(machine.geometry.num_registers)
    criticals = rank_critical_variables(result, placement, top_k=args.top)
    plan = evaluate_rules(result, placement, machine)
    print(format_result(result, criticals=criticals, plan=plan,
                        show_map=not args.no_map))
    return 0 if result.converged else 2


def cmd_compile(args) -> int:
    machine = _machine(args)
    function, _run_args, _memory = _load_function(args)
    compiler = ThermalAwareCompiler(
        machine, delta=args.delta, merge=args.merge, engine=args.engine
    )
    result = compiler.compile(function)
    print(result.plan)
    print()
    for report in result.pass_reports:
        print(f"  {report}")
    summary = result.summary()
    print()
    print(format_table(
        ["metric", "before", "after"],
        [
            ("instructions", summary["instructions_before"],
             summary["instructions_after"]),
            ("predicted peak (K)", summary.get("peak_before", float("nan")),
             summary.get("peak_after", float("nan"))),
            ("predicted gradient (K)", summary.get("gradient_before", float("nan")),
             summary.get("gradient_after", float("nan"))),
        ],
    ))
    return 0


def cmd_emulate(args) -> int:
    machine = _machine(args)
    function, run_args, memory = _load_function(args)
    allocation = allocate_linear_scan(
        function, machine, policy_by_name(args.policy)
    )
    emulator = ThermalEmulator(machine)
    result = emulator.run(allocation.function, args=run_args, memory=memory)
    s = summarize(result.steady_state)
    print(f"return value: {result.execution.return_value}")
    print(f"cycles:       {result.cycles}")
    print(f"steady map:   peak={s.peak:.2f}K spread={s.spread:.2f}K "
          f"gradient={s.gradient:.2f}K sigma={s.std:.3f}K")
    if args.compare_analysis:
        analysis = analyze(allocation.function, machine, delta=0.01)
        report = compare_to_emulation(
            analysis.peak_state(), result,
            predicted_seconds=analysis.wall_time_seconds,
        )
        print(f"analysis:     r={report.pearson_r:.3f} "
              f"rmse={report.rmse_kelvin:.3f}K "
              f"hottest={'ok' if report.hottest_register_match else 'missed'} "
              f"speedup={report.speedup:.1f}x")
    return 0


def cmd_fig1(args) -> int:
    machine = _machine(args)
    function, run_args, memory = _load_function(args)
    emulator = ThermalEmulator(machine)
    states, titles, rows = [], [], []
    for name in ("first-free", "random", "chessboard"):
        allocation = allocate_linear_scan(
            function, machine, policy_by_name(name, seed=1)
        )
        state = emulator.steady_map(
            allocation.function, args=run_args, memory=dict(memory)
        )
        states.append(state)
        titles.append(name)
        s = summarize(state)
        rows.append((name, s.peak - 318.15, s.gradient, s.std))
    print(render_side_by_side(states, titles=titles))
    print()
    print(format_table(
        ["policy", "peak dT (K)", "gradient (K)", "sigma (K)"], rows
    ))
    return 0


def cmd_suite(args) -> int:
    report = run_suite(
        names=args.workloads,
        machine_name=args.machine,
        chip=args.chip,
        delta=args.delta,
        merge=args.merge,
        engine=args.engine,
        policy=args.policy,
        quick=args.quick,
        include_pressure=args.pressure,
        random_count=args.random,
        processes=args.processes,
    )
    rows = [
        (
            item.name,
            item.instructions,
            item.engine + (f"/{item.sweep}" if item.sweep else ""),
            "yes" if item.converged else "NO",
            item.iterations,
            item.wall_time_seconds * 1e3,
            item.peak_delta_kelvin,
            item.gradient_kelvin,
        )
        for item in report.items
    ]
    print(format_table(
        ["kernel", "insts", "engine", "conv", "sweeps", "time (ms)",
         "peak dT (K)", "gradient (K)"],
        rows,
    ))
    totals = report.totals()
    print()
    print(f"{int(totals['kernels'])} kernels, "
          f"{int(totals['instructions'])} instructions on "
          f"{report.machine} ({report.model} model), "
          f"{report.processes} process(es): "
          f"analysis {totals['analysis_seconds'] * 1e3:.1f} ms, "
          f"wall {totals['wall_time_seconds'] * 1e3:.1f} ms")
    if report.context_stats:
        stats = report.context_stats
        print(f"shared context: {stats['analyses']} analyses, "
              f"{stats['block_compiles']} block compiles, "
              f"{stats['block_hits']} cache hits")
    if args.json_path:
        report.write_json(args.json_path)
        print(f"report written to {args.json_path}")
    return 0 if report.all_converged else 2


def cmd_workloads(_args) -> int:
    rows = []
    for wl in full_suite():
        rows.append(
            (wl.name, wl.function.instruction_count(), wl.description)
        )
    print(format_table(["name", "insts", "description"], rows))
    return 0


_COMMANDS = {
    "analyze": cmd_analyze,
    "compile": cmd_compile,
    "emulate": cmd_emulate,
    "fig1": cmd_fig1,
    "suite": cmd_suite,
    "workloads": cmd_workloads,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except KeyError as exc:
        print(f"error: unknown workload {exc}; "
              f"available: {', '.join(workload_names())}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
