"""Execution + thermal emulation: the feedback-driven reference flow."""

from .accuracy import AccuracyReport, compare_maps, compare_to_emulation
from .emulator import EmulationResult, ThermalEmulator
from .interpreter import ExecutionResult, Interpreter, RegisterAccess
from .tracegen import accesses_to_power_trace, mean_register_power

__all__ = [
    "Interpreter",
    "ExecutionResult",
    "RegisterAccess",
    "ThermalEmulator",
    "EmulationResult",
    "accesses_to_power_trace",
    "mean_register_power",
    "AccuracyReport",
    "compare_maps",
    "compare_to_emulation",
]
