"""Access trace → power trace conversion.

Each register access deposits its access energy in the cycle it happens;
the power trace samples the resulting per-node power at a fixed window
(averaging within the window), which is what the RC solver consumes.
"""

from __future__ import annotations

import numpy as np

from ..arch.energy import EnergyModel
from ..errors import SimulationError
from ..thermal.floorplan import ThermalGrid
from ..thermal.trace import PowerTrace
from .interpreter import RegisterAccess


def accesses_to_power_trace(
    accesses: list[RegisterAccess],
    total_cycles: int,
    grid: ThermalGrid,
    energy: EnergyModel,
    window: int = 64,
) -> PowerTrace:
    """Convert a register access log into a windowed node power trace.

    Parameters
    ----------
    accesses:
        Register accesses with cycle stamps (physical registers only).
    total_cycles:
        Duration of the run; defines the number of windows.
    grid:
        Thermal discretization to deposit power on.
    energy:
        Access energy model.
    window:
        Cycles per power sample; power within a window is averaged.
    """
    if window <= 0:
        raise SimulationError("window must be positive")
    if total_cycles <= 0:
        total_cycles = 1
    num_windows = (total_cycles + window - 1) // window
    num_regs = grid.geometry.num_registers
    # Energy deposited per (window, register).
    energy_acc = np.zeros((num_windows, num_regs))
    for access in accesses:
        idx = access.physical_index
        if not 0 <= idx < num_regs:
            raise SimulationError(f"register index {idx} outside the RF")
        w = min(access.cycle // window, num_windows - 1)
        energy_acc[w, idx] += energy.access_energy(access.is_write)

    window_seconds = window * energy.cycle_time
    trace = PowerTrace(grid=grid, dt=window_seconds)
    mapping = grid.mapping
    for w in range(num_windows):
        node_power = mapping @ (energy_acc[w] / window_seconds)
        trace.append(node_power)
    return trace


def mean_register_power(
    accesses: list[RegisterAccess],
    total_cycles: int,
    energy: EnergyModel,
    num_registers: int,
) -> dict[int, float]:
    """Time-averaged power per register over the whole run (W).

    Feeding this into a steady-state solve gives the "long exposure"
    thermal map — the closest analogue of the false-colour maps in the
    paper's Fig. 1.
    """
    if total_cycles <= 0:
        total_cycles = 1
    duration = total_cycles * energy.cycle_time
    power: dict[int, float] = {}
    for access in accesses:
        idx = access.physical_index
        if not 0 <= idx < num_registers:
            raise SimulationError(f"register index {idx} outside the RF")
        power[idx] = power.get(idx, 0.0) + energy.access_energy(access.is_write) / duration
    return power
