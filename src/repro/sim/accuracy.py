"""Prediction-accuracy scoring: analysis vs. emulation (experiment E3).

The paper's value proposition is that a compile-time analysis can stand
in for the feedback-driven emulation flow.  This module quantifies how
well: field correlation and RMSE between the analysis's predicted map
and the emulator's ground truth, plus the compile-time speedup.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..thermal.metrics import correlation, rmse
from ..thermal.state import ThermalState
from .emulator import EmulationResult


@dataclass(frozen=True)
class AccuracyReport:
    """How closely a predicted thermal map matches emulated ground truth."""

    pearson_r: float          # per-register field correlation
    rmse_kelvin: float        # per-register field RMSE (K)
    peak_error_kelvin: float  # |predicted peak - emulated peak|
    hottest_register_match: bool  # did prediction find the hottest register?
    predicted_seconds: float
    emulated_seconds: float

    @property
    def speedup(self) -> float:
        """Emulation wall time / analysis wall time."""
        if self.predicted_seconds <= 0:
            return float("inf")
        return self.emulated_seconds / self.predicted_seconds


def compare_maps(
    predicted: ThermalState,
    reference: ThermalState,
    predicted_seconds: float = 0.0,
    emulated_seconds: float = 0.0,
) -> AccuracyReport:
    """Score *predicted* against *reference* on per-register temperatures."""
    p = predicted.register_temperatures()
    r = reference.register_temperatures()
    return AccuracyReport(
        pearson_r=correlation(p, r),
        rmse_kelvin=rmse(p, r),
        peak_error_kelvin=float(abs(p.max() - r.max())),
        hottest_register_match=bool(int(np.argmax(p)) == int(np.argmax(r))),
        predicted_seconds=predicted_seconds,
        emulated_seconds=emulated_seconds,
    )


def compare_to_emulation(
    predicted: ThermalState,
    emulation: EmulationResult,
    predicted_seconds: float = 0.0,
) -> AccuracyReport:
    """Score a predicted map against an :class:`EmulationResult`."""
    return compare_maps(
        predicted,
        emulation.steady_state,
        predicted_seconds=predicted_seconds,
        emulated_seconds=emulation.wall_time_seconds,
    )
