"""The feedback-driven thermal emulation flow (the state of the art).

The paper's §1: *"State-of-the-art thermal emulation tools require
compiled programs in order to characterize the thermal state of the
processor; this limits their usage, in practice, to feedback-driven
optimization frameworks."*  This module is that tool, rebuilt in
simulation: execute the allocated program, convert the register access
log into power, and integrate the RC network through time.  Its output
is the ground truth against which the thermal data flow analysis is
scored (experiment E3), and the thermal maps of Fig. 1 are its
steady-state fields.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..arch.machine import MachineDescription
from ..ir.function import Function
from ..thermal.rcmodel import RFThermalModel
from ..thermal.state import ThermalState
from ..thermal.trace import ThermalTrace
from .interpreter import ExecutionResult, Interpreter
from .tracegen import accesses_to_power_trace, mean_register_power


@dataclass
class EmulationResult:
    """Everything the feedback flow produces for one program run."""

    execution: ExecutionResult
    thermal_trace: ThermalTrace
    final_state: ThermalState
    steady_state: ThermalState
    access_counts: dict[int, int] = field(default_factory=dict)
    wall_time_seconds: float = 0.0

    @property
    def peak_temperature(self) -> float:
        """Hottest node temperature reached at any time (K)."""
        return float(max(s.peak for s in self.thermal_trace))

    @property
    def cycles(self) -> int:
        return self.execution.cycles


class ThermalEmulator:
    """Interpreter + RC network = the reference thermal characterization.

    Parameters
    ----------
    machine:
        Target machine (geometry, latencies, energy).
    model:
        Thermal model; defaults to one node per register cell.
    window:
        Cycles per thermal integration step.  Smaller = finer transient
        resolution, slower emulation; the steady-state map is unaffected.
    """

    def __init__(
        self,
        machine: MachineDescription,
        model: RFThermalModel | None = None,
        window: int = 64,
    ) -> None:
        self.machine = machine
        self.model = model or RFThermalModel(
            machine.geometry, energy=machine.energy
        )
        self.window = window

    def run(
        self,
        function: Function,
        args: list[int] | None = None,
        memory: dict[int, int] | None = None,
        include_leakage: bool = True,
        initial_state: ThermalState | None = None,
    ) -> EmulationResult:
        """Execute *function* and integrate its thermal response.

        The function must already be register-allocated (physical
        registers only) — exactly the "requires compiled programs"
        restriction of the emulation flow the paper criticizes.
        """
        started = time.perf_counter()
        interpreter = Interpreter(machine=self.machine)
        execution = interpreter.run(function, args=args, memory=memory)

        power_trace = accesses_to_power_trace(
            execution.accesses,
            execution.cycles,
            self.model.grid,
            self.machine.energy,
            window=self.window,
        )

        state = initial_state or self.model.ambient_state()
        thermal_trace = ThermalTrace(grid=self.model.grid, dt=power_trace.dt)
        thermal_trace.append(state)
        for sample in power_trace.samples:
            power = sample
            if include_leakage:
                power = sample + self.model.leakage_vector(
                    state if self.machine.energy.leakage_temp_coeff else None
                )
            state = self.model.step(state, power, dt=power_trace.dt)
            thermal_trace.append(state)

        mean_power = mean_register_power(
            execution.accesses,
            execution.cycles,
            self.machine.energy,
            self.machine.geometry.num_registers,
        )
        steady = self._steady_with_optional_leakage(mean_power, include_leakage)

        return EmulationResult(
            execution=execution,
            thermal_trace=thermal_trace,
            final_state=state,
            steady_state=steady,
            access_counts=execution.access_counts(),
            wall_time_seconds=time.perf_counter() - started,
        )

    def _steady_with_optional_leakage(
        self, mean_power: dict[int, float], include_leakage: bool
    ) -> ThermalState:
        vector = self.model.power_vector(mean_power)
        if not include_leakage:
            return self.model.steady_state(vector)
        if self.machine.energy.leakage_temp_coeff:
            return self.model.steady_state_with_leakage(vector)
        return self.model.steady_state(vector + self.model.leakage_vector())

    def steady_map(
        self,
        function: Function,
        args: list[int] | None = None,
        memory: dict[int, int] | None = None,
    ) -> ThermalState:
        """Only the steady-state map (the Fig. 1 visual), computed fast."""
        interpreter = Interpreter(machine=self.machine)
        execution = interpreter.run(function, args=args, memory=memory)
        mean_power = mean_register_power(
            execution.accesses,
            execution.cycles,
            self.machine.energy,
            self.machine.geometry.num_registers,
        )
        return self._steady_with_optional_leakage(mean_power, include_leakage=True)
