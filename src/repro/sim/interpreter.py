"""Concrete IR interpreter producing register access traces.

This is one half of the feedback-driven reference flow the paper aims to
replace: run the compiled program, log every register file access with
its cycle, and hand the log to the thermal solver.  (The other half is
:mod:`repro.sim.emulator`.)

Semantics: 32-bit two's-complement integers, C-style truncating
division, shift counts masked to 0–31.  Memory is a flat integer-indexed
word store; stack slots are a separate namespace (they never touch the
register file, which is the whole point of spilling).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..arch.machine import MachineDescription
from ..errors import SimulationError
from ..ir.function import Function
from ..ir.instructions import Instruction, Opcode
from ..ir.values import Constant, PhysicalRegister, StackSlot, Value

_MASK = 0xFFFFFFFF


def _wrap(value: int) -> int:
    """Wrap to signed 32-bit."""
    value &= _MASK
    return value - (1 << 32) if value & (1 << 31) else value


@dataclass(frozen=True)
class RegisterAccess:
    """One register file access: which register, when, read or write."""

    cycle: int
    register: Value
    is_write: bool

    @property
    def physical_index(self) -> int:
        """Physical register index; raises for virtual registers."""
        if isinstance(self.register, PhysicalRegister):
            return self.register.index
        raise SimulationError(
            f"access trace entry for non-physical register {self.register}"
        )


@dataclass
class ExecutionResult:
    """Outcome of one interpreter run."""

    return_value: int | None
    cycles: int
    instructions_executed: int
    accesses: list[RegisterAccess] = field(default_factory=list)
    memory: dict[int, int] = field(default_factory=dict)
    block_counts: dict[str, int] = field(default_factory=dict)

    def access_counts(self) -> dict[int, int]:
        """Accesses per physical register index (the power-density map)."""
        counts: dict[int, int] = {}
        for access in self.accesses:
            idx = access.physical_index
            counts[idx] = counts.get(idx, 0) + 1
        return counts


class Interpreter:
    """Executes a function, logging every register access with its cycle.

    Parameters
    ----------
    machine:
        Supplies per-opcode latencies; when omitted every instruction
        takes one cycle (useful for semantics-only tests).
    trace_accesses:
        Disable to run faster when only the return value matters.
    max_steps:
        Instruction budget; exceeded → :class:`SimulationError` (guards
        against accidentally non-terminating workloads).
    """

    def __init__(
        self,
        machine: MachineDescription | None = None,
        trace_accesses: bool = True,
        max_steps: int = 2_000_000,
    ) -> None:
        self.machine = machine
        self.trace_accesses = trace_accesses
        self.max_steps = max_steps

    def run(
        self,
        function: Function,
        args: list[int] | None = None,
        memory: dict[int, int] | None = None,
    ) -> ExecutionResult:
        """Execute *function* with *args* bound to its parameters."""
        args = args or []
        if len(args) != len(function.params):
            raise SimulationError(
                f"@{function.name} takes {len(function.params)} args, got {len(args)}"
            )
        registers: dict[Value, int] = {
            param: _wrap(value) for param, value in zip(function.params, args)
        }
        slots: dict[StackSlot, int] = {}
        mem: dict[int, int] = dict(memory or {})

        accesses: list[RegisterAccess] = []
        block_counts: dict[str, int] = {}
        cycle = 0
        steps = 0
        block = function.entry
        index = 0

        def read(value: Value) -> int:
            if isinstance(value, Constant):
                return value.value
            if isinstance(value, StackSlot):
                raise SimulationError(f"stack slot {value} read as operand")
            if value not in registers:
                raise SimulationError(f"read of undefined register {value}")
            if self.trace_accesses:
                accesses.append(RegisterAccess(cycle, value, is_write=False))
            return registers[value]

        def write(reg: Value, value: int) -> None:
            registers[reg] = _wrap(value)
            if self.trace_accesses:
                accesses.append(RegisterAccess(cycle, reg, is_write=True))

        while True:
            if index >= len(block.instructions):
                raise SimulationError(
                    f"fell off the end of block {block.name!r} (unterminated?)"
                )
            inst = block.instructions[index]
            steps += 1
            if steps > self.max_steps:
                raise SimulationError(
                    f"execution exceeded {self.max_steps} instructions"
                )
            if index == 0:
                block_counts[block.name] = block_counts.get(block.name, 0) + 1

            latency = (
                self.machine.instruction_latency(inst.opcode)
                if self.machine is not None
                else 1
            )

            op = inst.opcode
            next_block: str | None = None
            return_value: int | None = None
            finished = False

            if op is Opcode.LI:
                write(inst.dest, read(inst.operands[0]))
            elif op is Opcode.COPY:
                write(inst.dest, read(inst.operands[0]))
            elif op is Opcode.LOAD:
                addr = read(inst.operands[0])
                write(inst.dest, mem.get(addr, 0))
            elif op is Opcode.STORE:
                addr = read(inst.operands[0])
                mem[addr] = _wrap(read(inst.operands[1]))
            elif op is Opcode.SPILL:
                slot = inst.operands[0]
                assert isinstance(slot, StackSlot)
                slots[slot] = _wrap(read(inst.operands[1]))
            elif op is Opcode.RELOAD:
                slot = inst.operands[0]
                assert isinstance(slot, StackSlot)
                if slot not in slots:
                    raise SimulationError(f"reload of unwritten slot {slot}")
                write(inst.dest, slots[slot])
            elif op is Opcode.NOP:
                pass
            elif op is Opcode.JUMP:
                next_block = inst.targets[0]
            elif op is Opcode.BR:
                next_block = inst.targets[0] if read(inst.operands[0]) else inst.targets[1]
            elif op is Opcode.RET:
                return_value = read(inst.operands[0]) if inst.operands else None
                finished = True
            elif op is Opcode.HALT:
                finished = True
            else:
                write(inst.dest, self._alu(inst, read))

            cycle += latency
            if finished:
                return ExecutionResult(
                    return_value=return_value,
                    cycles=cycle,
                    instructions_executed=steps,
                    accesses=accesses,
                    memory=mem,
                    block_counts=block_counts,
                )
            if next_block is not None:
                block = function.block(next_block)
                index = 0
            else:
                index += 1

    @staticmethod
    def _alu(inst: Instruction, read) -> int:
        op = inst.opcode
        if op is Opcode.NEG:
            return -read(inst.operands[0])
        if op is Opcode.NOT:
            return ~read(inst.operands[0])
        a = read(inst.operands[0])
        b = read(inst.operands[1])
        if op is Opcode.ADD:
            return a + b
        if op is Opcode.SUB:
            return a - b
        if op is Opcode.MUL:
            return a * b
        if op is Opcode.DIV:
            if b == 0:
                raise SimulationError("division by zero")
            return int(a / b)  # truncate toward zero
        if op is Opcode.REM:
            if b == 0:
                raise SimulationError("remainder by zero")
            return a - int(a / b) * b
        if op is Opcode.AND:
            return a & b
        if op is Opcode.OR:
            return a | b
        if op is Opcode.XOR:
            return a ^ b
        if op is Opcode.SHL:
            return a << (b & 31)
        if op is Opcode.SHR:
            return (a & _MASK) >> (b & 31)
        if op is Opcode.CMPEQ:
            return int(a == b)
        if op is Opcode.CMPNE:
            return int(a != b)
        if op is Opcode.CMPLT:
            return int(a < b)
        if op is Opcode.CMPLE:
            return int(a <= b)
        if op is Opcode.CMPGT:
            return int(a > b)
        if op is Opcode.CMPGE:
            return int(a >= b)
        raise SimulationError(f"unhandled opcode {op}")
