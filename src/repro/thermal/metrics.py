"""Scalar thermal metrics used by every experiment table.

The paper's claims are about hot spots, steep gradients and map
homogeneity; these functions turn a :class:`ThermalState` (or a trace of
them) into the numbers the bench tables report.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .state import ThermalState


@dataclass(frozen=True)
class ThermalSummary:
    """One row of a thermal comparison table."""

    peak: float          # hottest node (K)
    mean: float          # spatial mean (K)
    spread: float        # peak - min (K)
    gradient: float      # max adjacent-node difference (K)
    std: float           # spatial standard deviation (K)
    hotspots: int        # nodes more than `hotspot_margin` above the mean

    def as_dict(self) -> dict[str, float]:
        return {
            "peak": self.peak,
            "mean": self.mean,
            "spread": self.spread,
            "gradient": self.gradient,
            "std": self.std,
            "hotspots": float(self.hotspots),
        }


def summarize(state: ThermalState, hotspot_margin: float = 5.0) -> ThermalSummary:
    """Summarize one thermal state.

    *hotspot_margin* is the excess (K) above the spatial mean beyond
    which a node counts as a hot spot.
    """
    temps = state.temperatures
    mean = float(temps.mean())
    return ThermalSummary(
        peak=state.peak,
        mean=mean,
        spread=state.spread,
        gradient=state.max_gradient(),
        std=state.std,
        hotspots=int((temps > mean + hotspot_margin).sum()),
    )


def peak_delta(state: ThermalState, ambient: float) -> float:
    """Peak temperature rise above ambient (K)."""
    return state.peak - ambient


def uniformity(state: ThermalState) -> float:
    """1 / (1 + spatial std): 1.0 for a perfectly homogenized map.

    The chessboard policy of Fig. 1(c) is the high-uniformity reference.
    """
    return 1.0 / (1.0 + state.std)


def gradient_field(state: ThermalState) -> np.ndarray:
    """Per-node maximum gradient magnitude to any 4-neighbour (K)."""
    m = state.as_matrix()
    grad = np.zeros_like(m)
    if m.shape[1] > 1:
        d = np.abs(np.diff(m, axis=1))
        grad[:, :-1] = np.maximum(grad[:, :-1], d)
        grad[:, 1:] = np.maximum(grad[:, 1:], d)
    if m.shape[0] > 1:
        d = np.abs(np.diff(m, axis=0))
        grad[:-1, :] = np.maximum(grad[:-1, :], d)
        grad[1:, :] = np.maximum(grad[1:, :], d)
    return grad


def temporal_peak(trace: list[ThermalState]) -> float:
    """Highest node temperature across a thermal trace (K)."""
    return max(state.peak for state in trace)


def temporal_mean_of_peaks(trace: list[ThermalState]) -> float:
    """Mean over time of the per-state peak temperature (K)."""
    return float(np.mean([state.peak for state in trace]))


def time_above(trace: list[ThermalState], threshold: float) -> int:
    """Number of trace samples whose peak exceeds *threshold* (K)."""
    return sum(1 for state in trace if state.peak > threshold)


def correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Pearson correlation between two fields (accuracy experiment E3).

    Degenerate (constant) fields correlate as 1.0 if equal-shaped and
    both constant, else 0.0 — avoids NaNs in edge-case workloads.
    """
    a = np.asarray(a, dtype=float).ravel()
    b = np.asarray(b, dtype=float).ravel()
    if a.std() == 0.0 or b.std() == 0.0:
        return 1.0 if a.std() == b.std() == 0.0 else 0.0
    return float(np.corrcoef(a, b)[0, 1])


def rmse(a: np.ndarray, b: np.ndarray) -> float:
    """Root-mean-square error between two fields (K)."""
    a = np.asarray(a, dtype=float).ravel()
    b = np.asarray(b, dtype=float).ravel()
    return float(np.sqrt(np.mean((a - b) ** 2)))
