"""ASCII rendering of thermal maps — the reproduction of Fig. 1's visuals.

The original figure shows false-colour maps for three register
assignment policies.  In a terminal we render the same fields with a
density character ramp, plus side-by-side composition so the bench
output mirrors the figure layout (a | b | c).
"""

from __future__ import annotations

from .state import ThermalState

#: Cold → hot character ramp.
RAMP = " .:-=+*#%@"


def render_map(
    state: ThermalState,
    t_min: float | None = None,
    t_max: float | None = None,
    title: str | None = None,
) -> str:
    """Render one thermal state as an ASCII block.

    *t_min*/*t_max* pin the colour scale so multiple maps share it
    (essential when comparing policies, as Fig. 1 does).
    """
    m = state.as_matrix()
    lo = state.min if t_min is None else t_min
    hi = state.peak if t_max is None else t_max
    span = max(hi - lo, 1e-12)
    lines = []
    if title is not None:
        lines.append(title)
    for row in m:
        chars = []
        for t in row:
            level = int((t - lo) / span * (len(RAMP) - 1) + 0.5)
            level = min(max(level, 0), len(RAMP) - 1)
            chars.append(RAMP[level] * 2)  # double width ≈ square aspect
        lines.append("".join(chars))
    lines.append(f"[{lo:.2f}K .. {hi:.2f}K]")
    return "\n".join(lines)


def render_side_by_side(
    states: list[ThermalState],
    titles: list[str] | None = None,
    gap: str = "   ",
) -> str:
    """Render several maps side by side on a shared colour scale."""
    if not states:
        return ""
    lo = min(s.min for s in states)
    hi = max(s.peak for s in states)
    titles = titles or ["" for _ in states]
    blocks = [
        render_map(s, t_min=lo, t_max=hi, title=t).splitlines()
        for s, t in zip(states, titles)
    ]
    height = max(len(b) for b in blocks)
    widths = [max(len(line) for line in b) for b in blocks]
    rows = []
    for i in range(height):
        cells = []
        for block, width in zip(blocks, widths):
            line = block[i] if i < len(block) else ""
            cells.append(line.ljust(width))
        rows.append(gap.join(cells).rstrip())
    return "\n".join(rows)


def render_register_map(state: ThermalState, per_row: int | None = None) -> str:
    """Numeric per-register temperature table (K), one row per RF row."""
    geometry = state.grid.geometry
    per_row = per_row or geometry.cols
    temps = state.register_temperatures()
    lines = []
    for start in range(0, geometry.num_registers, per_row):
        row = temps[start:start + per_row]
        lines.append(" ".join(f"{t:7.2f}" for t in row))
    return "\n".join(lines)
