"""Power and thermal traces: time series over the node mesh.

The feedback-driven reference flow (:mod:`repro.sim.emulator`) produces
these; the accuracy experiment compares the analysis's predicted states
against the emulator's :class:`ThermalTrace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ThermalModelError
from .floorplan import ThermalGrid
from .state import ThermalState


@dataclass
class PowerTrace:
    """Per-sample node power vectors (W), fixed sample period (s)."""

    grid: ThermalGrid
    dt: float
    samples: list[np.ndarray] = field(default_factory=list)

    def append(self, power: np.ndarray) -> None:
        power = np.asarray(power, dtype=float)
        if power.shape != (self.grid.num_nodes,):
            raise ThermalModelError("power sample has wrong length")
        self.samples.append(power)

    def total_energy(self) -> float:
        """Energy (J) integrated over the whole trace."""
        if not self.samples:
            return 0.0
        return float(np.sum(self.samples) * self.dt)

    def mean_power(self) -> np.ndarray:
        """Time-averaged node power (W)."""
        if not self.samples:
            return np.zeros(self.grid.num_nodes)
        return np.mean(self.samples, axis=0)

    def __len__(self) -> int:
        return len(self.samples)


@dataclass
class ThermalTrace:
    """Thermal states sampled at a fixed period."""

    grid: ThermalGrid
    dt: float
    states: list[ThermalState] = field(default_factory=list)

    def append(self, state: ThermalState) -> None:
        if state.grid.num_nodes != self.grid.num_nodes:
            raise ThermalModelError("state lives on a different grid")
        self.states.append(state)

    @property
    def final(self) -> ThermalState:
        if not self.states:
            raise ThermalModelError("empty thermal trace")
        return self.states[-1]

    def peak_over_time(self) -> np.ndarray:
        """Per-sample peak temperature (K)."""
        return np.array([s.peak for s in self.states])

    def gradient_over_time(self) -> np.ndarray:
        """Per-sample maximum spatial gradient (K)."""
        return np.array([s.max_gradient() for s in self.states])

    def time_average(self) -> ThermalState:
        """Time-averaged field (the long-exposure 'photo' of Fig. 1)."""
        if not self.states:
            raise ThermalModelError("empty thermal trace")
        acc = np.zeros(self.grid.num_nodes)
        for state in self.states:
            acc += state.temperatures
        return ThermalState(self.grid, acc / len(self.states))

    def __len__(self) -> int:
        return len(self.states)

    def __iter__(self):
        return iter(self.states)
