"""Thermal substrate: floorplan discretization, RC network, metrics, maps."""

from .chip import BlockRegion, ChipLayout, ChipPowerModel, ChipThermalModel
from .floorplan import ThermalGrid
from .maps import RAMP, render_map, render_register_map, render_side_by_side
from .metrics import (
    ThermalSummary,
    correlation,
    gradient_field,
    peak_delta,
    rmse,
    summarize,
    temporal_mean_of_peaks,
    temporal_peak,
    time_above,
    uniformity,
)
from .rcmodel import RFThermalModel, ThermalParams
from .state import ThermalState
from .trace import PowerTrace, ThermalTrace

__all__ = [
    "ChipLayout",
    "ChipThermalModel",
    "ChipPowerModel",
    "BlockRegion",
    "ThermalGrid",
    "ThermalState",
    "RFThermalModel",
    "ThermalParams",
    "PowerTrace",
    "ThermalTrace",
    "ThermalSummary",
    "summarize",
    "peak_delta",
    "uniformity",
    "gradient_field",
    "correlation",
    "rmse",
    "temporal_peak",
    "temporal_mean_of_peaks",
    "time_above",
    "render_map",
    "render_side_by_side",
    "render_register_map",
    "RAMP",
]
