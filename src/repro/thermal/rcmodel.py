"""Compact RC thermal network of the register file (HotSpot-style).

Each thermal node of a :class:`~repro.thermal.floorplan.ThermalGrid` gets:

* a lateral conductance to each 4-neighbour through an effective silicon
  spreading layer,
* a vertical conductance to ambient through the die/package stack,
* a thermal capacitance.

The temperature field obeys ``C dT/dt = P - G (T - T_amb)`` with ``G``
symmetric positive definite, so

* steady state is a single SPD solve, and
* a transient step of duration ``dt`` under constant power has the exact
  closed form ``T' = T_ss + e^{-C⁻¹G dt}(T - T_ss)`` — we precompute the
  matrix exponential once per step size, making per-instruction stepping
  a dense mat-vec.

Thermal acceleration
--------------------
Real RF thermal time constants are milliseconds — millions of cycles —
while our analyses step cycle by cycle.  ``ThermalParams.acceleration``
divides the capacitance so steady state is approached within thousands
of cycles.  This rescales *time only*: the steady-state field
``T_amb + G⁻¹P`` is capacitance-independent, so every spatial claim
(hot-spot locations, gradients, policy rankings — all of Fig. 1) is
invariant, which is why the substitution is sound.  A test asserts this
invariance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.linalg

from ..arch.energy import EnergyModel
from ..arch.registerfile import RegisterFileGeometry
from ..errors import ConvergenceError, ThermalModelError
from .floorplan import ThermalGrid
from .state import ThermalState


@dataclass(frozen=True)
class ThermalParams:
    """Physical constants of the RC network.

    Defaults are calibrated (see ``tests/thermal/test_calibration.py``)
    so that one register written every cycle at the default energy model
    sits ~3 K above an idle RF with the excess roughly halving per cell
    of distance, and a tight loop hammering a handful of neighbouring
    registers builds a 10–20 K hot spot — the regime in which the cited
    RF-reliability papers report their maps.

    Parameters
    ----------
    k_lateral:
        Effective lateral conductivity × its layer thickness is derived
        from this (W/m·K).  Silicon bulk is ~150; the default is bulk
        silicon through a thin effective spreading layer.
    spread_thickness:
        Effective thickness (m) of the lateral spreading layer.
    r_vertical_area:
        Specific vertical resistance junction→ambient (K·m²/W).
    c_areal:
        Areal heat capacity of the stack (J/K·m²) *before* acceleration.
    acceleration:
        Capacitance divisor (dimensionless); see module docstring.
    ambient:
        Ambient/package temperature (K).
    """

    k_lateral: float = 150.0
    spread_thickness: float = 5.0e-6
    r_vertical_area: float = 3.0e-6
    c_areal: float = 815.0
    acceleration: float = 1.0e4
    ambient: float = 318.15

    def __post_init__(self) -> None:
        if min(self.k_lateral, self.spread_thickness, self.r_vertical_area,
               self.c_areal, self.acceleration) <= 0:
            raise ThermalModelError("all thermal parameters must be positive")


class RFThermalModel:
    """The RC network over a thermal grid, with cached solvers.

    Parameters
    ----------
    geometry:
        Register file layout.
    grid:
        Thermal discretization (defaults to one node per register cell).
    params:
        Physical constants.
    energy:
        Energy model used for leakage injection (dynamic access power is
        supplied by callers per instruction/cycle).
    """

    def __init__(
        self,
        geometry: RegisterFileGeometry,
        grid: ThermalGrid | None = None,
        params: ThermalParams | None = None,
        energy: EnergyModel | None = None,
    ) -> None:
        self.geometry = geometry
        self.grid = grid or ThermalGrid(geometry)
        self.params = params or ThermalParams()
        self.energy = energy or EnergyModel()
        self._conductance = self._build_conductance()
        self._capacitance = self._build_capacitance()
        self._cho = scipy.linalg.cho_factor(self._conductance)
        self._step_cache: dict[float, np.ndarray] = {}
        self._cells_per_node = self.grid.cells_per_node()
        #: Step-operator cache traffic: ``expm`` evaluations paid vs.
        #: requests served from cache.  Sharing one model across many
        #: analyses (the point of AnalysisContext / AnalysisService)
        #: shows up here as hits without builds.
        self.operator_builds = 0
        self.operator_hits = 0

    # ------------------------------------------------------------------
    # Matrix construction
    # ------------------------------------------------------------------
    def _build_conductance(self) -> np.ndarray:
        grid = self.grid
        n = grid.num_nodes
        g = np.zeros((n, n))
        p = self.params
        # Lateral conductances between 4-neighbours.
        for node in range(n):
            row, col = grid.node_position(node)
            for drow, dcol in ((0, 1), (1, 0)):
                nrow, ncol = row + drow, col + dcol
                if nrow >= grid.node_rows or ncol >= grid.node_cols:
                    continue
                other = grid.node_index(nrow, ncol)
                if dcol:  # horizontal neighbour: face = height × thickness
                    cond = p.k_lateral * p.spread_thickness * (
                        grid.node_height / grid.node_width
                    )
                else:  # vertical neighbour
                    cond = p.k_lateral * p.spread_thickness * (
                        grid.node_width / grid.node_height
                    )
                g[node, node] += cond
                g[other, other] += cond
                g[node, other] -= cond
                g[other, node] -= cond
        # Vertical conductance to ambient.
        g_vert = grid.node_area / p.r_vertical_area
        g[np.diag_indices(n)] += g_vert
        return g

    def _build_capacitance(self) -> np.ndarray:
        cap = self.params.c_areal * self.grid.node_area / self.params.acceleration
        return np.full(self.grid.num_nodes, cap)

    @property
    def conductance(self) -> np.ndarray:
        """The SPD conductance matrix G (W/K)."""
        return self._conductance

    @property
    def capacitance(self) -> np.ndarray:
        """Per-node thermal capacitance (J/K), acceleration applied."""
        return self._capacitance

    def time_constant(self) -> float:
        """Dominant thermal time constant (s), acceleration applied."""
        a = self._conductance / self._capacitance[:, None]
        eigvals = np.linalg.eigvalsh((a + a.T) / 2.0)
        return float(1.0 / eigvals.min())

    # ------------------------------------------------------------------
    # Power helpers
    # ------------------------------------------------------------------
    def ambient_state(self) -> ThermalState:
        """The all-ambient state used as analysis entry value."""
        return ThermalState.uniform(self.grid, self.params.ambient)

    def power_vector(self, register_power: dict[int, float]) -> np.ndarray:
        """Per-register power (W) distributed onto the node mesh."""
        return self.grid.power_vector(register_power)

    def leakage_vector(self, state: ThermalState | None = None) -> np.ndarray:
        """Leakage power per node (W), optionally temperature-dependent."""
        if state is None or self.energy.leakage_temp_coeff == 0.0:
            per_cell = self.energy.leakage_power
            return per_cell * self._cells_per_node
        temps = state.temperatures
        per_node = np.array(
            [self.energy.leakage_at(t) for t in temps]
        ) * self._cells_per_node
        return per_node

    # ------------------------------------------------------------------
    # Solvers
    # ------------------------------------------------------------------
    def steady_state(self, power: np.ndarray | dict[int, float]) -> ThermalState:
        """Steady-state field for constant *power* (leakage not included)."""
        p = self.power_vector(power) if isinstance(power, dict) else np.asarray(power)
        if p.shape != (self.grid.num_nodes,):
            raise ThermalModelError("power vector has wrong length")
        rise = scipy.linalg.cho_solve(self._cho, p)
        return ThermalState(self.grid, self.params.ambient + rise)

    def steady_state_many(self, powers: np.ndarray) -> np.ndarray:
        """Steady-state temperatures for many power vectors at once.

        *powers* has shape ``(num_nodes, k)`` — one column per power
        vector; the result has the same shape.  A single Cholesky
        back-substitution serves all *k* columns, which is how the
        block-transfer compiler (:mod:`repro.core.transfer`) amortizes
        solver overhead across a whole block's instructions.
        """
        p = np.asarray(powers, dtype=float)
        if p.ndim != 2 or p.shape[0] != self.grid.num_nodes:
            raise ThermalModelError(
                f"expected ({self.grid.num_nodes}, k) power matrix, "
                f"got shape {p.shape}"
            )
        return self.params.ambient + scipy.linalg.cho_solve(self._cho, p)

    def steady_state_with_leakage(
        self,
        dynamic_power: np.ndarray | dict[int, float],
        tol: float = 1e-6,
        max_iterations: int = 200,
    ) -> ThermalState:
        """Steady state including temperature-dependent leakage.

        Fixed-point iterates ``T ← T_amb + G⁻¹(P_dyn + P_leak(T))``.
        Divergence (thermal runaway) raises :class:`ConvergenceError`
        with the last iterate attached — the genuine non-convergence
        case the paper's §4 anticipates.
        """
        p_dyn = (
            self.power_vector(dynamic_power)
            if isinstance(dynamic_power, dict)
            else np.asarray(dynamic_power)
        )
        state = self.ambient_state()
        for iteration in range(max_iterations):
            total = p_dyn + self.leakage_vector(state)
            new_state = self.steady_state(total)
            delta = new_state.max_abs_diff(state)
            if new_state.peak > 1000.0:
                raise ConvergenceError(
                    "thermal runaway: leakage feedback diverges",
                    partial_result=new_state,
                    iterations=iteration + 1,
                )
            if delta < tol:
                return new_state
            state = new_state
        raise ConvergenceError(
            f"leakage fixed point not reached in {max_iterations} iterations",
            partial_result=state,
            iterations=max_iterations,
        )

    def step_operator(self, dt: float) -> np.ndarray:
        """``e^{-C⁻¹G dt}`` cached per step size.

        The linear part of every transient step: ``T' = T_ss + op (T −
        T_ss)``.  The returned array is shared with the cache — treat it
        as read-only.  As a sub-stochastic non-negative matrix its ∞-norm
        is strictly below 1, which is what makes per-step and per-block
        affine transfers contractions.
        """
        cached = self._step_cache.get(dt)
        if cached is None:
            a = self._conductance / self._capacitance[:, None]
            cached = scipy.linalg.expm(-a * dt)
            self._step_cache[dt] = cached
            self.operator_builds += 1
        else:
            self.operator_hits += 1
        return cached

    def affine_step(
        self, power: np.ndarray | dict[int, float], dt: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """The affine map of one ``dt`` step under constant *power*.

        Returns ``(A, b)`` with ``T' = A·T + b``: ``A`` is the step
        operator and ``b = (I − A)·T_ss(power)``.  This is the building
        block the compiled transfer engine composes into whole-block
        maps (:mod:`repro.core.transfer`).  ``A`` is shared with the
        operator cache; ``b`` is freshly allocated.
        """
        op = self.step_operator(dt)
        target = self.steady_state(power).temperatures
        return op, target - op @ target

    def step(
        self,
        state: ThermalState,
        power: np.ndarray | dict[int, float],
        dt: float | None = None,
        cycles: int = 1,
    ) -> ThermalState:
        """Advance *state* by ``cycles`` steps of ``dt`` under constant power.

        Exact for the linear network (no discretization error): the state
        relaxes toward the steady state of *power* with the true matrix
        exponential.  Leakage is **not** added implicitly; callers include
        it in *power* so that both linear and feedback modes are explicit.
        """
        if dt is None:
            dt = self.energy.cycle_time
        if dt <= 0 or cycles <= 0:
            raise ThermalModelError("dt and cycles must be positive")
        p = self.power_vector(power) if isinstance(power, dict) else np.asarray(power)
        target = self.steady_state(p)
        # e^{-A(k·dt)} — computed directly instead of powering the 1-step map.
        op = self.step_operator(dt * cycles)
        deviation = state.temperatures - target.temperatures
        new_temps = target.temperatures + op @ deviation
        return ThermalState(self.grid, new_temps)

    def relax(self, state: ThermalState, dt: float, cycles: int = 1) -> ThermalState:
        """Advance *state* with zero power (pure cooling toward ambient)."""
        return self.step(state, np.zeros(self.grid.num_nodes), dt=dt, cycles=cycles)
