"""Chip-level thermal model: register file + ALU + D-cache on one die.

Paper §5: *"In the long-term, our goal is to develop comprehensive data
flow thermal analyses and rules relating to all parts of the
processor."*  This module is that extension: the RF no longer floats in
isolation — it shares a silicon substrate with an ALU block (heated by
every executed operation) and a D-cache block (heated by loads, stores
and the spill/reload traffic that the §4 spilling optimization
*creates*).  Heat diffuses between blocks, so optimizations that move
traffic between units move heat with it — measurable as experiment E11.

Implementation: the chip is a uniform cell grid (same cell size as the
RF) over a rectangular die; each block claims a sub-rectangle.  The
existing :class:`~repro.thermal.rcmodel.RFThermalModel` machinery builds
the RC network over the full die grid unchanged — the chip is just a
bigger "register file geometry" whose cells are owned by blocks.

Default layout (RF 8×8 → die 12 rows × 16 cols of RF-sized cells)::

        0        8        16
      0 +--------+--------+
        |  ALU   |   RF   |
      8 +--------+--------+
        |     D-CACHE     |
     12 +-----------------+
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..arch.machine import MachineDescription
from ..arch.registerfile import RegisterFileGeometry
from ..errors import ThermalModelError
from ..ir.instructions import (
    BINARY_OPS,
    COMPARE_OPS,
    UNARY_OPS,
    Instruction,
    Opcode,
)
from ..ir.values import PhysicalRegister
from .floorplan import ThermalGrid
from .rcmodel import RFThermalModel, ThermalParams
from .state import ThermalState


@dataclass(frozen=True)
class BlockRegion:
    """A functional block's cell rectangle on the die (row/col, inclusive-exclusive)."""

    name: str
    row0: int
    col0: int
    row1: int
    col1: int

    def cells(self, die_cols: int) -> list[int]:
        """Die cell indices covered by this block (row-major)."""
        return [
            r * die_cols + c
            for r in range(self.row0, self.row1)
            for c in range(self.col0, self.col1)
        ]

    @property
    def cell_count(self) -> int:
        return (self.row1 - self.row0) * (self.col1 - self.col0)


class ChipLayout:
    """Die floorplan: where each functional block sits on the cell grid."""

    def __init__(self, rf_geometry: RegisterFileGeometry) -> None:
        rows, cols = rf_geometry.rows, rf_geometry.cols
        self.rf_geometry = rf_geometry
        # ALU to the left of the RF, D-cache along the bottom (half the
        # RF's height).  Proportions follow typical embedded core floorplans
        # where the cache dwarfs the RF.
        cache_rows = max(2, rows // 2)
        self.die_rows = rows + cache_rows
        self.die_cols = 2 * cols
        self.alu = BlockRegion("alu", 0, 0, rows, cols)
        self.rf = BlockRegion("rf", 0, cols, rows, 2 * cols)
        self.cache = BlockRegion("dcache", rows, 0, self.die_rows, self.die_cols)
        self.die_geometry = RegisterFileGeometry(
            rows=self.die_rows,
            cols=self.die_cols,
            cell_width=rf_geometry.cell_width,
            cell_height=rf_geometry.cell_height,
        )

    @property
    def blocks(self) -> list[BlockRegion]:
        return [self.alu, self.rf, self.cache]

    def rf_cell(self, register_index: int) -> int:
        """Die cell index of architectural register *register_index*."""
        row, col = self.rf_geometry.position(register_index)
        return (self.rf.row0 + row) * self.die_cols + (self.rf.col0 + col)

    def block_cells(self, name: str) -> list[int]:
        for block in self.blocks:
            if block.name == name:
                return block.cells(self.die_cols)
        raise ThermalModelError(f"no block named {name!r}")

    def region_of(self, name: str) -> BlockRegion:
        for block in self.blocks:
            if block.name == name:
                return block
        raise ThermalModelError(f"no block named {name!r}")


class ChipThermalModel(RFThermalModel):
    """RC network over the whole die, with block-aware queries."""

    def __init__(
        self,
        machine: MachineDescription,
        layout: ChipLayout | None = None,
        params: ThermalParams | None = None,
    ) -> None:
        self.layout = layout or ChipLayout(machine.geometry)
        self.machine = machine
        super().__init__(
            geometry=self.layout.die_geometry,
            grid=ThermalGrid(self.layout.die_geometry),
            params=params,
            energy=machine.energy,
        )

    def block_peak(self, state: ThermalState, block: str) -> float:
        """Hottest node temperature inside the named block (K)."""
        cells = self.layout.block_cells(block)
        return float(state.temperatures[cells].max())

    def block_mean(self, state: ThermalState, block: str) -> float:
        """Mean node temperature inside the named block (K)."""
        cells = self.layout.block_cells(block)
        return float(state.temperatures[cells].mean())

    def register_temperature(self, state: ThermalState, register: int) -> float:
        """Temperature of one architectural register on the die (K)."""
        return float(state.temperatures[self.layout.rf_cell(register)])


#: Opcodes whose execution heats the ALU block.
_ALU_OPS = BINARY_OPS | UNARY_OPS | COMPARE_OPS | {Opcode.LI, Opcode.COPY}
#: Opcodes whose execution heats the D-cache block.
_CACHE_OPS = {Opcode.LOAD, Opcode.STORE, Opcode.SPILL, Opcode.RELOAD}


class ChipPowerModel:
    """Per-instruction power over the die (duck-typed like
    :class:`~repro.core.estimator.InstructionPowerModel`).

    * register reads/writes heat the accessed cells of the RF block;
    * every ALU-class operation heats the ALU block uniformly;
    * every memory-class operation (including spill/reload!) heats the
      D-cache block uniformly;
    * leakage applies to every die cell, optionally temperature-fed.
    """

    def __init__(
        self,
        machine: MachineDescription,
        model: ChipThermalModel,
        placement=None,
    ) -> None:
        from ..core.estimator import ExactPlacement

        self.machine = machine
        self.model = model
        self.placement = placement or ExactPlacement(
            machine.geometry.num_registers
        )
        layout = model.layout
        n = layout.die_geometry.num_registers
        self._rf_cells = np.array(
            [layout.rf_cell(i) for i in range(machine.geometry.num_registers)]
        )
        alu_cells = layout.block_cells("alu")
        cache_cells = layout.block_cells("dcache")
        energy = machine.energy
        cycle = energy.cycle_time
        # Precomputed access-power constants and per-block power vectors:
        # dynamic_power only gathers indices and adds these.
        self._read_power = energy.access_power(is_write=False)
        self._write_power = energy.access_power(is_write=True)
        self._alu_power = np.zeros(n)
        self._alu_power[alu_cells] = energy.alu_energy / cycle / len(alu_cells)
        self._cache_power = np.zeros(n)
        self._cache_power[cache_cells] = (
            energy.cache_access_energy / cycle / len(cache_cells)
        )
        self._exact_placement = isinstance(self.placement, ExactPlacement)
        self._num_registers = machine.geometry.num_registers
        # Keyed by the instruction object (identity hash), never id():
        # holding the key prevents GC id reuse from aliasing entries.
        self._dynamic_cache: dict[Instruction, np.ndarray] = {}

    @property
    def has_leakage_feedback(self) -> bool:
        return self.machine.energy.leakage_temp_coeff != 0.0

    def _register_power(self, uses, defs) -> np.ndarray:
        """Per-architectural-register access power of one instruction."""
        reg_power = np.zeros(self._num_registers)
        if self._exact_placement and all(
            isinstance(r, PhysicalRegister) and 0 <= r.index < self._num_registers
            for r in uses
        ) and all(
            isinstance(r, PhysicalRegister) and 0 <= r.index < self._num_registers
            for r in defs
        ):
            # One-hot placements reduce to index scatters; np.add.at
            # accumulates repeated operands exactly like the loop did.
            if uses:
                np.add.at(
                    reg_power, [r.index for r in uses], self._read_power
                )
            if defs:
                np.add.at(
                    reg_power, [r.index for r in defs], self._write_power
                )
            return reg_power
        # General placements (predictive distributions, or values the
        # exact placement must reject with its own diagnostics).
        for reg in uses:
            reg_power += self.placement.distribution(reg) * self._read_power
        for reg in defs:
            reg_power += self.placement.distribution(reg) * self._write_power
        return reg_power

    def dynamic_power(self, inst: Instruction) -> np.ndarray:
        cached = self._dynamic_cache.get(inst)
        if cached is not None:
            return cached
        n = self.model.layout.die_geometry.num_registers
        power = np.zeros(n)
        # Register file accesses at their cells.
        np.add.at(power, self._rf_cells, self._register_power(
            inst.uses(), inst.defs()
        ))
        # Functional unit heat.
        if inst.opcode in _ALU_OPS:
            power += self._alu_power
        if inst.opcode in _CACHE_OPS:
            power += self._cache_power
        self._dynamic_cache[inst] = power
        return power

    def total_power(
        self, inst: Instruction, state: ThermalState, include_leakage: bool = True
    ) -> np.ndarray:
        power = self.dynamic_power(inst)
        if include_leakage:
            feedback = self.has_leakage_feedback
            power = power + self.model.leakage_vector(state if feedback else None)
        return power
