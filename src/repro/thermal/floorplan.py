"""Thermal discretization of the register file floorplan.

The paper's §3: *"The thermal state is a continuous function that can
only be approximated, typically as a discrete set of points.  The
fidelity of the analysis will depend on the granularity of the
approximation."*  :class:`ThermalGrid` is that discrete set of points —
an ``node_rows × node_cols`` mesh over the RF bounding box, decoupled
from the register cell grid so granularity can be swept (experiment E6)
from one node for the whole RF up to several nodes per register cell.

Power attribution uses exact rectangle-overlap fractions: the power of a
register access is split over the thermal nodes its cell overlaps,
proportionally to area, and a register's observed temperature is the
area-weighted mean of its covering nodes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..arch.registerfile import RegisterFileGeometry
from ..errors import ThermalModelError


@dataclass(frozen=True)
class _Rect:
    x0: float
    y0: float
    x1: float
    y1: float

    def overlap_area(self, other: "_Rect") -> float:
        dx = min(self.x1, other.x1) - max(self.x0, other.x0)
        dy = min(self.y1, other.y1) - max(self.y0, other.y0)
        return max(0.0, dx) * max(0.0, dy)


class ThermalGrid:
    """Mesh of thermal nodes over the register file.

    Parameters
    ----------
    geometry:
        Register file layout being discretized.
    node_rows, node_cols:
        Mesh dimensions.  Defaults to one node per register cell, the
        natural resolution for register-level thermal maps (Fig. 1).
    """

    def __init__(
        self,
        geometry: RegisterFileGeometry,
        node_rows: int | None = None,
        node_cols: int | None = None,
    ) -> None:
        self.geometry = geometry
        self.node_rows = node_rows if node_rows is not None else geometry.rows
        self.node_cols = node_cols if node_cols is not None else geometry.cols
        if self.node_rows <= 0 or self.node_cols <= 0:
            raise ThermalModelError("grid dimensions must be positive")
        self._node_w = geometry.width / self.node_cols
        self._node_h = geometry.height / self.node_rows
        self._mapping = self._build_mapping()

    # ------------------------------------------------------------------
    # Basic geometry
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.node_rows * self.node_cols

    @property
    def node_width(self) -> float:
        """Width of one node region in metres."""
        return self._node_w

    @property
    def node_height(self) -> float:
        """Height of one node region in metres."""
        return self._node_h

    @property
    def node_area(self) -> float:
        """Area of one node region in m²."""
        return self._node_w * self._node_h

    def node_position(self, node: int) -> tuple[int, int]:
        """(row, col) of a node; row-major numbering."""
        if not 0 <= node < self.num_nodes:
            raise ThermalModelError(f"node {node} out of range")
        return divmod(node, self.node_cols)

    def node_index(self, row: int, col: int) -> int:
        if not (0 <= row < self.node_rows and 0 <= col < self.node_cols):
            raise ThermalModelError(f"node ({row}, {col}) out of range")
        return row * self.node_cols + col

    # ------------------------------------------------------------------
    # Register <-> node attribution
    # ------------------------------------------------------------------
    def _node_rect(self, node: int) -> _Rect:
        row, col = self.node_position(node)
        return _Rect(
            col * self._node_w,
            row * self._node_h,
            (col + 1) * self._node_w,
            (row + 1) * self._node_h,
        )

    def _register_rect(self, reg: int) -> _Rect:
        row, col = self.geometry.position(reg)
        return _Rect(
            col * self.geometry.cell_width,
            row * self.geometry.cell_height,
            (col + 1) * self.geometry.cell_width,
            (row + 1) * self.geometry.cell_height,
        )

    def _build_mapping(self) -> np.ndarray:
        """(num_nodes × num_registers) overlap-fraction matrix.

        Column r sums to 1: the fraction of register r's power landing in
        each node.
        """
        mapping = np.zeros((self.num_nodes, self.geometry.num_registers))
        node_rects = [self._node_rect(n) for n in range(self.num_nodes)]
        for reg in range(self.geometry.num_registers):
            reg_rect = self._register_rect(reg)
            cell_area = self.geometry.cell_area
            # Only nodes overlapping the register's bounding box matter;
            # with modest grid sizes a full scan is cheap and simple.
            for node, rect in enumerate(node_rects):
                area = rect.overlap_area(reg_rect)
                if area > 0:
                    mapping[node, reg] = area / cell_area
        return mapping

    @property
    def mapping(self) -> np.ndarray:
        """Read-only overlap-fraction matrix (nodes × registers)."""
        return self._mapping

    def power_vector(self, register_power: dict[int, float]) -> np.ndarray:
        """Distribute per-register power (W) onto the node mesh."""
        reg_vec = np.zeros(self.geometry.num_registers)
        for reg, power in register_power.items():
            if not 0 <= reg < self.geometry.num_registers:
                raise ThermalModelError(f"register {reg} out of range")
            reg_vec[reg] += power
        return self._mapping @ reg_vec

    def register_temperature(self, node_temps: np.ndarray, reg: int) -> float:
        """Area-weighted temperature of register *reg* (K)."""
        weights = self._mapping[:, reg]
        total = weights.sum()
        if total <= 0:
            raise ThermalModelError(f"register {reg} maps to no node")
        return float(weights @ node_temps / total)

    def register_temperatures(self, node_temps: np.ndarray) -> np.ndarray:
        """Temperatures of all registers (K), area-weighted."""
        weights = self._mapping
        sums = weights.sum(axis=0)
        return (weights.T @ node_temps) / sums

    def cells_per_node(self) -> np.ndarray:
        """Equivalent register-cell count covered by each node."""
        return self._mapping.sum(axis=1)
