"""Thermal state: the value propagated by the thermal data flow analysis."""

from __future__ import annotations

import numpy as np

from ..errors import ThermalModelError
from .floorplan import ThermalGrid


class ThermalState:
    """A temperature field sampled at the grid's thermal nodes.

    Instances are treated as immutable by all analyses (operations
    return fresh states); the underlying array is flagged read-only to
    enforce this.
    """

    __slots__ = ("grid", "_temps")

    def __init__(self, grid: ThermalGrid, temperatures: np.ndarray) -> None:
        temps = np.asarray(temperatures, dtype=float)
        if temps.shape != (grid.num_nodes,):
            raise ThermalModelError(
                f"expected {grid.num_nodes} node temperatures, got shape {temps.shape}"
            )
        temps = temps.copy()
        temps.flags.writeable = False
        self.grid = grid
        self._temps = temps

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def uniform(cls, grid: ThermalGrid, temperature: float) -> "ThermalState":
        """A spatially uniform state (e.g. ambient at analysis entry)."""
        return cls(grid, np.full(grid.num_nodes, float(temperature)))

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def temperatures(self) -> np.ndarray:
        """Node temperatures (K), read-only, flat row-major."""
        return self._temps

    def as_matrix(self) -> np.ndarray:
        """Node temperatures reshaped to (node_rows, node_cols)."""
        return self._temps.reshape(self.grid.node_rows, self.grid.node_cols)

    def register_temperature(self, reg: int) -> float:
        """Temperature of one architectural register (K)."""
        return self.grid.register_temperature(self._temps, reg)

    def register_temperatures(self) -> np.ndarray:
        """Temperatures of every architectural register (K)."""
        return self.grid.register_temperatures(self._temps)

    # ------------------------------------------------------------------
    # Scalar summaries
    # ------------------------------------------------------------------
    @property
    def peak(self) -> float:
        """Hottest node temperature (K)."""
        return float(self._temps.max())

    @property
    def mean(self) -> float:
        """Mean node temperature (K)."""
        return float(self._temps.mean())

    @property
    def min(self) -> float:
        """Coolest node temperature (K)."""
        return float(self._temps.min())

    @property
    def spread(self) -> float:
        """Peak-to-valley temperature difference (K)."""
        return self.peak - self.min

    @property
    def std(self) -> float:
        """Spatial standard deviation (K) — the homogeneity metric."""
        return float(self._temps.std())

    def max_gradient(self) -> float:
        """Largest temperature difference between adjacent nodes (K).

        This is the "steep thermal gradient" of the paper's §1 — the
        reliability hazard the whole analysis exists to predict.
        """
        m = self.as_matrix()
        grads = [0.0]
        if m.shape[1] > 1:
            grads.append(float(np.abs(np.diff(m, axis=1)).max()))
        if m.shape[0] > 1:
            grads.append(float(np.abs(np.diff(m, axis=0)).max()))
        return max(grads)

    # ------------------------------------------------------------------
    # Comparison / combination (the DFA lattice operations)
    # ------------------------------------------------------------------
    def max_abs_diff(self, other: "ThermalState") -> float:
        """L∞ distance to *other* — the δ of the convergence test."""
        self._check_compatible(other)
        return float(np.abs(self._temps - other._temps).max())

    def merge_max(self, others: list["ThermalState"]) -> "ThermalState":
        """Element-wise maximum — the conservative CFG join."""
        temps = self._temps
        for other in others:
            self._check_compatible(other)
            temps = np.maximum(temps, other._temps)
        return ThermalState(self.grid, temps)

    @staticmethod
    def weighted_mean(
        states: list["ThermalState"], weights: list[float]
    ) -> "ThermalState":
        """Convex combination of states (frequency-weighted CFG join)."""
        if not states:
            raise ThermalModelError("weighted_mean of no states")
        if len(states) != len(weights):
            raise ThermalModelError("states and weights length mismatch")
        total = sum(weights)
        if total <= 0:
            # Degenerate profile: fall back to plain mean.
            weights = [1.0] * len(states)
            total = float(len(states))
        grid = states[0].grid
        acc = np.zeros(grid.num_nodes)
        for state, w in zip(states, weights):
            states[0]._check_compatible(state)
            acc += (w / total) * state._temps
        return ThermalState(grid, acc)

    def _check_compatible(self, other: "ThermalState") -> None:
        if other.grid.num_nodes != self.grid.num_nodes:
            raise ThermalModelError("thermal states live on different grids")

    # ------------------------------------------------------------------
    # Protocols
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ThermalState):
            return NotImplemented
        return (
            self.grid.num_nodes == other.grid.num_nodes
            and bool(np.array_equal(self._temps, other._temps))
        )

    def __hash__(self) -> int:  # states are value-like but unhashable by content
        raise TypeError("ThermalState is not hashable")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ThermalState peak={self.peak:.2f}K mean={self.mean:.2f}K "
            f"spread={self.spread:.3f}K>"
        )
