"""Terminal dashboard over the ``repro.service/3`` events stream.

``python -m repro dash`` renders a live fleet view from any source of
event documents:

* **stdin / --replay** — line-delimited JSON event frames (the wire
  shape ``{"frame": "event", "event": {...}}``) or bare progress-event
  dicts, e.g. piped from a streaming ``submit`` against ``repro
  serve``, or captured with ``repro suite --events-jsonl frames.jsonl``;
* **--attach HOST:PORT --job ID** — polls a running serve/worker job
  through the ``events`` job-queue kind, following the replay cursor;
* **--playback report.json** — heat-map playback from an archived
  suite/pipeline report: per-kernel/per-stage peak ΔT animated as a
  growing heat strip.

The panels: per-sweep δ-convergence sparklines (log₁₀ scale — a
converging fixed point reads as a descending staircase), per-worker
shard throughput and retry counts (``shard``/``retry`` events plus the
``cluster.*`` counters of interleaved ``obs`` frames), kernel/stage
completion, and the latest metrics snapshot.  Everything here is
stdlib-only and consumes plain dicts, so the module imports nothing
from the service layer (the CLI wires the ``--attach`` transport).
"""

from __future__ import annotations

import json
import math
from collections import deque
from typing import Any, Iterable, TextIO

#: Unicode ramp for sparklines and heat strips, coolest to hottest.
SPARK = "▁▂▃▄▅▆▇█"


def sparkline(values: Iterable[float], width: int = 40) -> str:
    """The last *width* values as a unicode sparkline.

    Non-finite values (the first sweep's ``inf`` δ) render as ``^``.
    A flat series renders low, not mid — "no change" should look calm.
    """
    vals = list(values)[-width:]
    finite = [v for v in vals if math.isfinite(v)]
    if not vals:
        return ""
    if not finite:
        return "^" * len(vals)
    lo, hi = min(finite), max(finite)
    span = hi - lo
    chars = []
    for v in vals:
        if not math.isfinite(v):
            chars.append("^")
        elif span <= 0:
            chars.append(SPARK[0])
        else:
            chars.append(SPARK[int((v - lo) / span * (len(SPARK) - 1))])
    return "".join(chars)


def _log_deltas(deltas: Iterable[float]) -> list[float]:
    """δ trajectory → log₁₀ space (inf preserved for the ``^`` mark)."""
    out = []
    for d in deltas:
        if not math.isfinite(d):
            out.append(d)
        else:
            out.append(math.log10(max(abs(d), 1e-15)))
    return out


class DashboardState:
    """Accumulated view of an events stream; ``render()`` draws it.

    ``consume()`` accepts any decoded wire document: event frames,
    bare progress-event dicts, or final envelopes (recognized by their
    ``request`` echo and counted as completed jobs).  Unrecognized
    documents are ignored — a dashboard must never crash the pipe it
    taps.
    """

    def __init__(self, max_points: int = 120, max_series: int = 8) -> None:
        self.max_points = max_points
        self.max_series = max_series
        self.frames = 0          # documents consumed
        self.events = 0          # recognized progress events
        self.envelopes = 0       # final envelopes seen
        self.jobs: dict[str, str] = {}          # job_id -> last status
        self.kernels_done = 0
        self.kernel_total: int | None = None
        self.stages_done = 0
        self.stage_total: int | None = None
        # label -> recent δ values; the live series per job collects
        # under "<job>/current" until a kernel event names it.
        self._series: dict[str, deque] = {}
        self._live: dict[str, deque] = {}       # job key -> current deltas
        self.workers: dict[str, dict[str, Any]] = {}
        self.batches: dict[str, Any] = {}
        self.last_obs: dict[str, Any] | None = None

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def consume(self, doc: Any) -> bool:
        """Fold one decoded document in; returns recognition."""
        if not isinstance(doc, dict):
            return False
        self.frames += 1
        if doc.get("frame") == "event":
            event = doc.get("event")
            if not isinstance(event, dict):
                return False
            return self._consume_event(event, doc.get("job_id"))
        if "event" in doc and isinstance(doc.get("event"), str):
            return self._consume_event(doc, doc.get("job_id"))
        if "request" in doc and "ok" in doc:
            self.envelopes += 1
            job_id = doc.get("job_id")
            if job_id:
                self.jobs[str(job_id)] = "done" if doc.get("ok") else "error"
            return True
        self.frames -= 1
        return False

    def _worker(self, name: str) -> dict[str, Any]:
        return self.workers.setdefault(str(name), {
            "shards": 0, "ok": 0, "failed": 0, "retries": 0,
            "kernels": 0, "wall": 0.0,
        })

    def _consume_event(self, event: dict, job_id: Any) -> bool:
        kind = event.get("event")
        job = str(job_id or event.get("job_id") or "-")
        self.events += 1
        if kind == "sweep":
            live = self._live.setdefault(
                job, deque(maxlen=self.max_points)
            )
            try:
                live.append(float(event.get("delta")))
            except (TypeError, ValueError):
                pass
        elif kind == "kernel":
            self.kernels_done += 1
            total = event.get("total")
            if isinstance(total, int):
                self.kernel_total = total
            self._label_live(job, str(event.get("name", "?")))
        elif kind == "stage":
            self.stages_done += 1
            total = event.get("total")
            if isinstance(total, int):
                self.stage_total = total
            self._label_live(job, str(event.get("name", "?")))
        elif kind == "shard":
            worker = self._worker(event.get("worker", "?"))
            worker["shards"] += 1
            worker["ok" if event.get("ok", True) else "failed"] += 1
            kernels = event.get("kernels") or event.get("requests")
            if isinstance(kernels, int):
                worker["kernels"] += kernels
            wall = event.get("wall_time_seconds")
            if isinstance(wall, (int, float)):
                worker["wall"] += float(wall)
        elif kind == "retry":
            self._worker(event.get("worker", "?"))["retries"] += 1
        elif kind == "batch":
            self.batches = {
                "evaluated": event.get("evaluated"),
                "best_score": event.get("best_score"),
            }
        elif kind == "status":
            self.jobs[job] = str(event.get("status", "?"))
        elif kind == "obs":
            metrics = event.get("metrics")
            if isinstance(metrics, dict):
                self.last_obs = metrics
                self._fold_obs(metrics)
        else:
            self.events -= 1
            return False
        return True

    def _label_live(self, job: str, name: str) -> None:
        """A kernel/stage finished: its sweeps are the live series."""
        live = self._live.pop(job, None)
        if live:
            label = name
            n = 2
            while label in self._series:
                label = f"{name}#{n}"
                n += 1
            self._series[label] = live
            while len(self._series) > self.max_series:
                self._series.pop(next(iter(self._series)))

    def _fold_obs(self, metrics: dict[str, Any]) -> None:
        """Fold ``cluster.*`` counters into the worker panel — how a
        dashboard attached late still shows per-worker totals."""
        counters = metrics.get("counters")
        if not isinstance(counters, dict):
            return
        for name, value in counters.items():
            if not isinstance(value, int):
                continue
            if name.startswith("cluster.shards."):
                worker = self._worker(name[len("cluster.shards."):])
                worker["shards"] = max(worker["shards"], value)
            elif name.startswith("cluster.retries."):
                worker = self._worker(name[len("cluster.retries."):])
                worker["retries"] = max(worker["retries"], value)

    # ------------------------------------------------------------------
    # Render
    # ------------------------------------------------------------------
    def render(self) -> str:
        lines = [self._headline()]
        series = list(self._series.items())
        for job, live in self._live.items():
            if live:
                series.append((f"{job} (running)", live))
        if series:
            lines.append("δ convergence (log10 K):")
            width = max(len(label) for label, _ in series)
            for label, deltas in series[-self.max_series:]:
                finals = [d for d in deltas if math.isfinite(d)]
                final = f"{finals[-1]:.2e}" if finals else "-"
                lines.append(
                    f"  {label:<{width}}  "
                    f"{sparkline(_log_deltas(deltas))}  "
                    f"({len(deltas)} sweeps, last {final})"
                )
        if self.workers:
            lines.append("workers:")
            rows = []
            for name in sorted(self.workers):
                w = self.workers[name]
                if w["wall"] > 0 and w["kernels"] > 0:
                    rate = f"{w['kernels'] / w['wall']:.1f}/s"
                elif w["kernels"]:
                    rate = str(w["kernels"])
                else:
                    rate = "-"
                rows.append(
                    f"  {name:<22} shards={w['shards']:<4} "
                    f"retries={w['retries']:<3} throughput={rate}"
                )
            lines.extend(rows)
        if self.batches.get("evaluated") is not None:
            best = self.batches.get("best_score")
            best_text = f"{best:.4f}" if best is not None else "-"
            lines.append(
                f"search: {self.batches['evaluated']} candidate(s) "
                f"evaluated, best {best_text}"
            )
        if self.last_obs:
            counters = self.last_obs.get("counters", {})
            top = sorted(counters.items(), key=lambda kv: -kv[1])[:6]
            if top:
                lines.append(
                    "metrics: "
                    + "  ".join(f"{k}={v}" for k, v in top)
                )
        return "\n".join(lines)

    def _headline(self) -> str:
        parts = [f"repro dash — {self.frames} frame(s)"]
        if self.jobs:
            done = sum(1 for s in self.jobs.values()
                       if s in ("done", "error", "cancelled"))
            parts.append(f"{len(self.jobs)} job(s), {done} terminal")
        if self.kernel_total:
            parts.append(
                f"kernels {self.kernels_done}/{self.kernel_total}"
            )
        elif self.kernels_done:
            parts.append(f"kernels {self.kernels_done}")
        if self.stage_total:
            parts.append(f"stages {self.stages_done}/{self.stage_total}")
        return " · ".join(parts)


def follow(
    lines: Iterable[str],
    out: TextIO,
    every: int = 25,
) -> DashboardState:
    """Consume JSON documents line by line, redrawing every *every*
    recognized events (0: final frame only).  Returns the state —
    callers check ``state.events`` for the smoke-test contract."""
    state = DashboardState()
    last_drawn = 0
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            doc = json.loads(line)
        except ValueError:
            continue
        state.consume(doc)
        if every and state.events - last_drawn >= every:
            last_drawn = state.events
            out.write(state.render() + "\n\n")
            out.flush()
    out.write(state.render() + "\n")
    out.flush()
    return state


# ----------------------------------------------------------------------
# Heat-map playback from archived reports
# ----------------------------------------------------------------------
def _heat_points(report: dict[str, Any]) -> list[tuple[str, float]]:
    """(label, peak ΔT) per kernel/stage from a suite or pipeline
    report (``repro.suite/1`` items / ``repro.pipeline/1`` stages)."""
    points = []
    entries = (report.get("results") or report.get("items")
               or report.get("stages") or [])
    for entry in entries:
        if not isinstance(entry, dict):
            continue
        label = str(entry.get("name") or entry.get("function") or "?")
        value = entry.get("peak_delta_kelvin")
        if value is None:
            value = entry.get("peak_delta")
        if value is None and isinstance(entry.get("peak_kelvin"),
                                        (int, float)):
            value = entry["peak_kelvin"]
        if isinstance(value, (int, float)):
            points.append((label, float(value)))
    return points


def heat_frames(report: dict[str, Any]) -> list[str]:
    """Playback frames: frame *k* shows the heat strip of the first
    *k+1* kernels/stages, hottest scaled to the full ramp — replaying
    the thermal state evolving across the program."""
    points = _heat_points(report)
    if not points:
        return []
    hottest = max(value for _, value in points) or 1.0
    frames = []
    for k in range(len(points)):
        strip = "".join(
            SPARK[min(len(SPARK) - 1,
                      int(value / hottest * (len(SPARK) - 1)))]
            for _, value in points[:k + 1]
        )
        label, value = points[k]
        frames.append(
            f"[{k + 1:>3}/{len(points)}] {strip:<{len(points)}}  "
            f"{label}: ΔT {value:.2f}K"
        )
    return frames
