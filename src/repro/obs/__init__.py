"""repro.obs — observability: metrics, trend store, live dashboard.

Three layers, each consumable on its own:

* :mod:`repro.obs.metrics` — a lightweight, thread-safe
  :class:`MetricsRegistry` (counters, gauges, histograms, timer spans)
  threaded through the hot paths: per-sweep fixed-point progress
  (:func:`repro.core.tdfa.sweep_event`), suite kernels, pipeline
  stages, :class:`~repro.service.cluster.ShardDispatcher` retries,
  worker round-trips and the service-level identity caches.  The
  process-wide :func:`default_registry` is **disabled by default** —
  instrumented code checks one boolean and does nothing, so envelopes
  stay bit-identical to earlier releases until
  :func:`enable_metrics` is called (or ``--metrics`` is passed).  When
  enabled, every :class:`~repro.service.ResultEnvelope` carries a
  ``metrics`` snapshot and jobs emit ``obs`` progress events.

* :mod:`repro.obs.store` — an append-only JSONL trend store keyed by
  ``(commit, schema, metric)``.  It ingests archived ``BENCH_*.json``
  and suite/pipeline/service/schedule reports, computes per-metric
  deltas against a rolling baseline with a median ± k·MAD noise floor,
  and emits the machine-readable ``repro.obs-trend/1`` verdict that CI
  gates on *sustained* slowdowns (one noisy commit passes, two
  consecutive regressions fail) — ``python -m repro bench trend``.

* :mod:`repro.obs.dash` — a terminal dashboard over the
  ``repro.service/3`` events stream: per-sweep δ-convergence
  sparklines, per-worker shard throughput and retry counts, and chip
  heat-map playback from archived reports — ``python -m repro dash``.
"""

from .metrics import (
    MetricsRegistry,
    default_registry,
    enable_metrics,
    obs_event,
)
from .store import (
    KNOWN_SCHEMAS,
    TREND_SCHEMA,
    TrendStore,
    compute_trend,
    flatten_metrics,
    metric_direction,
    render_results,
    render_trend,
    scan_results,
)
from .dash import DashboardState, follow, heat_frames, sparkline

__all__ = [
    # metrics layer
    "MetricsRegistry",
    "default_registry",
    "enable_metrics",
    "obs_event",
    # trend store
    "TREND_SCHEMA",
    "KNOWN_SCHEMAS",
    "TrendStore",
    "compute_trend",
    "flatten_metrics",
    "metric_direction",
    "scan_results",
    "render_results",
    "render_trend",
    # dashboard
    "DashboardState",
    "follow",
    "heat_frames",
    "sparkline",
]
