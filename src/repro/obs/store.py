"""Append-only trend store + regression gate over archived reports.

``BENCH_*.json`` files and suite/pipeline/service/schedule reports are
per-commit snapshots with no memory; this module gives them one.  A
:class:`TrendStore` is a JSONL file of flat records keyed by
``(commit, schema, metric)``:

.. code-block:: json

    {"commit": "abc123", "schema": "repro.bench-engine/1",
     "metric": "headline.compiled_speedup_vs_stepped", "value": 6.91,
     "source": "BENCH_engine.json", "timestamp": "2026-08-08T12:00:00Z"}

Ingest flattens every numeric leaf of a schema-bearing payload into
dotted metric paths (:func:`flatten_metrics`); list entries are labeled
by their ``name``/``worker``/``kernel``/``stage`` field when present so
per-kernel rows trend stably across commits.

:func:`compute_trend` evaluates the **latest** commit of every series
against a rolling baseline of up to *window* prior commits: the noise
floor is ``max(k · MAD, rel_floor · |median|)`` — median ± k·MAD is
robust to the odd outlier commit, the relative floor keeps a zero-MAD
series (deterministic metrics) from hair-triggering.  Direction comes
from the metric name (:func:`metric_direction`): wall-time-like
metrics regress upward, throughput-like metrics regress downward,
everything else is informational only.  The CI gate fails **only on
sustained regressions** — the latest commit *and* the one before it
both outside their noise floors — so one noisy commit never fails a
build, two consecutive regressions do.  The verdict document is
schema-versioned ``repro.obs-trend/1``.
"""

from __future__ import annotations

import json
from pathlib import Path
from statistics import median
from typing import Any, Iterable

from ..errors import ReproError
from ..util import format_table

#: Trend-verdict schema identifier (bump on incompatible changes).
TREND_SCHEMA = "repro.obs-trend/1"

#: Store-record schema identifier (one per JSONL line).
STORE_SCHEMA = "repro.obs-store/1"

#: Schema family -> current version, for ingest and ``repro bench
#: list`` drift detection.  A results file declaring an older version
#: of a known family is *stale*; an unknown family is flagged.
KNOWN_SCHEMAS: dict[str, int] = {
    "repro.bench-engine": 1,
    "repro.bench-fleet": 1,
    "repro.bench-incremental": 1,
    "repro.bench-pipeline": 1,
    "repro.bench-schedule": 1,
    "repro.bench-service": 1,
    "repro.bench-sparse": 1,
    "repro.suite": 1,
    "repro.pipeline": 1,
    "repro.schedule": 1,
    "repro.service": 3,
    "repro.obs-trend": 1,
    "repro.obs-store": 1,
}

#: Keys that never become metrics: identity/provenance, rendered text,
#: and the metadata block benches stamp via ``benchmarks/conftest.py``.
_SKIP_KEYS = {
    "schema", "meta", "commit", "timestamp", "rendered", "quick",
    "request", "error", "job_id", "backend", "host", "python", "numpy",
}

#: List-entry fields usable as stable labels (first match wins).
_LABEL_KEYS = ("name", "worker", "kernel", "stage", "function")

#: Name fragments marking a lower-is-better metric.
_LOWER_TOKENS = (
    "seconds", "_time", "overhead", "retries", "dropped", "failures",
)

#: Name fragments marking a higher-is-better metric.
_HIGHER_TOKENS = (
    "speedup", "per_sec", "per_second", "throughput", "candidates_per",
)


def metric_direction(metric: str) -> str | None:
    """``"lower"`` / ``"higher"`` / ``None`` (informational only).

    Heuristic over the metric name's last path component and its
    ancestors — conservative on purpose: only metrics whose name
    clearly encodes a direction are ever gated.
    """
    name = metric.lower()
    if any(token in name for token in _HIGHER_TOKENS):
        return "higher"
    if any(token in name for token in _LOWER_TOKENS):
        return "lower"
    return None


def flatten_metrics(payload: dict[str, Any]) -> dict[str, float]:
    """Every numeric leaf of *payload* as ``dotted.path -> float``.

    Booleans are skipped (convergence flags are assertions, not
    trends), as are the :data:`_SKIP_KEYS` provenance keys at any
    depth.  List entries use their ``name``-like field as the path
    component when present, their index otherwise.
    """
    out: dict[str, float] = {}
    _flatten(payload, "", out)
    return out


def _flatten(node: Any, prefix: str, out: dict[str, float]) -> None:
    if isinstance(node, bool):
        return
    if isinstance(node, (int, float)):
        if prefix:
            out[prefix] = float(node)
        return
    if isinstance(node, dict):
        for key, value in node.items():
            if key in _SKIP_KEYS:
                continue
            path = f"{prefix}.{key}" if prefix else str(key)
            _flatten(value, path, out)
        return
    if isinstance(node, list):
        for index, item in enumerate(node):
            label = str(index)
            if isinstance(item, dict):
                for key in _LABEL_KEYS:
                    value = item.get(key)
                    if isinstance(value, str) and value:
                        label = value
                        break
            path = f"{prefix}.{label}" if prefix else label
            _flatten(item, path, out)


class TrendStore:
    """Append-only JSONL store of per-commit metric records."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def ingest(
        self,
        payload: dict[str, Any],
        commit: str | None = None,
        source: str | None = None,
        timestamp: str | None = None,
    ) -> list[dict[str, Any]]:
        """Flatten one schema-bearing *payload* into records, append
        them, and return them.

        *commit*/*timestamp* default to the payload's ``meta`` block
        (the ``benchmarks/conftest.py`` stamp) or top-level keys;
        records without any commit identity land under ``"unknown"``
        (still trendable, just not attributable).
        """
        if not isinstance(payload, dict):
            raise ReproError("trend ingest needs a JSON object payload")
        schema = payload.get("schema")
        if not isinstance(schema, str) or not schema:
            raise ReproError(
                "trend ingest needs a 'schema'-bearing payload "
                "(BENCH_*.json / suite / pipeline / service / schedule)"
            )
        meta = payload.get("meta") or {}
        commit = (commit or meta.get("commit")
                  or payload.get("commit") or "unknown")
        timestamp = (timestamp or meta.get("timestamp")
                     or payload.get("timestamp"))
        records = [
            {
                "store": STORE_SCHEMA,
                "commit": str(commit),
                "schema": schema,
                "metric": metric,
                "value": value,
                "source": source,
                "timestamp": timestamp,
            }
            for metric, value in sorted(flatten_metrics(payload).items())
        ]
        self.append(records)
        return records

    def ingest_file(
        self, path: str | Path, commit: str | None = None
    ) -> int:
        """Ingest one JSON report file; returns the record count."""
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            raise ReproError(f"unreadable report {path}: {exc}") from None
        return len(self.ingest(payload, commit=commit, source=path.name))

    def append(self, records: Iterable[dict[str, Any]]) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def load(self) -> list[dict[str, Any]]:
        """Every parseable record, in append order (bad lines skipped —
        an interrupted append must not poison the whole store)."""
        if not self.path.exists():
            return []
        records = []
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict) and "metric" in record:
                records.append(record)
        return records

    def commits(self) -> list[str]:
        """Distinct commits in first-appearance (chronological) order."""
        seen: dict[str, None] = {}
        for record in self.load():
            seen.setdefault(str(record.get("commit")), None)
        return list(seen)

    def trend(self, window: int = 8, k: float = 3.0,
              rel_floor: float = 0.02) -> dict[str, Any]:
        """The ``repro.obs-trend/1`` verdict over the whole store."""
        return compute_trend(self.load(), window=window, k=k,
                             rel_floor=rel_floor)


# ----------------------------------------------------------------------
# Trend computation
# ----------------------------------------------------------------------
def _regressed(values: list[float], direction: str | None,
               window: int, k: float, rel_floor: float) -> dict[str, Any]:
    """Evaluate the last of *values* against its rolling baseline."""
    latest = values[-1]
    baseline = values[max(0, len(values) - 1 - window):-1]
    base_median = median(baseline)
    mad = median(abs(v - base_median) for v in baseline)
    floor = max(k * mad, rel_floor * abs(base_median), 1e-12)
    delta = latest - base_median
    if direction == "lower":
        regressed = delta > floor
    elif direction == "higher":
        regressed = delta < -floor
    else:
        regressed = False
    return {
        "latest": latest,
        "baseline_median": base_median,
        "baseline_commits": len(baseline),
        "mad": mad,
        "noise_floor": floor,
        "delta": delta,
        "delta_pct": (100.0 * delta / abs(base_median)
                      if base_median else None),
        "regressed": regressed,
    }


def compute_trend(
    records: list[dict[str, Any]],
    window: int = 8,
    k: float = 3.0,
    rel_floor: float = 0.02,
) -> dict[str, Any]:
    """Per-metric deltas with noise floors, plus the sustained gate.

    *records* are store lines (``commit``/``schema``/``metric``/
    ``value``); for a ``(commit, schema, metric)`` ingested twice the
    last record wins.  Commit order is first-appearance order — the
    append-only store makes that chronological.
    """
    commit_order: dict[str, int] = {}
    series: dict[tuple[str, str], dict[str, float]] = {}
    for record in records:
        commit = str(record.get("commit"))
        value = record.get("value")
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        commit_order.setdefault(commit, len(commit_order))
        key = (str(record.get("schema")), str(record.get("metric")))
        series.setdefault(key, {})[commit] = float(value)

    commits = sorted(commit_order, key=commit_order.__getitem__)
    metrics: list[dict[str, Any]] = []
    regressions: list[str] = []
    sustained: list[str] = []
    for (schema, metric), by_commit in sorted(series.items()):
        values = [by_commit[c] for c in commits if c in by_commit]
        if len(values) < 2:
            continue
        direction = metric_direction(metric)
        latest = _regressed(values, direction, window, k, rel_floor)
        # Sustained = this commit AND the previous one both regressed
        # against *their* baselines (needs 3+ points to even evaluate).
        consecutive = 0
        if latest["regressed"]:
            consecutive = 1
            tail = values[:-1]
            while len(tail) >= 2 and _regressed(
                tail, direction, window, k, rel_floor
            )["regressed"]:
                consecutive += 1
                tail = tail[:-1]
        entry = {
            "schema": schema,
            "metric": metric,
            "direction": direction,
            "commits": len(values),
            "consecutive_regressions": consecutive,
            "sustained": consecutive >= 2,
            **latest,
        }
        metrics.append(entry)
        label = f"{schema}:{metric}"
        if entry["regressed"]:
            regressions.append(label)
        if entry["sustained"]:
            sustained.append(label)

    if len(commits) < 2:
        gate = {"pass": True,
                "reason": f"insufficient history ({len(commits)} "
                          "commit(s); need 2+)"}
    elif sustained:
        gate = {"pass": False,
                "reason": f"{len(sustained)} sustained regression(s): "
                          + ", ".join(sustained[:5])}
    else:
        gate = {"pass": True,
                "reason": (f"{len(regressions)} single-commit "
                           "regression(s) within tolerance"
                           if regressions else "no regressions")}
    return {
        "schema": TREND_SCHEMA,
        "commits": commits,
        "window": window,
        "k": k,
        "rel_floor": rel_floor,
        "metrics": metrics,
        "regressions": regressions,
        "sustained": sustained,
        "gate": gate,
    }


def render_trend(verdict: dict[str, Any], limit: int = 20) -> str:
    """Human-readable summary: gated metrics first, biggest movers."""
    metrics = verdict.get("metrics", [])
    directed = [m for m in metrics if m.get("direction")]
    flagged = [m for m in directed if m.get("regressed")]
    calm = [m for m in directed if not m.get("regressed")]
    calm.sort(key=lambda m: abs(m.get("delta_pct") or 0.0), reverse=True)
    rows = []
    for entry in (flagged + calm)[:limit]:
        pct = entry.get("delta_pct")
        rows.append((
            entry["metric"],
            entry["direction"],
            f"{entry['latest']:.6g}",
            f"{entry['delta']:+.3g}"
            + (f" ({pct:+.1f}%)" if pct is not None else ""),
            f"{entry['noise_floor']:.3g}",
            ("SUSTAINED" if entry["sustained"]
             else "regressed" if entry["regressed"] else "ok"),
        ))
    lines = []
    if rows:
        lines.append(format_table(
            ["metric", "dir", "latest", "delta", "floor", "status"], rows
        ))
    lines.append(
        f"{len(verdict.get('commits', []))} commit(s), "
        f"{len(metrics)} trended metric(s) ({len(directed)} gated), "
        f"{len(verdict.get('regressions', []))} regressed, "
        f"{len(verdict.get('sustained', []))} sustained"
    )
    gate = verdict.get("gate", {})
    lines.append(
        f"gate: {'PASS' if gate.get('pass') else 'FAIL'}"
        f" — {gate.get('reason', '')}"
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Results-directory scan (``repro bench list``)
# ----------------------------------------------------------------------
def scan_results(results_dir: str | Path) -> list[dict[str, Any]]:
    """One row per ``*.json`` under *results_dir*: declared schema,
    drift status (``ok``/``stale``/``newer``/``unknown``/``invalid``)
    and the flattened-metric count the trend store would ingest."""
    rows = []
    results_dir = Path(results_dir)
    for path in sorted(results_dir.glob("*.json")):
        row: dict[str, Any] = {"file": path.name, "schema": None,
                               "status": "invalid", "metrics": 0}
        try:
            payload = json.loads(path.read_text())
        except ValueError:
            rows.append(row)
            continue
        schema = payload.get("schema") if isinstance(payload, dict) else None
        if not isinstance(schema, str) or "/" not in schema:
            rows.append(row)
            continue
        row["schema"] = schema
        family, _, version_text = schema.partition("/")
        try:
            version = int(version_text)
        except ValueError:
            version = None
        current = KNOWN_SCHEMAS.get(family)
        if current is None or version is None:
            row["status"] = "unknown"
        elif version < current:
            row["status"] = "stale"
        elif version > current:
            row["status"] = "newer"
        else:
            row["status"] = "ok"
        row["metrics"] = len(flatten_metrics(payload))
        rows.append(row)
    return rows


def render_results(rows: list[dict[str, Any]]) -> str:
    """Table form of :func:`scan_results` plus the known-schema roster."""
    if not rows:
        body = "no result files found"
    else:
        body = format_table(
            ["file", "schema", "status", "metrics"],
            [(r["file"], r["schema"] or "-", r["status"], str(r["metrics"]))
             for r in rows],
        )
    known = ", ".join(
        f"{family}/{version}"
        for family, version in sorted(KNOWN_SCHEMAS.items())
    )
    flagged = sum(1 for r in rows if r["status"] not in ("ok",))
    return (
        f"{body}\n{len(rows)} file(s), {flagged} flagged\n"
        f"known schemas: {known}"
    )
