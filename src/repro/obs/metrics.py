"""A lightweight in-process metrics registry for the hot paths.

Design constraints, in order:

1. **Zero overhead while disabled.**  Instrumentation sits inside the
   fixed-point sweep loop and the dispatcher's retry path; every
   recording method checks one boolean and returns before touching the
   lock, and the hottest call sites additionally guard on
   :attr:`MetricsRegistry.enabled` so they don't even build the metric
   value.  The process-wide :func:`default_registry` starts disabled,
   which is what keeps ``ResultEnvelope`` output bit-identical to
   pre-observability releases until someone opts in.

2. **JSON-plain snapshots.**  :meth:`MetricsRegistry.snapshot` returns
   only dicts/str/int/float, sorted by name — it lands verbatim in the
   envelope's ``metrics`` field, in ``obs`` progress events on the job
   stream, and in the ``metrics`` request kind's payload.

3. **Aggregates, not samples.**  Histograms keep ``count/total/min/
   max`` (mean derived), not reservoirs: bounded memory under
   million-sweep analyses, and deterministic output for a
   deterministic run.  Per-sample series belong to the events stream
   (the dashboard reads δ trajectories from ``sweep`` events, not from
   here).

Instrumented names (all optional — present only once touched):

=============================== =======================================
``tdfa.sweeps``                 counter: fixed-point sweeps, all engines
``tdfa.last_delta_kelvin``      gauge: most recent sweep δ
``suite.kernels``               counter: suite kernels completed
``pipeline.stages``             counter: pipeline stages completed
``cluster.dispatches``          counter: shards placed on workers
``cluster.shards.<worker>``     counter: shards served per worker
``cluster.retries``             counter: worker-loss resubmissions
``cluster.retries.<worker>``    counter: losses attributed per worker
``cluster.workers.healthy``     gauge: healthy fleet members at dispatch
``backend.roundtrips``          counter: worker socket round-trips
``backend.roundtrip_seconds``   histogram: per round-trip wall time
``service.requests.<kind>``     counter: requests executed per kind
``service.errors``              counter: error envelopes produced
``service.request_seconds``     histogram: per-request wall time
``service.cache.<name>.hits``   counter: service identity-cache hits
``service.cache.<name>.misses`` counter: service identity-cache misses
=============================== =======================================
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any

from ..util import format_table


class MetricsRegistry:
    """Thread-safe counters, gauges and histograms with timer spans.

    All recording methods are no-ops while :attr:`enabled` is false
    (the default for the process-wide registry), so instrumentation can
    live permanently in hot paths.
    """

    def __init__(self, enabled: bool = False) -> None:
        self._lock = threading.Lock()
        self._enabled = bool(enabled)
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        # name -> [count, total, min, max]
        self._histograms: dict[str, list] = {}

    # ------------------------------------------------------------------
    # Enablement
    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    def set_enabled(self, enabled: bool = True) -> "MetricsRegistry":
        self._enabled = bool(enabled)
        return self

    def enable(self) -> "MetricsRegistry":
        return self.set_enabled(True)

    def disable(self) -> "MetricsRegistry":
        return self.set_enabled(False)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def inc(self, name: str, value: int = 1) -> None:
        """Add *value* to counter *name* (created at zero)."""
        if not self._enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set gauge *name* to *value* (last write wins)."""
        if not self._enabled:
            return
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Record one sample into histogram *name*."""
        if not self._enabled:
            return
        value = float(value)
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                self._histograms[name] = [1, value, value, value]
            else:
                hist[0] += 1
                hist[1] += value
                if value < hist[2]:
                    hist[2] = value
                if value > hist[3]:
                    hist[3] = value

    @contextmanager
    def time(self, name: str):
        """Timer span: ``with registry.time("x_seconds"): ...`` records
        the block's wall time into histogram *name* (no-op disabled)."""
        if not self._enabled:
            yield
            return
        started = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - started)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def counter(self, name: str) -> int:
        """Current value of counter *name* (0 if never touched)."""
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> dict[str, Any]:
        """JSON-plain view: ``{"counters", "gauges", "histograms"}``,
        each sorted by name.  Histogram entries carry
        ``count/total/min/max/mean``."""
        with self._lock:
            counters = dict(sorted(self._counters.items()))
            gauges = dict(sorted(self._gauges.items()))
            histograms = {
                name: {
                    "count": count,
                    "total": total,
                    "min": lo,
                    "max": hi,
                    "mean": total / count,
                }
                for name, (count, total, lo, hi)
                in sorted(self._histograms.items())
            }
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def reset(self) -> None:
        """Drop every recorded value (enablement is untouched)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def render(self, snapshot: dict[str, Any] | None = None) -> str:
        """Human-readable table of a snapshot (default: the live one)."""
        snap = snapshot if snapshot is not None else self.snapshot()
        rows: list[tuple] = []
        for name, value in snap.get("counters", {}).items():
            rows.append((name, "counter", str(value)))
        for name, value in snap.get("gauges", {}).items():
            rows.append((name, "gauge", f"{value:.6g}"))
        for name, hist in snap.get("histograms", {}).items():
            rows.append((
                name, "histogram",
                f"n={hist['count']} mean={hist['mean']:.6g} "
                f"min={hist['min']:.6g} max={hist['max']:.6g}",
            ))
        if not rows:
            return "no metrics recorded"
        return format_table(["metric", "type", "value"], rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "enabled" if self._enabled else "disabled"
        return (
            f"<MetricsRegistry {state} counters={len(self._counters)} "
            f"gauges={len(self._gauges)} histograms={len(self._histograms)}>"
        )


def obs_event(registry: MetricsRegistry) -> dict[str, Any]:
    """The ``obs`` progress-event shape: a metrics snapshot on the job
    events stream, interleaved with ``sweep``/``kernel``/... frames."""
    return {"event": "obs", "metrics": registry.snapshot()}


# ----------------------------------------------------------------------
# The process-wide default registry.  Hot paths bind it at import time
# (it is a singleton object; enablement is a flag flip, not a rebind).
# ----------------------------------------------------------------------
_DEFAULT = MetricsRegistry(enabled=False)


def default_registry() -> MetricsRegistry:
    """The process-wide registry every instrumented path records into."""
    return _DEFAULT


def enable_metrics(enabled: bool = True) -> MetricsRegistry:
    """Flip the process-wide registry on (or off) and return it."""
    return _DEFAULT.set_enabled(enabled)
