"""Service-grade front-end: declarative requests over the shared runtime.

The public analysis API as a request/response service — since v2
(`repro.service/2`) a *job-oriented* one, and since v3
(`repro.service/3`) a distributed control plane:

* :mod:`repro.service.requests` — frozen, JSON-round-trippable request
  dataclasses (:class:`AnalysisRequest`, :class:`CompileRequest`,
  :class:`EmulateRequest`, :class:`SuiteRequest`,
  :class:`ScheduleRequest`, …) capturing every run parameter in one
  value, plus the v3 job-queue kinds (:class:`SubmitRequest`,
  :class:`PollRequest`, :class:`EventsRequest`, :class:`CancelRequest`)
  that give wire clients async job semantics, and
  :class:`MetricsRequest` exposing the :mod:`repro.obs` process
  registry over the wire;
* :mod:`repro.service.envelope` — the uniform, schema-versioned
  :class:`ResultEnvelope` every request resolves to (v1/v2 envelopes
  still revive under the v3 reader), and the :class:`EventFrame`
  streaming document v3 interleaves ahead of envelopes;
* :mod:`repro.service.service` — :class:`AnalysisService`, owning one
  shared :class:`~repro.core.context.AnalysisContext` per
  ``(machine, chip)`` pair, with synchronous :meth:`~AnalysisService.execute`
  and job-based :meth:`~AnalysisService.submit`;
* :mod:`repro.service.jobs` — :class:`JobHandle`: stable ``job_id``,
  ``status()`` (``queued/running/done/error/cancelled``, see
  :data:`JOB_STATUSES`), ``result()``, ``cancel()`` and a replayable
  (ring-buffered) ``events()`` stream of progress events;
* :mod:`repro.service.cluster` — the control plane:
  :class:`WorkerRegistry` (worker lifecycle
  ``joining/healthy/draining/dead`` with heartbeat health checks and
  failure accounting) and :class:`ShardDispatcher` (leases workers per
  shard and resubmits to the survivors when one is lost mid-job);
* :mod:`repro.service.dispatch` — backend-agnostic shard/chunk
  splitting, dispatch and merging shared by every sharding backend;
* :mod:`repro.service.backends` — pluggable
  :class:`ExecutionBackend`\\ s: :class:`InlineBackend` (in-process,
  the default), :class:`ProcessBackend` (local worker processes,
  sharding suite kernels across the pool) and :class:`RemoteBackend`
  (the envelope protocol over sockets through the registry/dispatcher,
  sharding suites and schedule batches and chaining pipeline chunks),
  both merging per-worker reports with summed context stats;
* :mod:`repro.service.worker` — :class:`WorkerServer`, the TCP worker
  behind ``python -m repro worker --listen HOST:PORT``;
* :mod:`repro.service.frontend` — :func:`serve_forever`, the
  line-delimited JSON pipe front-end (``python -m repro serve``,
  ordered by default, ``--unordered`` for completion-order responses),
  speaking the v3 job-queue kinds.

Quickstart::

    from repro.service import AnalysisRequest, AnalysisService

    service = AnalysisService()
    job = service.submit(AnalysisRequest(workload="fir", delta=0.05))
    for event in job.events():        # live per-sweep progress
        ...
    envelope = job.result()           # the uniform ResultEnvelope
    envelope.result["peak_delta_kelvin"]
    envelope.to_json()                # schema-versioned wire form
"""

from .backends import (
    ExecutionBackend,
    InlineBackend,
    ProcessBackend,
    RemoteBackend,
    WorkerClient,
    parse_worker_address,
)
from .cluster import (
    DEFAULT_MAX_FAILURES,
    WORKER_STATES,
    HeartbeatThread,
    ShardDispatcher,
    WorkerRegistry,
)
from .envelope import (
    SCHEMA,
    SCHEMAS,
    EventFrame,
    ResultEnvelope,
    is_event_frame,
)
from .frontend import ServeResult, serve_forever
from .jobs import (
    DEFAULT_EVENTS_CAPACITY,
    JOB_STATUSES,
    TERMINAL_STATUSES,
    JobHandle,
)
from .requests import (
    JOB_REQUEST_KINDS,
    REQUEST_KINDS,
    AnalysisRequest,
    CancelRequest,
    CompileRequest,
    EmulateRequest,
    EventsRequest,
    Fig1Request,
    InvalidRequest,
    MetricsRequest,
    PipelineRequest,
    PollRequest,
    Request,
    ScheduleRequest,
    SubmitRequest,
    SuiteRequest,
    WorkloadListRequest,
    request_from_dict,
    request_from_json,
)
from .service import AnalysisService, default_service, reset_default_service
from .worker import WorkerServer

__all__ = [
    "SCHEMA",
    "SCHEMAS",
    "Request",
    "AnalysisRequest",
    "CompileRequest",
    "EmulateRequest",
    "Fig1Request",
    "SuiteRequest",
    "PipelineRequest",
    "ScheduleRequest",
    "WorkloadListRequest",
    "MetricsRequest",
    "SubmitRequest",
    "PollRequest",
    "EventsRequest",
    "CancelRequest",
    "InvalidRequest",
    "REQUEST_KINDS",
    "JOB_REQUEST_KINDS",
    "request_from_dict",
    "request_from_json",
    "ResultEnvelope",
    "EventFrame",
    "is_event_frame",
    "AnalysisService",
    "default_service",
    "reset_default_service",
    "serve_forever",
    "ServeResult",
    "JobHandle",
    "JOB_STATUSES",
    "TERMINAL_STATUSES",
    "DEFAULT_EVENTS_CAPACITY",
    "ExecutionBackend",
    "InlineBackend",
    "ProcessBackend",
    "RemoteBackend",
    "WorkerClient",
    "WorkerServer",
    "WorkerRegistry",
    "ShardDispatcher",
    "HeartbeatThread",
    "WORKER_STATES",
    "DEFAULT_MAX_FAILURES",
    "parse_worker_address",
]
