"""Service-grade front-end: declarative requests over the shared runtime.

The public analysis API as a request/response service:

* :mod:`repro.service.requests` — frozen, JSON-round-trippable request
  dataclasses (:class:`AnalysisRequest`, :class:`CompileRequest`,
  :class:`EmulateRequest`, :class:`SuiteRequest`, …) capturing every
  run parameter in one value;
* :mod:`repro.service.envelope` — the uniform, schema-versioned
  :class:`ResultEnvelope` every request resolves to;
* :mod:`repro.service.service` — :class:`AnalysisService`, owning one
  shared :class:`~repro.core.context.AnalysisContext` per
  ``(machine, chip)`` pair, with synchronous :meth:`~AnalysisService.execute`
  and thread-pooled :meth:`~AnalysisService.submit`;
* :mod:`repro.service.frontend` — :func:`serve_forever`, the
  line-delimited JSON pipe front-end (``python -m repro serve``).

Quickstart::

    from repro.service import AnalysisRequest, AnalysisService

    service = AnalysisService()
    envelope = service.execute(AnalysisRequest(workload="fir", delta=0.05))
    envelope.result["peak_delta_kelvin"]    # headline numbers
    envelope.context_stats["analyses"]      # shared-runtime evidence
    envelope.to_json()                      # schema-versioned wire form
"""

from .envelope import SCHEMA, ResultEnvelope
from .frontend import serve_forever
from .requests import (
    REQUEST_KINDS,
    AnalysisRequest,
    CompileRequest,
    EmulateRequest,
    Fig1Request,
    InvalidRequest,
    PipelineRequest,
    Request,
    SuiteRequest,
    WorkloadListRequest,
    request_from_dict,
    request_from_json,
)
from .service import AnalysisService, default_service, reset_default_service

__all__ = [
    "SCHEMA",
    "Request",
    "AnalysisRequest",
    "CompileRequest",
    "EmulateRequest",
    "Fig1Request",
    "SuiteRequest",
    "PipelineRequest",
    "WorkloadListRequest",
    "InvalidRequest",
    "REQUEST_KINDS",
    "request_from_dict",
    "request_from_json",
    "ResultEnvelope",
    "AnalysisService",
    "default_service",
    "reset_default_service",
    "serve_forever",
]
