"""Service-grade front-end: declarative requests over the shared runtime.

The public analysis API as a request/response service — since v2
(`repro.service/2`), a *job-oriented* one:

* :mod:`repro.service.requests` — frozen, JSON-round-trippable request
  dataclasses (:class:`AnalysisRequest`, :class:`CompileRequest`,
  :class:`EmulateRequest`, :class:`SuiteRequest`,
  :class:`ScheduleRequest`, …) capturing every run parameter in one
  value;
* :mod:`repro.service.envelope` — the uniform, schema-versioned
  :class:`ResultEnvelope` every request resolves to (v1 envelopes still
  revive under the v2 reader);
* :mod:`repro.service.service` — :class:`AnalysisService`, owning one
  shared :class:`~repro.core.context.AnalysisContext` per
  ``(machine, chip)`` pair, with synchronous :meth:`~AnalysisService.execute`
  and job-based :meth:`~AnalysisService.submit`;
* :mod:`repro.service.jobs` — :class:`JobHandle`: stable ``job_id``,
  ``status()`` (``queued/running/done/error/cancelled``, see
  :data:`JOB_STATUSES`), ``result()``, ``cancel()`` and a replayable
  ``events()`` stream of progress events;
* :mod:`repro.service.backends` — pluggable
  :class:`ExecutionBackend`\\ s: :class:`InlineBackend` (in-process,
  the default), :class:`ProcessBackend` (local worker processes,
  sharding suite kernels across the pool) and :class:`RemoteBackend`
  (the envelope protocol over sockets, sharding suite kernels *and*
  chaining pipeline chunks across workers), both merging per-worker
  reports with summed context stats;
* :mod:`repro.service.worker` — :class:`WorkerServer`, the TCP worker
  behind ``python -m repro worker --listen HOST:PORT``;
* :mod:`repro.service.frontend` — :func:`serve_forever`, the
  line-delimited JSON pipe front-end (``python -m repro serve``,
  ordered by default, ``--unordered`` for completion-order responses).

Quickstart::

    from repro.service import AnalysisRequest, AnalysisService

    service = AnalysisService()
    job = service.submit(AnalysisRequest(workload="fir", delta=0.05))
    for event in job.events():        # live per-sweep progress
        ...
    envelope = job.result()           # the uniform ResultEnvelope
    envelope.result["peak_delta_kelvin"]
    envelope.to_json()                # schema-versioned wire form
"""

from .backends import (
    ExecutionBackend,
    InlineBackend,
    ProcessBackend,
    RemoteBackend,
    WorkerClient,
    parse_worker_address,
)
from .envelope import SCHEMA, SCHEMAS, ResultEnvelope
from .frontend import ServeResult, serve_forever
from .jobs import JOB_STATUSES, TERMINAL_STATUSES, JobHandle
from .requests import (
    REQUEST_KINDS,
    AnalysisRequest,
    CompileRequest,
    EmulateRequest,
    Fig1Request,
    InvalidRequest,
    PipelineRequest,
    Request,
    ScheduleRequest,
    SuiteRequest,
    WorkloadListRequest,
    request_from_dict,
    request_from_json,
)
from .service import AnalysisService, default_service, reset_default_service
from .worker import WorkerServer

__all__ = [
    "SCHEMA",
    "SCHEMAS",
    "Request",
    "AnalysisRequest",
    "CompileRequest",
    "EmulateRequest",
    "Fig1Request",
    "SuiteRequest",
    "PipelineRequest",
    "ScheduleRequest",
    "WorkloadListRequest",
    "InvalidRequest",
    "REQUEST_KINDS",
    "request_from_dict",
    "request_from_json",
    "ResultEnvelope",
    "AnalysisService",
    "default_service",
    "reset_default_service",
    "serve_forever",
    "ServeResult",
    "JobHandle",
    "JOB_STATUSES",
    "TERMINAL_STATUSES",
    "ExecutionBackend",
    "InlineBackend",
    "ProcessBackend",
    "RemoteBackend",
    "WorkerClient",
    "WorkerServer",
    "parse_worker_address",
]
