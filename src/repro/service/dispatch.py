"""Backend-agnostic sharding: split, dispatch, stream, merge.

Extracted from ``backends.py`` (where ProcessBackend and RemoteBackend
each grew a copy of the fan-out plumbing) so there is exactly one
implementation of each question:

* **split** — :func:`shard_suite_request` (kernels dealt round-robin,
  generated scenarios serialized to IR text),
  :func:`chunk_pipeline_request` (contiguous stage chunks chained
  through explicit entry/exit temperature vectors) and
  :func:`shard_schedule_request` (exhaustive candidate batches);
* **dispatch** — :func:`run_suite_shards` /
  :func:`run_pipeline_chunks` / :func:`run_schedule_shards` drive the
  round-trips through a backend-supplied ``dispatch`` callable.  The
  callable is where placement policy lives: RemoteBackend routes it
  through :class:`~repro.service.cluster.ShardDispatcher` (worker
  registry, excluded-worker retry), ProcessBackend through its pool;
* **stream** — with ``streams_events=True`` the runner hands each
  dispatch an ``on_event`` channel and forwards the worker's *live*
  per-kernel / per-stage events (indices remapped to the original
  request's coordinates) instead of replaying them post-hoc from the
  merged report.  A shard that never streamed (a non-streaming worker,
  the process pool) still gets the post-hoc replay, so the documented
  event contract holds either way;
* **merge** — :func:`merge_suite_shards` /
  :func:`merge_pipeline_chunks` / :func:`merge_schedule_shards`
  reassemble per-kernel/per-stage records in request order and merge
  per-worker context stats the way PR 4 established (per-label
  element-wise max over cumulative snapshots, then summed).

Shard requests are deterministic, so a shard resubmitted to a
different worker after a mid-job death reproduces the same records —
the merged result stays bit-identical (suites, schedules) or within
the established 2δ (chained pipeline chunks) to the inline run.
"""

from __future__ import annotations

import time
import uuid
from concurrent.futures import ThreadPoolExecutor, as_completed
from dataclasses import replace

from ..errors import WorkerError
from .envelope import ResultEnvelope
from .requests import PipelineRequest, ScheduleRequest, SuiteRequest


# ----------------------------------------------------------------------
# Suite sharding: split by kernel name, merge by position.
# ----------------------------------------------------------------------
def _suite_shard_units(request: SuiteRequest) -> list[tuple[str, str]]:
    """Every workload of a suite request as a shardable unit.

    Returns ``("name", kernel_name)`` / ``("ir", ir_text)`` pairs in the
    exact order the inline runner's ``_workload_specs`` expands them:
    named (or quick/full-suite) kernels first, then pressure scenarios,
    then random-loop scenarios, then explicit ``ir_texts``.  Generated
    scenarios serialize to IR text — workers cannot rebuild them by
    name, but they analyze a parsed function identically (previously
    any pressure/random suite fell back to unsharded execution).
    """
    units: list[tuple[str, str]] = []
    if request.workloads:
        units += [("name", name) for name in request.workloads]
    elif request.ir_texts:
        pass  # IR-only request: no named fallback.
    else:
        from ..workloads import small_suite_names, workload_names

        names = small_suite_names() if request.quick else workload_names()
        units += [("name", name) for name in names]
    if request.include_pressure or request.random_count > 0:
        from ..ir.printer import print_function
        from ..workloads import pressure_sweep, random_loop_program

        if request.include_pressure:
            units += [
                ("ir", print_function(wl.function))
                for wl in pressure_sweep()
            ]
        units += [
            ("ir", print_function(random_loop_program(seed=seed).function))
            for seed in range(request.random_count)
        ]
    if request.ir_texts:
        units += [("ir", text) for text in request.ir_texts]
    return units


def shard_suite_request(
    request: SuiteRequest, shards: int
) -> list[tuple[SuiteRequest, list[int]]] | None:
    """Split *request* into ≤ *shards* single-process sub-requests.

    Kernels are dealt round-robin (shard *i* takes positions ``i, i+n,
    …``) so workers see balanced mixes of small and large kernels.
    Returns ``(shard_request, positions)`` pairs — *positions* maps each
    shard item back to its place in the original kernel order — or
    ``None`` when the request is not worth sharding (a single kernel or
    one shard).  Generated scenarios travel as serialized IR text; each
    shard's *positions* list is reordered named-then-IR to match the
    worker-side spec expansion order.
    """
    units = _suite_shard_units(request)
    if shards < 2 or len(units) < 2:
        return None
    shards = min(shards, len(units))
    out = []
    for i in range(shards):
        dealt = list(range(i, len(units), shards))
        # Worker-side spec order is named kernels first, then IR texts —
        # keep positions aligned with the items the shard returns.
        named = [p for p in dealt if units[p][0] == "name"]
        irs = [p for p in dealt if units[p][0] == "ir"]
        shard = replace(
            request,
            workloads=tuple(units[p][1] for p in named) or None,
            ir_texts=tuple(units[p][1] for p in irs) or None,
            quick=False,
            include_pressure=False,
            random_count=0,
            processes=1,
            request_id=f"shard-{uuid.uuid4().hex[:12]}",
        )
        out.append((shard, named + irs))
    return out


def merge_suite_shards(
    request: SuiteRequest,
    shard_results: list[tuple[list[int], ResultEnvelope, str]],
    total: int,
    processes: int,
    wall_time_seconds: float,
) -> tuple[dict, dict]:
    """Reassemble shard envelopes into one suite payload.

    *shard_results* holds ``(positions, envelope, worker_label)`` per
    shard.  Items return to their original positions; context stats
    merge the way PR 4's multi-process fix established: per *worker*
    (label — one pool process may serve several shards) the
    element-wise **maximum** over its snapshots is that worker's final
    counter state (counters only grow), and summing those per-worker
    totals gives the merged ``context_stats`` — so a worker that
    served two shards is never double-counted.  The per-worker
    breakdown lands under the payload's ``workers`` key and the
    rendered table is regenerated so the merged report prints exactly
    like a local run.
    """
    from ..core.suite_runner import (
        SuiteReport,
        collapse_worker_stats,
        sum_worker_stats,
    )
    from .executors import render_suite_report

    items = [None] * total
    snapshots = []
    per_worker_info: dict[str, dict] = {}
    for positions, envelope, label in shard_results:
        if not envelope.ok:
            raise WorkerError(
                f"suite shard on {label} failed: "
                f"{envelope.error_message()}"
            )
        report = SuiteReport.from_dict(envelope.result["report"])
        if len(report.items) != len(positions):
            raise WorkerError(
                f"suite shard on {label} returned {len(report.items)} "
                f"kernels, expected {len(positions)}"
            )
        for position, item in zip(positions, report.items):
            items[position] = item
        snapshots.append((label, report.context_stats))
        info = per_worker_info.setdefault(label, {
            "worker": label, "kernels": 0, "wall_time_seconds": 0.0,
        })
        info["kernels"] += len(positions)
        info["wall_time_seconds"] += envelope.wall_time_seconds
    per_worker_stats = collapse_worker_stats(snapshots)
    context_stats = sum_worker_stats(per_worker_stats)
    workers = [
        {**info, "context_stats": dict(per_worker_stats[label])}
        for label, info in per_worker_info.items()
    ]
    merged = SuiteReport(
        machine=request.machine,
        model="chip" if request.chip else "rf",
        delta=request.delta,
        merge=request.merge,
        engine=request.engine,
        policy=request.policy,
        processes=processes,
        items=items,
        wall_time_seconds=wall_time_seconds,
        context_stats=context_stats,
    )
    payload = {
        "converged": merged.all_converged,
        "report": merged.to_dict(),
        "workers": workers,
        "rendered": render_suite_report(merged),
    }
    return payload, context_stats


def _forwarded_event(event: dict) -> dict | None:
    """A worker-streamed event, scrubbed for the coordinator's stream.

    The worker-side job's lifecycle (``status`` events) and identity
    (``job_id``) are that job's, not the coordinator's — forwarding
    them would corrupt the coordinator job's own stream, so ``status``
    events drop and ``job_id`` is stripped (``JobHandle._emit`` stamps
    the coordinator's own).
    """
    if event.get("event") == "status":
        return None
    return {k: v for k, v in event.items() if k != "job_id"}


def run_suite_shards(
    request: SuiteRequest,
    sharded: list[tuple[SuiteRequest, list[int]]],
    dispatch,
    processes: int,
    progress=None,
    streams_events: bool = False,
) -> tuple[dict, dict]:
    """Dispatch suite shards concurrently and merge their envelopes.

    The one sharding flow every fan-out backend shares:
    *dispatch(index, shard_request)* performs that shard's round-trip
    and returns ``(worker_label, envelope)`` — the label identifies the
    worker that *actually* served the shard (a pool process is only
    known by pid after the fact), which is what lets the merge
    de-duplicate cumulative stats per worker.  Shards run on a thread
    per shard; as each completes — in *completion* order, so a slow
    shard never delays another's narration — a ``shard`` event fires.

    With *streams_events* set, dispatch is called ``dispatch(index,
    shard, on_event)`` and the worker's live events stream through
    *on_event* as they happen: ``kernel`` events are remapped to the
    original suite positions/total, ``status`` events are dropped, and
    anything else (per-sweep δ) forwards verbatim.  Shards that never
    streamed (a non-streaming path) fall back to the post-hoc
    per-kernel replay, so the suite event contract holds either way.
    A retried shard streams its events again from the top — the
    dispatcher's ``retry`` event marks the boundary.
    """
    started = time.perf_counter()
    total = sum(len(positions) for _shard, positions in sharded)
    results: list = [None] * len(sharded)
    streamed = [False] * len(sharded)

    def suite_event_channel(index: int, positions: list[int]):
        def on_event(event: dict) -> None:
            streamed[index] = True
            if progress is None:
                return
            event = _forwarded_event(event)
            if event is None:
                return
            if event.get("event") == "kernel":
                local = event.get("index")
                if isinstance(local, int) and 0 <= local < len(positions):
                    event["index"] = positions[local]
                event["total"] = total
            progress(event)
        return on_event

    with ThreadPoolExecutor(max_workers=len(sharded)) as pool:
        if streams_events:
            futures = {
                pool.submit(
                    dispatch, index, shard,
                    suite_event_channel(index, positions),
                ): index
                for index, (shard, positions) in enumerate(sharded)
            }
        else:
            futures = {
                pool.submit(dispatch, index, shard): index
                for index, (shard, _positions) in enumerate(sharded)
            }
        for future in as_completed(futures):
            index = futures[future]
            label, envelope = future.result()
            _shard, positions = sharded[index]
            results[index] = (positions, envelope, label)
            if progress is None:
                continue
            progress({"event": "shard", "index": index,
                      "worker": label, "requests": len(positions),
                      "ok": envelope.ok})
            if envelope.ok and not streamed[index]:
                records = envelope.result.get("report", {}) \
                    .get("results", [])
                for position, record in zip(positions, records):
                    progress({"event": "kernel", "name": record["name"],
                              "index": position, "total": total,
                              "converged": record["converged"]})
    return merge_suite_shards(
        request, results, total, processes, time.perf_counter() - started
    )


# ----------------------------------------------------------------------
# Pipeline chunking: contiguous stage runs chained through exit states.
# ----------------------------------------------------------------------
def chunk_pipeline_request(
    request: PipelineRequest, chunks: int
) -> list[PipelineRequest] | None:
    """Split *request* into ≤ *chunks* contiguous stage sub-pipelines.

    Stage order is preserved; every chunk except the first starts from
    its predecessor's exit state (the coordinator threads the
    ``entry_temperatures`` / ``exit_temperatures`` vectors through), so
    the chunked run follows exactly the sequential carry-through
    semantics the strategies already agree with.  Returns ``None`` when
    there is nothing to split.
    """
    specs = request.stages if request.stages is not None else request.ir_texts
    if not specs or chunks < 2 or len(specs) < 2:
        return None
    chunks = min(chunks, len(specs))
    base, extra = divmod(len(specs), chunks)
    out = []
    start = 0
    for i in range(chunks):
        size = base + (1 if i < extra else 0)
        stop = start + size
        piece = tuple(specs[start:stop])
        fields = dict(
            policies=(tuple(request.policies[start:stop])
                      if request.policies is not None else None),
            return_exit_state=True,
            request_id=f"chunk-{uuid.uuid4().hex[:12]}",
        )
        if request.stages is not None:
            fields["stages"] = piece
        else:
            fields["ir_texts"] = piece
        out.append(replace(request, **fields))
        start = stop
    return out


def merge_pipeline_chunks(
    request: PipelineRequest,
    chunk_results: list[tuple[ResultEnvelope, str]],
    wall_time_seconds: float,
) -> tuple[dict, dict]:
    """Concatenate chunk reports into one pipeline payload."""
    from ..core.pipeline_runner import PipelineReport
    from .executors import render_pipeline_report

    stage_dicts: list[dict] = []
    context_stats: dict[str, int] = {}
    workers = []
    iterations = 0
    converged = True
    exit_temperatures = None
    for index, (envelope, label) in enumerate(chunk_results):
        if not envelope.ok:
            raise WorkerError(
                f"pipeline chunk {index} on {label} failed: "
                f"{envelope.error_message()}"
            )
        report = envelope.result["report"]
        stage_dicts.extend(report["stages"])
        iterations += int(report.get("iterations", 0))
        converged = converged and bool(report.get("converged", True))
        for key, value in report.get("context_stats", {}).items():
            context_stats[key] = context_stats.get(key, 0) + value
        exit_temperatures = report.get("exit_temperatures")
        workers.append({
            "worker": label,
            "stages": len(report["stages"]),
            # The per-stage storage forms this worker's chunk resolved
            # to — what lets a caller assert a sharded sparse run used
            # the same form on every worker (the sweep/warm-start knobs
            # forward through the dataclass `replace` chunking).
            "stage_sweeps": [
                stage.get("sweep") for stage in report["stages"]
            ],
            "wall_time_seconds": envelope.wall_time_seconds,
            "context_stats": dict(report.get("context_stats", {})),
        })
    merged = PipelineReport.from_dict({
        "machine": request.machine,
        "model": "chip" if request.chip else "rf",
        "strategy": request.strategy,
        "delta": request.delta,
        "merge": request.merge,
        "sweep": request.sweep,
        "converged": converged,
        "iterations": iterations,
        "wall_time_seconds": wall_time_seconds,
        "context_stats": context_stats,
        "stages": stage_dicts,
        "exit_temperatures": (
            exit_temperatures if request.return_exit_state else None
        ),
    })
    payload = {
        "converged": merged.converged,
        "report": merged.to_dict(),
        "workers": workers,
        "rendered": render_pipeline_report(merged),
    }
    return payload, context_stats


def run_pipeline_chunks(
    request: PipelineRequest,
    chunks: list[PipelineRequest],
    dispatch,
    progress=None,
    streams_events: bool = False,
) -> tuple[dict, dict]:
    """Dispatch pipeline chunks *sequentially* and merge their reports.

    Chunks are inherently ordered — chunk k+1 needs chunk k's exit
    state, threaded through ``entry_temperatures`` — so this
    distributes per-kernel compile/solve work and memory across workers
    rather than running them concurrently; repeated schedules then hit
    each worker's warm caches for its chunk.  *dispatch* is the same
    callable shape as :func:`run_suite_shards`; with *streams_events*
    set, live ``stage`` events are remapped to pipeline-global stage
    indices.  Raises :class:`~repro.errors.WorkerError` when a chunk
    returns no exit state to chain from.
    """
    started = time.perf_counter()
    sizes = [
        len(c.stages if c.stages is not None else c.ir_texts)
        for c in chunks
    ]
    total = sum(sizes)
    offsets = [sum(sizes[:i]) for i in range(len(sizes))]
    entry = request.entry_temperatures
    results = []

    def stage_event_channel(index: int):
        def on_event(event: dict) -> None:
            if progress is None:
                return
            event = _forwarded_event(event)
            if event is None:
                return
            if event.get("event") == "stage":
                local = event.get("index")
                if isinstance(local, int):
                    event["index"] = offsets[index] + local
                event["total"] = total
            progress(event)
        return on_event

    for index, chunk in enumerate(chunks):
        chunk = replace(chunk, entry_temperatures=entry)
        if streams_events:
            label, envelope = dispatch(
                index, chunk, stage_event_channel(index)
            )
        else:
            label, envelope = dispatch(index, chunk)
        results.append((envelope, label))
        if progress is not None:
            progress({
                "event": "shard", "index": index, "worker": label,
                "requests": 1, "ok": envelope.ok,
            })
        if not envelope.ok:
            break
        exit_temperatures = envelope.result["report"].get(
            "exit_temperatures"
        )
        if exit_temperatures is None:
            raise WorkerError(
                f"worker {label} returned no exit state for "
                f"pipeline chunk {index} — cannot chain the next chunk"
            )
        entry = tuple(float(t) for t in exit_temperatures)
    return merge_pipeline_chunks(
        request, results, time.perf_counter() - started
    )


# ----------------------------------------------------------------------
# Schedule sharding: candidate batches scored in parallel, argmin merged.
# ----------------------------------------------------------------------
def _schedule_stage_keys(request: ScheduleRequest) -> list[int]:
    """Stage interchangeability keys, computed coordinator-side.

    Mirrors the worker-side identity relation without loading any
    kernel: named stages are interchangeable iff equal names (the
    executor resolves them through the service's workload cache),
    ``ir_texts`` stages iff equal text (the executor dedupes parses by
    text), and seeded random stages reproduce the generator's own
    object sharing — ``random_pipeline`` is deterministic per seed, so
    every backend derives the same multiset.
    """
    first: dict = {}
    if request.stages is not None:
        return [
            first.setdefault(name, len(first)) for name in request.stages
        ]
    if request.ir_texts is not None:
        return [
            first.setdefault(text, len(first)) for text in request.ir_texts
        ]
    from ..workloads.generators import random_pipeline

    stages = random_pipeline(
        seed=request.seed, length=request.random_stages
    )
    return [first.setdefault(id(wl), len(first)) for wl in stages]


def shard_schedule_request(
    request: ScheduleRequest, shards: int
) -> tuple[list[ScheduleRequest], bool] | None:
    """Split an exhaustive schedule search into candidate-batch shards.

    Only the ``exhaustive`` strategy fans out: its candidate set is
    fixed upfront (identity + the deterministic space enumeration, cut
    at *budget*), so the coordinator deals candidates round-robin into
    explicit-batch sub-requests and the global ``(score, key)`` argmin
    over all shard rows is *exactly* the candidate inline search picks.
    Sequential strategies (``greedy``/``anneal``) and requests already
    carrying a batch forward whole.  Returns ``(shards, exhausted)`` —
    whether the enumeration fit the budget — or ``None``.
    """
    if request.strategy != "exhaustive" or request.candidates is not None:
        return None
    if shards < 2:
        return None
    from ..sched.space import ScheduleSpace

    space = ScheduleSpace(
        _schedule_stage_keys(request),
        list(request.placements) if request.placements else None,
    )
    budget = max(1, request.budget)
    # Inline exhaustive scores the identity first, then up to *budget*
    # enumerated candidates (the identity again, as a free memo hit,
    # when the placement axis is closed) — reproduce that exact set,
    # deduplicated by key.
    candidates = [space.identity()]
    seen = {candidates[0].key()}
    exhausted = True
    for candidate in space.enumerate_candidates(limit=budget + 1):
        if len(candidates) > budget:
            exhausted = False
            candidates.pop()
            break
        if candidate.key() in seen:
            continue
        seen.add(candidate.key())
        candidates.append(candidate)
    if len(candidates) < 2:
        return None
    shards = min(shards, len(candidates))
    out = []
    for i in range(shards):
        batch = candidates[i::shards]
        out.append(replace(
            request,
            candidates=tuple((c.order, c.policies) for c in batch),
            request_id=f"shard-{uuid.uuid4().hex[:12]}",
        ))
    return out, exhausted


def merge_schedule_shards(
    request: ScheduleRequest,
    shard_results: list[tuple[ResultEnvelope, str]],
    exhausted: bool,
    wall_time_seconds: float,
) -> tuple[dict, dict]:
    """Reduce shard batches to the global argmin schedule.

    Every shard reports its per-candidate ``candidate_scores`` rows and
    its *local* argmin's evidence pipeline; the coordinator takes the
    global minimum under the same deterministic ``(score, key)`` order
    every strategy uses, adopts the winning shard's evidence (each
    shard's evidence analyzes its local argmin, so the global winner's
    shard carries exactly the right one), sums evaluation/memo counters
    and merges per-worker context stats the established way (per-label
    max, then summed).
    """
    from ..core.suite_runner import collapse_worker_stats, sum_worker_stats
    from ..sched.optimizer import ScheduleReport
    from .executors import render_schedule_report

    best_row = None
    best_key = None
    best_report = None
    identity_score = None
    evaluated = 0
    memo_hits = 0
    snapshots = []
    workers = []
    reports = []
    for index, (envelope, label) in enumerate(shard_results):
        if not envelope.ok:
            raise WorkerError(
                f"schedule shard {index} on {label} failed: "
                f"{envelope.error_message()}"
            )
        report = ScheduleReport.from_dict(envelope.result["report"])
        reports.append(report)
        rows = report.candidate_scores or []
        for order, policies, score in rows:
            key = (
                tuple(int(i) for i in order),
                tuple(policies) if policies else (),
            )
            if best_row is None or (score, key) < (best_row[2], best_key):
                best_row = [list(order), policies, score]
                best_key = key
                best_report = report
        if report.identity_score is not None:
            identity_score = report.identity_score
        evaluated += report.candidates_evaluated
        memo_hits += report.eval_memo_hits
        snapshots.append((label, envelope.context_stats or {}))
        workers.append({
            "worker": label,
            "candidates": len(rows),
            "wall_time_seconds": envelope.wall_time_seconds,
            "context_stats": dict(envelope.context_stats or {}),
        })
    if best_row is None or best_report is None:
        raise WorkerError("schedule shards returned no candidate scores")
    per_worker_stats = collapse_worker_stats(snapshots)
    context_stats = sum_worker_stats(per_worker_stats)
    template = reports[0]
    best_order = [int(i) for i in best_row[0]]
    merged = ScheduleReport(
        machine=template.machine,
        model=template.model,
        strategy=request.strategy,
        objective=request.objective,
        budget=request.budget,
        seed=request.seed,
        delta=request.delta,
        merge=request.merge,
        sweep=request.sweep,
        policy=request.policy,
        stages=list(template.stages),
        best_order=best_order,
        best_names=[template.stages[i] for i in best_order],
        best_policies=(
            list(best_row[1]) if best_row[1] else None
        ),
        best_score=float(best_row[2]),
        identity_score=identity_score,
        space_size=template.space_size,
        candidates_evaluated=evaluated,
        eval_memo_hits=memo_hits,
        exhausted=exhausted,
        dwell_threshold=request.dwell_threshold,
        placements=(
            list(request.placements) if request.placements else None
        ),
        evidence=best_report.evidence,
        wall_time_seconds=wall_time_seconds,
        context_stats=context_stats,
    )
    payload = {
        "converged": bool(
            merged.evidence and merged.evidence.get("converged")
        ),
        "report": merged.to_dict(),
        "workers": workers,
        "rendered": render_schedule_report(merged),
    }
    return payload, context_stats


def run_schedule_shards(
    request: ScheduleRequest,
    sharded: list[ScheduleRequest],
    exhausted: bool,
    dispatch,
    progress=None,
) -> tuple[dict, dict]:
    """Dispatch candidate-batch shards concurrently and merge the argmin.

    Same shape as :func:`run_suite_shards`: *dispatch(index, shard)*
    returns ``(worker_label, envelope)``; one thread per shard; as each
    completes a ``shard`` event fires followed by a ``batch`` event
    carrying the running evaluated-candidate total and best score — the
    coordinator-level view of the per-batch progress contract.
    (Candidate batches keep shard-completion granularity: the batch
    events are already the aggregate view, so there is nothing to
    stream live.)
    """
    started = time.perf_counter()
    results: list = [None] * len(sharded)
    with ThreadPoolExecutor(max_workers=len(sharded)) as pool:
        futures = {
            pool.submit(dispatch, index, shard): index
            for index, shard in enumerate(sharded)
        }
        evaluated = 0
        best_score = None
        for future in as_completed(futures):
            index = futures[future]
            label, envelope = future.result()
            results[index] = (envelope, label)
            if progress is None:
                continue
            progress({"event": "shard", "index": index,
                      "worker": label,
                      "requests": len(sharded[index].candidates),
                      "ok": envelope.ok})
            if envelope.ok:
                report = envelope.result.get("report", {})
                evaluated += int(report.get("candidates_evaluated", 0))
                score = report.get("best_score")
                if score is not None and (
                    best_score is None or score < best_score
                ):
                    best_score = score
                progress({"event": "batch", "evaluated": evaluated,
                          "best_score": best_score})
    return merge_schedule_shards(
        request, results, exhausted, time.perf_counter() - started
    )
