"""Remote worker: the envelope protocol served over a TCP socket.

``python -m repro worker --listen HOST:PORT`` runs one of these.  Each
accepted connection speaks exactly the ``repro serve`` wire format —
one request JSON per line in, one schema-versioned envelope JSON per
line out per connection — so anything that can drive the pipe
front-end can drive a worker through ``socat``, and the
:class:`~repro.service.backends.RemoteBackend` is just a client that
opens sockets instead of pipes.  Connections serve *unordered* (each
envelope goes out as its request completes, matched by ``request_id``
echo) and speak the full ``repro.service/3`` surface: the job-queue
kinds (``submit``/``poll``/``events``/``cancel``) and, for streaming
submits, live :class:`~repro.service.envelope.EventFrame` lines ahead
of the final envelope — which is how a coordinator's sharded jobs
narrate per-kernel progress from the workers actually running them.

One :class:`~repro.service.service.AnalysisService` is shared across
*all* connections for the worker's lifetime: every coordinator talking
to this worker amortizes the same thermal models, factorizations and
compiled transfers, which is the whole point of keeping workers
long-lived (cache stats in the envelopes make it observable).
"""

from __future__ import annotations

import io
import socketserver
import threading

from .frontend import serve_forever
from .service import AnalysisService


class _ConnectionHandler(socketserver.StreamRequestHandler):
    """One connection: the serve loop over the socket's file pair."""

    def handle(self) -> None:  # pragma: no cover - exercised via sockets
        lines = io.TextIOWrapper(self.rfile, encoding="utf-8", newline="\n")
        out = io.TextIOWrapper(
            self.wfile, encoding="utf-8", newline="\n", write_through=True
        )
        try:
            # Unordered: each envelope goes on the wire the moment its
            # request completes.  The ordered drain would wait for the
            # *next* input line before flushing answers — correct for
            # pipes that close after writing, a deadlock for socket
            # clients doing request/response round-trips.  Callers
            # correlate by ``request_id`` echo (or keep one request in
            # flight per connection, as WorkerClient does).
            serve_forever(
                self.server.repro_service, lines, out, unordered=True
            )
        except (BrokenPipeError, ConnectionError, ValueError):
            # The client went away mid-response (ValueError: the text
            # wrapper was closed under us); nothing left to answer.
            pass


class _Server(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class WorkerServer:
    """A listening worker: socket front-end over one shared service.

    Parameters
    ----------
    host / port:
        Bind address; ``port=0`` picks an ephemeral port (read it back
        from :attr:`address` — what tests and benchmarks do).
    service:
        Serve through this service instead of building one (the caller
        keeps ownership; ``close()`` then leaves it open).
    max_workers:
        Thread-pool width of an internally-built service.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        service: AnalysisService | None = None,
        max_workers: int = 4,
    ) -> None:
        self.service = service or AnalysisService(max_workers=max_workers)
        self._owns_service = service is None
        self._server = _Server((host, port), _ConnectionHandler)
        self._server.repro_service = self.service
        self._thread: threading.Thread | None = None
        self._serving = threading.Event()

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (resolved for ephemeral ports)."""
        return self._server.server_address[:2]

    @property
    def label(self) -> str:
        host, port = self.address
        return f"{host}:{port}"

    def serve_forever(self) -> None:
        """Serve until :meth:`shutdown` (blocking — the CLI entry)."""
        self._serving.set()
        self._server.serve_forever(poll_interval=0.2)

    def start(self) -> "WorkerServer":
        """Serve on a daemon thread (tests, benchmarks, embedding)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self.serve_forever,
                name=f"repro-worker-{self.label}",
                daemon=True,
            )
            self._thread.start()
        return self

    def shutdown(self) -> None:
        # socketserver.shutdown() waits on an event only serve_forever
        # sets; calling it on a server whose loop never started would
        # block forever (e.g. close() after a failure before serving).
        # With a serving thread spawned, the loop is *about* to start —
        # wait for it briefly so a close() racing start() still shuts
        # the loop down instead of closing the socket under it.
        if self._thread is not None:
            self._serving.wait(timeout=5.0)
        if self._serving.is_set():
            self._server.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def close(self) -> None:
        """Stop serving and release the socket (and an owned service)."""
        self.shutdown()
        self._server.server_close()
        if self._owns_service:
            self.service.close()

    def __enter__(self) -> "WorkerServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<WorkerServer {self.label}>"
