"""Execution backends: where a job's work actually runs.

The v2 service protocol separates *what* to run (a declarative
:class:`~repro.service.requests.Request`) and *how to track it* (a
:class:`~repro.service.jobs.JobHandle`) from *where it executes* — an
:class:`ExecutionBackend`:

``InlineBackend``
    Today's semantics: the request executes on the service thread pool
    in this process, against the service's shared contexts.  The
    default, and still bit-identical to a serial run (the per-context
    lock serializes cache mutation).
``ProcessBackend``
    Local worker *processes*, each owning its own
    :class:`~repro.service.service.AnalysisService` (and with it warm
    per-process contexts that persist across requests).  Suite requests
    shard their kernels round-robin across the pool — generated
    scenarios (pressure sweeps, random loops) travel as serialized IR
    text, so *every* suite shards — exhaustive schedule searches shard
    as candidate batches, and any other request is forwarded whole to
    one worker.
``RemoteBackend``
    Worker processes reachable over TCP (``python -m repro worker
    --listen HOST:PORT``), speaking the same line-delimited JSON
    envelope protocol as ``repro serve``: one request per line, one
    schema-versioned envelope per line, matched by ``request_id`` echo.
    Suite requests shard kernels across workers; pipeline requests are
    split into contiguous stage *chunks* chained through explicit
    ``entry_temperatures`` / ``exit_temperatures`` vectors (chunk k+1
    starts exactly where chunk k ended, possibly on another machine);
    exhaustive schedule searches shard as explicit candidate batches
    whose ``(score, key)`` argmin merges back bit-identical to inline.

Sharded results merge the way PR 4's multi-process fix established:
per-kernel/per-stage records reassemble in request order and per-worker
context stats are **summed**, so a merged report carries real
amortization totals plus a ``workers`` breakdown for observability.
"""

from __future__ import annotations

import socket
import threading
import time
import uuid
from concurrent.futures import ThreadPoolExecutor, as_completed
from dataclasses import replace

from ..errors import ReproError, WorkerError
from .envelope import ResultEnvelope
from .requests import (
    PipelineRequest,
    Request,
    ScheduleRequest,
    SuiteRequest,
)

#: Failures a backend converts into ``ok=False`` envelopes on the job
#: path (`WorkerError` included via `ReproError`); genuine bugs still
#: propagate to the job runner's defensive net.
_BACKEND_FAILURES = (ReproError, OSError)


class ExecutionBackend:
    """Where requests execute.  Implementations override :meth:`execute`."""

    #: Stamped onto envelopes (``ResultEnvelope.backend``) and job
    #: handles so the execution path is observable per response.
    name = "backend"

    def execute(self, service, request: Request, progress=None) -> ResultEnvelope:
        raise NotImplementedError

    def close(self) -> None:
        """Release worker pools / connections (idempotent)."""

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


class InlineBackend(ExecutionBackend):
    """In-process execution against the service's shared contexts."""

    name = "inline"

    def execute(self, service, request: Request, progress=None) -> ResultEnvelope:
        return service.execute(request, progress=progress)


# ----------------------------------------------------------------------
# Suite sharding: split by kernel name, merge by position.
# ----------------------------------------------------------------------
def _suite_shard_units(request: SuiteRequest) -> list[tuple[str, str]]:
    """Every workload of a suite request as a shardable unit.

    Returns ``("name", kernel_name)`` / ``("ir", ir_text)`` pairs in the
    exact order the inline runner's ``_workload_specs`` expands them:
    named (or quick/full-suite) kernels first, then pressure scenarios,
    then random-loop scenarios, then explicit ``ir_texts``.  Generated
    scenarios serialize to IR text — workers cannot rebuild them by
    name, but they analyze a parsed function identically (previously
    any pressure/random suite fell back to unsharded execution).
    """
    units: list[tuple[str, str]] = []
    if request.workloads:
        units += [("name", name) for name in request.workloads]
    elif request.ir_texts:
        pass  # IR-only request: no named fallback.
    else:
        from ..workloads import small_suite_names, workload_names

        names = small_suite_names() if request.quick else workload_names()
        units += [("name", name) for name in names]
    if request.include_pressure or request.random_count > 0:
        from ..ir.printer import print_function
        from ..workloads import pressure_sweep, random_loop_program

        if request.include_pressure:
            units += [
                ("ir", print_function(wl.function))
                for wl in pressure_sweep()
            ]
        units += [
            ("ir", print_function(random_loop_program(seed=seed).function))
            for seed in range(request.random_count)
        ]
    if request.ir_texts:
        units += [("ir", text) for text in request.ir_texts]
    return units


def shard_suite_request(
    request: SuiteRequest, shards: int
) -> list[tuple[SuiteRequest, list[int]]] | None:
    """Split *request* into ≤ *shards* single-process sub-requests.

    Kernels are dealt round-robin (shard *i* takes positions ``i, i+n,
    …``) so workers see balanced mixes of small and large kernels.
    Returns ``(shard_request, positions)`` pairs — *positions* maps each
    shard item back to its place in the original kernel order — or
    ``None`` when the request is not worth sharding (a single kernel or
    one shard).  Generated scenarios travel as serialized IR text; each
    shard's *positions* list is reordered named-then-IR to match the
    worker-side spec expansion order.
    """
    units = _suite_shard_units(request)
    if shards < 2 or len(units) < 2:
        return None
    shards = min(shards, len(units))
    out = []
    for i in range(shards):
        dealt = list(range(i, len(units), shards))
        # Worker-side spec order is named kernels first, then IR texts —
        # keep positions aligned with the items the shard returns.
        named = [p for p in dealt if units[p][0] == "name"]
        irs = [p for p in dealt if units[p][0] == "ir"]
        shard = replace(
            request,
            workloads=tuple(units[p][1] for p in named) or None,
            ir_texts=tuple(units[p][1] for p in irs) or None,
            quick=False,
            include_pressure=False,
            random_count=0,
            processes=1,
            request_id=f"shard-{uuid.uuid4().hex[:12]}",
        )
        out.append((shard, named + irs))
    return out


def merge_suite_shards(
    request: SuiteRequest,
    shard_results: list[tuple[list[int], ResultEnvelope, str]],
    total: int,
    processes: int,
    wall_time_seconds: float,
) -> tuple[dict, dict]:
    """Reassemble shard envelopes into one suite payload.

    *shard_results* holds ``(positions, envelope, worker_label)`` per
    shard.  Items return to their original positions; context stats
    merge the way PR 4's multi-process fix established: per *worker*
    (label — one pool process may serve several shards) the
    element-wise **maximum** over its snapshots is that worker's final
    counter state (counters only grow), and summing those per-worker
    totals gives the merged ``context_stats`` — so a worker that
    served two shards is never double-counted.  The per-worker
    breakdown lands under the payload's ``workers`` key and the
    rendered table is regenerated so the merged report prints exactly
    like a local run.
    """
    from ..core.suite_runner import (
        SuiteReport,
        collapse_worker_stats,
        sum_worker_stats,
    )
    from .executors import render_suite_report

    items = [None] * total
    snapshots = []
    per_worker_info: dict[str, dict] = {}
    for positions, envelope, label in shard_results:
        if not envelope.ok:
            raise WorkerError(
                f"suite shard on {label} failed: "
                f"{envelope.error_message()}"
            )
        report = SuiteReport.from_dict(envelope.result["report"])
        if len(report.items) != len(positions):
            raise WorkerError(
                f"suite shard on {label} returned {len(report.items)} "
                f"kernels, expected {len(positions)}"
            )
        for position, item in zip(positions, report.items):
            items[position] = item
        snapshots.append((label, report.context_stats))
        info = per_worker_info.setdefault(label, {
            "worker": label, "kernels": 0, "wall_time_seconds": 0.0,
        })
        info["kernels"] += len(positions)
        info["wall_time_seconds"] += envelope.wall_time_seconds
    per_worker_stats = collapse_worker_stats(snapshots)
    context_stats = sum_worker_stats(per_worker_stats)
    workers = [
        {**info, "context_stats": dict(per_worker_stats[label])}
        for label, info in per_worker_info.items()
    ]
    merged = SuiteReport(
        machine=request.machine,
        model="chip" if request.chip else "rf",
        delta=request.delta,
        merge=request.merge,
        engine=request.engine,
        policy=request.policy,
        processes=processes,
        items=items,
        wall_time_seconds=wall_time_seconds,
        context_stats=context_stats,
    )
    payload = {
        "converged": merged.all_converged,
        "report": merged.to_dict(),
        "workers": workers,
        "rendered": render_suite_report(merged),
    }
    return payload, context_stats


def run_suite_shards(
    request: SuiteRequest,
    sharded: list[tuple[SuiteRequest, list[int]]],
    dispatch,
    processes: int,
    progress=None,
) -> tuple[dict, dict]:
    """Dispatch suite shards concurrently and merge their envelopes.

    The one sharding flow both local-process and remote backends share:
    *dispatch(index, shard_request)* performs that shard's round-trip
    and returns ``(worker_label, envelope)`` — the label identifies the
    worker that *actually* served the shard (a pool process is only
    known by pid after the fact), which is what lets the merge
    de-duplicate cumulative stats per worker.  Shards run on a thread
    per shard; as each completes — in *completion* order, so a slow
    shard never delays another's narration — a ``shard`` event fires,
    followed by the shard's per-kernel ``kernel`` events (original
    suite positions), keeping the documented suite event contract for
    sharded runs.
    """
    started = time.perf_counter()
    total = sum(len(positions) for _shard, positions in sharded)
    results: list = [None] * len(sharded)
    with ThreadPoolExecutor(max_workers=len(sharded)) as pool:
        futures = {
            pool.submit(dispatch, index, shard): index
            for index, (shard, _positions) in enumerate(sharded)
        }
        for future in as_completed(futures):
            index = futures[future]
            label, envelope = future.result()
            _shard, positions = sharded[index]
            results[index] = (positions, envelope, label)
            if progress is None:
                continue
            progress({"event": "shard", "index": index,
                      "worker": label, "requests": len(positions),
                      "ok": envelope.ok})
            if envelope.ok:
                records = envelope.result.get("report", {}) \
                    .get("results", [])
                for position, record in zip(positions, records):
                    progress({"event": "kernel", "name": record["name"],
                              "index": position, "total": total,
                              "converged": record["converged"]})
    return merge_suite_shards(
        request, results, total, processes, time.perf_counter() - started
    )


# ----------------------------------------------------------------------
# Pipeline chunking: contiguous stage runs chained through exit states.
# ----------------------------------------------------------------------
def chunk_pipeline_request(
    request: PipelineRequest, chunks: int
) -> list[PipelineRequest] | None:
    """Split *request* into ≤ *chunks* contiguous stage sub-pipelines.

    Stage order is preserved; every chunk except the first starts from
    its predecessor's exit state (the coordinator threads the
    ``entry_temperatures`` / ``exit_temperatures`` vectors through), so
    the chunked run follows exactly the sequential carry-through
    semantics the strategies already agree with.  Returns ``None`` when
    there is nothing to split.
    """
    specs = request.stages if request.stages is not None else request.ir_texts
    if not specs or chunks < 2 or len(specs) < 2:
        return None
    chunks = min(chunks, len(specs))
    base, extra = divmod(len(specs), chunks)
    out = []
    start = 0
    for i in range(chunks):
        size = base + (1 if i < extra else 0)
        stop = start + size
        piece = tuple(specs[start:stop])
        fields = dict(
            policies=(tuple(request.policies[start:stop])
                      if request.policies is not None else None),
            return_exit_state=True,
            request_id=f"chunk-{uuid.uuid4().hex[:12]}",
        )
        if request.stages is not None:
            fields["stages"] = piece
        else:
            fields["ir_texts"] = piece
        out.append(replace(request, **fields))
        start = stop
    return out


def merge_pipeline_chunks(
    request: PipelineRequest,
    chunk_results: list[tuple[ResultEnvelope, str]],
    wall_time_seconds: float,
) -> tuple[dict, dict]:
    """Concatenate chunk reports into one pipeline payload."""
    from ..core.pipeline_runner import PipelineReport
    from .executors import render_pipeline_report

    stage_dicts: list[dict] = []
    context_stats: dict[str, int] = {}
    workers = []
    iterations = 0
    converged = True
    exit_temperatures = None
    for index, (envelope, label) in enumerate(chunk_results):
        if not envelope.ok:
            raise WorkerError(
                f"pipeline chunk {index} on {label} failed: "
                f"{envelope.error_message()}"
            )
        report = envelope.result["report"]
        stage_dicts.extend(report["stages"])
        iterations += int(report.get("iterations", 0))
        converged = converged and bool(report.get("converged", True))
        for key, value in report.get("context_stats", {}).items():
            context_stats[key] = context_stats.get(key, 0) + value
        exit_temperatures = report.get("exit_temperatures")
        workers.append({
            "worker": label,
            "stages": len(report["stages"]),
            # The per-stage storage forms this worker's chunk resolved
            # to — what lets a caller assert a sharded sparse run used
            # the same form on every worker (the sweep/warm-start knobs
            # forward through the dataclass `replace` chunking).
            "stage_sweeps": [
                stage.get("sweep") for stage in report["stages"]
            ],
            "wall_time_seconds": envelope.wall_time_seconds,
            "context_stats": dict(report.get("context_stats", {})),
        })
    merged = PipelineReport.from_dict({
        "machine": request.machine,
        "model": "chip" if request.chip else "rf",
        "strategy": request.strategy,
        "delta": request.delta,
        "merge": request.merge,
        "sweep": request.sweep,
        "converged": converged,
        "iterations": iterations,
        "wall_time_seconds": wall_time_seconds,
        "context_stats": context_stats,
        "stages": stage_dicts,
        "exit_temperatures": (
            exit_temperatures if request.return_exit_state else None
        ),
    })
    payload = {
        "converged": merged.converged,
        "report": merged.to_dict(),
        "workers": workers,
        "rendered": render_pipeline_report(merged),
    }
    return payload, context_stats


# ----------------------------------------------------------------------
# Schedule sharding: candidate batches scored in parallel, argmin merged.
# ----------------------------------------------------------------------
def _schedule_stage_keys(request: ScheduleRequest) -> list[int]:
    """Stage interchangeability keys, computed coordinator-side.

    Mirrors the worker-side identity relation without loading any
    kernel: named stages are interchangeable iff equal names (the
    executor resolves them through the service's workload cache),
    ``ir_texts`` stages iff equal text (the executor dedupes parses by
    text), and seeded random stages reproduce the generator's own
    object sharing — ``random_pipeline`` is deterministic per seed, so
    every backend derives the same multiset.
    """
    first: dict = {}
    if request.stages is not None:
        return [
            first.setdefault(name, len(first)) for name in request.stages
        ]
    if request.ir_texts is not None:
        return [
            first.setdefault(text, len(first)) for text in request.ir_texts
        ]
    from ..workloads.generators import random_pipeline

    stages = random_pipeline(
        seed=request.seed, length=request.random_stages
    )
    return [first.setdefault(id(wl), len(first)) for wl in stages]


def shard_schedule_request(
    request: ScheduleRequest, shards: int
) -> tuple[list[ScheduleRequest], bool] | None:
    """Split an exhaustive schedule search into candidate-batch shards.

    Only the ``exhaustive`` strategy fans out: its candidate set is
    fixed upfront (identity + the deterministic space enumeration, cut
    at *budget*), so the coordinator deals candidates round-robin into
    explicit-batch sub-requests and the global ``(score, key)`` argmin
    over all shard rows is *exactly* the candidate inline search picks.
    Sequential strategies (``greedy``/``anneal``) and requests already
    carrying a batch forward whole.  Returns ``(shards, exhausted)`` —
    whether the enumeration fit the budget — or ``None``.
    """
    if request.strategy != "exhaustive" or request.candidates is not None:
        return None
    if shards < 2:
        return None
    from ..sched.space import ScheduleSpace

    space = ScheduleSpace(
        _schedule_stage_keys(request),
        list(request.placements) if request.placements else None,
    )
    budget = max(1, request.budget)
    # Inline exhaustive scores the identity first, then up to *budget*
    # enumerated candidates (the identity again, as a free memo hit,
    # when the placement axis is closed) — reproduce that exact set,
    # deduplicated by key.
    candidates = [space.identity()]
    seen = {candidates[0].key()}
    exhausted = True
    for candidate in space.enumerate_candidates(limit=budget + 1):
        if len(candidates) > budget:
            exhausted = False
            candidates.pop()
            break
        if candidate.key() in seen:
            continue
        seen.add(candidate.key())
        candidates.append(candidate)
    if len(candidates) < 2:
        return None
    shards = min(shards, len(candidates))
    out = []
    for i in range(shards):
        batch = candidates[i::shards]
        out.append(replace(
            request,
            candidates=tuple((c.order, c.policies) for c in batch),
            request_id=f"shard-{uuid.uuid4().hex[:12]}",
        ))
    return out, exhausted


def merge_schedule_shards(
    request: ScheduleRequest,
    shard_results: list[tuple[ResultEnvelope, str]],
    exhausted: bool,
    wall_time_seconds: float,
) -> tuple[dict, dict]:
    """Reduce shard batches to the global argmin schedule.

    Every shard reports its per-candidate ``candidate_scores`` rows and
    its *local* argmin's evidence pipeline; the coordinator takes the
    global minimum under the same deterministic ``(score, key)`` order
    every strategy uses, adopts the winning shard's evidence (each
    shard's evidence analyzes its local argmin, so the global winner's
    shard carries exactly the right one), sums evaluation/memo counters
    and merges per-worker context stats the established way (per-label
    max, then summed).
    """
    from ..core.suite_runner import collapse_worker_stats, sum_worker_stats
    from ..sched.optimizer import ScheduleReport
    from .executors import render_schedule_report

    best_row = None
    best_key = None
    best_report = None
    identity_score = None
    evaluated = 0
    memo_hits = 0
    snapshots = []
    workers = []
    reports = []
    for index, (envelope, label) in enumerate(shard_results):
        if not envelope.ok:
            raise WorkerError(
                f"schedule shard {index} on {label} failed: "
                f"{envelope.error_message()}"
            )
        report = ScheduleReport.from_dict(envelope.result["report"])
        reports.append(report)
        rows = report.candidate_scores or []
        for order, policies, score in rows:
            key = (
                tuple(int(i) for i in order),
                tuple(policies) if policies else (),
            )
            if best_row is None or (score, key) < (best_row[2], best_key):
                best_row = [list(order), policies, score]
                best_key = key
                best_report = report
        if report.identity_score is not None:
            identity_score = report.identity_score
        evaluated += report.candidates_evaluated
        memo_hits += report.eval_memo_hits
        snapshots.append((label, envelope.context_stats or {}))
        workers.append({
            "worker": label,
            "candidates": len(rows),
            "wall_time_seconds": envelope.wall_time_seconds,
            "context_stats": dict(envelope.context_stats or {}),
        })
    if best_row is None or best_report is None:
        raise WorkerError("schedule shards returned no candidate scores")
    per_worker_stats = collapse_worker_stats(snapshots)
    context_stats = sum_worker_stats(per_worker_stats)
    template = reports[0]
    best_order = [int(i) for i in best_row[0]]
    merged = ScheduleReport(
        machine=template.machine,
        model=template.model,
        strategy=request.strategy,
        objective=request.objective,
        budget=request.budget,
        seed=request.seed,
        delta=request.delta,
        merge=request.merge,
        sweep=request.sweep,
        policy=request.policy,
        stages=list(template.stages),
        best_order=best_order,
        best_names=[template.stages[i] for i in best_order],
        best_policies=(
            list(best_row[1]) if best_row[1] else None
        ),
        best_score=float(best_row[2]),
        identity_score=identity_score,
        space_size=template.space_size,
        candidates_evaluated=evaluated,
        eval_memo_hits=memo_hits,
        exhausted=exhausted,
        dwell_threshold=request.dwell_threshold,
        placements=(
            list(request.placements) if request.placements else None
        ),
        evidence=best_report.evidence,
        wall_time_seconds=wall_time_seconds,
        context_stats=context_stats,
    )
    payload = {
        "converged": bool(
            merged.evidence and merged.evidence.get("converged")
        ),
        "report": merged.to_dict(),
        "workers": workers,
        "rendered": render_schedule_report(merged),
    }
    return payload, context_stats


def run_schedule_shards(
    request: ScheduleRequest,
    sharded: list[ScheduleRequest],
    exhausted: bool,
    dispatch,
    progress=None,
) -> tuple[dict, dict]:
    """Dispatch candidate-batch shards concurrently and merge the argmin.

    Same shape as :func:`run_suite_shards`: *dispatch(index, shard)*
    returns ``(worker_label, envelope)``; one thread per shard; as each
    completes a ``shard`` event fires followed by a ``batch`` event
    carrying the running evaluated-candidate total and best score — the
    coordinator-level view of the per-batch progress contract.
    """
    started = time.perf_counter()
    results: list = [None] * len(sharded)
    with ThreadPoolExecutor(max_workers=len(sharded)) as pool:
        futures = {
            pool.submit(dispatch, index, shard): index
            for index, shard in enumerate(sharded)
        }
        evaluated = 0
        best_score = None
        for future in as_completed(futures):
            index = futures[future]
            label, envelope = future.result()
            results[index] = (envelope, label)
            if progress is None:
                continue
            progress({"event": "shard", "index": index,
                      "worker": label,
                      "requests": len(sharded[index].candidates),
                      "ok": envelope.ok})
            if envelope.ok:
                report = envelope.result.get("report", {})
                evaluated += int(report.get("candidates_evaluated", 0))
                score = report.get("best_score")
                if score is not None and (
                    best_score is None or score < best_score
                ):
                    best_score = score
                progress({"event": "batch", "evaluated": evaluated,
                          "best_score": best_score})
    return merge_schedule_shards(
        request, results, exhausted, time.perf_counter() - started
    )


# ----------------------------------------------------------------------
# ProcessBackend: local worker processes, one service each.
# ----------------------------------------------------------------------
_PROCESS_SERVICE = None


def _process_worker_init() -> None:
    """Pool initializer: one AnalysisService per worker process.

    The service — and its contexts, models and transfer caches — lives
    for the pool's lifetime, so successive requests against the same
    worker are warm.
    """
    global _PROCESS_SERVICE
    from .service import AnalysisService

    _PROCESS_SERVICE = AnalysisService()


def _process_worker_execute(request_data: dict) -> dict:
    import os

    from .requests import request_from_dict

    request = request_from_dict(request_data)
    # The pid identifies which pool process served the request — the
    # merge needs it to de-duplicate cumulative per-worker stats when
    # one process happens to serve several shards.
    return {
        "pid": os.getpid(),
        "envelope": _PROCESS_SERVICE.execute(request).to_dict(),
    }


class ProcessBackend(ExecutionBackend):
    """Local worker processes, each with its own warm service.

    Suite requests shard across the pool (kernels dealt round-robin,
    reports merged, stats summed); everything else forwards whole to
    one worker.  The pool is lazy and persists across requests, so the
    per-process contexts amortize exactly like the in-process ones.
    """

    name = "process"

    def __init__(self, processes: int = 2, timeout: float = 600.0) -> None:
        if processes < 1:
            raise ReproError("ProcessBackend needs at least one process")
        self.processes = processes
        #: Per-round-trip bound.  A pool worker killed mid-task (OOM,
        #: segfault) never completes its AsyncResult — an unbounded
        #: get() would hang forever where RemoteBackend surfaces a
        #: WorkerError on a dropped connection.
        self.timeout = timeout
        self._pool = None
        self._lock = threading.Lock()

    def _pool_handle(self):
        with self._lock:
            if self._pool is None:
                import multiprocessing

                self._pool = multiprocessing.Pool(
                    self.processes, initializer=_process_worker_init
                )
            return self._pool

    def _labelled_roundtrip(self, request: Request) -> tuple[str, ResultEnvelope]:
        import multiprocessing

        handle = self._pool_handle().apply_async(
            _process_worker_execute, (request.to_dict(),)
        )
        try:
            answer = handle.get(self.timeout)
        except multiprocessing.TimeoutError:
            raise WorkerError(
                f"worker process did not answer within {self.timeout}s "
                "(crashed mid-request, or raise ProcessBackend(timeout=…))"
            ) from None
        return (
            f"process-{answer['pid']}",
            ResultEnvelope.from_dict(answer["envelope"]),
        )

    def _roundtrip(self, request: Request) -> ResultEnvelope:
        return self._labelled_roundtrip(request)[1]

    def run_suite_sharded(
        self, request: SuiteRequest, progress=None
    ) -> tuple[dict, dict] | None:
        """Shard a suite across the pool; ``None`` if not shardable."""
        sharded = shard_suite_request(request, self.processes)
        if sharded is None:
            return None
        return run_suite_shards(
            request, sharded,
            lambda _index, shard: self._labelled_roundtrip(shard),
            self.processes, progress,
        )

    def run_schedule_sharded(
        self, request: ScheduleRequest, progress=None
    ) -> tuple[dict, dict] | None:
        """Fan exhaustive candidate batches across the pool."""
        sharded = shard_schedule_request(request, self.processes)
        if sharded is None:
            return None
        shards, exhausted = sharded
        return run_schedule_shards(
            request, shards, exhausted,
            lambda _index, shard: self._labelled_roundtrip(shard),
            progress,
        )

    def execute(self, service, request: Request, progress=None) -> ResultEnvelope:
        started = time.perf_counter()
        forward = request
        try:
            if isinstance(request, ScheduleRequest):
                merged = self.run_schedule_sharded(request, progress)
                if merged is not None:
                    payload, stats = merged
                    return ResultEnvelope(
                        request=request,
                        result=payload,
                        wall_time_seconds=time.perf_counter() - started,
                        context_stats=stats,
                    )
            if isinstance(request, SuiteRequest):
                sharded = self.run_suite_sharded(request, progress)
                if sharded is not None:
                    payload, stats = sharded
                    return ResultEnvelope(
                        request=request,
                        result=payload,
                        wall_time_seconds=time.perf_counter() - started,
                        context_stats=stats,
                    )
                if request.processes > 1:
                    # Unshardable (generator-addressed scenarios) with
                    # processes>1: the pool workers are daemonic and
                    # cannot spawn run_suite's nested pool — run the
                    # forwarded request single-process in the worker.
                    forward = replace(request, processes=1)
            return self._roundtrip(forward)
        except _BACKEND_FAILURES as exc:
            return ResultEnvelope(
                request=request,
                ok=False,
                error={"type": type(exc).__name__, "message": str(exc)},
                wall_time_seconds=time.perf_counter() - started,
            )

    def close(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.terminate()
            pool.join()


# ----------------------------------------------------------------------
# RemoteBackend: envelope protocol over sockets.
# ----------------------------------------------------------------------
def parse_worker_address(spec) -> tuple[str, int]:
    """``"host:port"`` (or an ``(host, port)`` pair) → ``(host, port)``."""
    if isinstance(spec, (tuple, list)) and len(spec) == 2:
        return str(spec[0]), int(spec[1])
    host, sep, port = str(spec).rpartition(":")
    if not sep or not host:
        raise ReproError(
            f"worker address {spec!r} is not HOST:PORT"
        )
    try:
        return host, int(port)
    except ValueError:
        raise ReproError(
            f"worker address {spec!r} has a non-numeric port"
        ) from None


class WorkerClient:
    """One persistent connection to a ``repro worker`` process.

    The wire protocol is the serve protocol verbatim: one request JSON
    per line out, one envelope JSON per line back, in request order per
    connection.  A lock serializes round-trips, and responses to tagged
    requests are verified against the ``request_id`` echo.
    """

    def __init__(self, address, timeout: float = 600.0) -> None:
        self.address = parse_worker_address(address)
        self.label = f"{self.address[0]}:{self.address[1]}"
        self.timeout = timeout
        self._lock = threading.Lock()
        self._sock = None
        self._rfile = None
        self._wfile = None

    def _connect_locked(self) -> None:
        if self._sock is not None:
            return
        try:
            sock = socket.create_connection(self.address, timeout=self.timeout)
        except OSError as exc:
            raise WorkerError(
                f"cannot connect to worker {self.label}: {exc}"
            ) from None
        self._sock = sock
        self._rfile = sock.makefile("r", encoding="utf-8", newline="\n")
        self._wfile = sock.makefile("w", encoding="utf-8", newline="\n")

    def request(self, request: Request) -> ResultEnvelope:
        """One request/response round-trip against this worker."""
        with self._lock:
            self._connect_locked()
            try:
                self._wfile.write(request.to_json())
                self._wfile.write("\n")
                self._wfile.flush()
                line = self._rfile.readline()
            except OSError as exc:
                self._close_locked()
                raise WorkerError(
                    f"worker {self.label} connection failed: {exc}"
                ) from None
            if not line:
                self._close_locked()
                raise WorkerError(
                    f"worker {self.label} closed the connection mid-request"
                )
        envelope = ResultEnvelope.from_json(line)
        if (request.request_id is not None
                and envelope.request.request_id != request.request_id):
            raise WorkerError(
                f"worker {self.label} answered request "
                f"{envelope.request.request_id!r}, expected "
                f"{request.request_id!r}"
            )
        return envelope

    def _close_locked(self) -> None:
        for handle in (self._rfile, self._wfile, self._sock):
            if handle is not None:
                try:
                    handle.close()
                except OSError:  # pragma: no cover - best-effort teardown
                    pass
        self._sock = self._rfile = self._wfile = None

    def close(self) -> None:
        with self._lock:
            self._close_locked()


class RemoteBackend(ExecutionBackend):
    """Sharded execution over ``python -m repro worker`` processes.

    *workers* is a list of ``"host:port"`` addresses.  Suite requests
    shard kernels across all workers in parallel; pipeline requests are
    split into contiguous chunks chained worker-to-worker through exit
    states; any other request is forwarded round-robin to one worker.
    *timeout* bounds each socket round-trip — workers answer only when
    the whole request completes, so size it for the slowest request,
    not the network.
    """

    name = "remote"

    def __init__(self, workers, timeout: float = 600.0) -> None:
        addresses = list(workers)
        if not addresses:
            raise ReproError("RemoteBackend needs at least one worker address")
        self.clients = [
            WorkerClient(address, timeout=timeout) for address in addresses
        ]
        self._rr_lock = threading.Lock()
        self._rr_next = 0

    def _next_client(self) -> WorkerClient:
        with self._rr_lock:
            client = self.clients[self._rr_next % len(self.clients)]
            self._rr_next += 1
            return client

    def run_suite_sharded(
        self, request: SuiteRequest, progress=None
    ) -> tuple[dict, dict] | None:
        """Fan a suite out across all workers; ``None`` if not shardable."""
        sharded = shard_suite_request(request, len(self.clients))
        if sharded is None:
            return None
        return run_suite_shards(
            request, sharded,
            lambda index, shard: (
                self.clients[index].label,
                self.clients[index].request(shard),
            ),
            len(self.clients), progress,
        )

    def run_schedule_sharded(
        self, request: ScheduleRequest, progress=None
    ) -> tuple[dict, dict] | None:
        """Fan exhaustive candidate batches across all workers."""
        sharded = shard_schedule_request(request, len(self.clients))
        if sharded is None:
            return None
        shards, exhausted = sharded
        return run_schedule_shards(
            request, shards, exhausted,
            lambda index, shard: (
                self.clients[index % len(self.clients)].label,
                self.clients[index % len(self.clients)].request(shard),
            ),
            progress,
        )

    def run_pipeline_chunked(
        self, request: PipelineRequest, progress=None
    ) -> tuple[dict, dict] | None:
        """Chain pipeline chunks across workers; ``None`` if unsplittable.

        Chunks are inherently sequential — chunk k+1 needs chunk k's
        exit state — so this distributes per-kernel compile/solve work
        and memory across workers rather than running them
        concurrently; repeated schedules then hit each worker's warm
        caches for its chunk.
        """
        chunks = chunk_pipeline_request(request, len(self.clients))
        if chunks is None:
            return None
        started = time.perf_counter()
        entry = request.entry_temperatures
        results = []
        for index, chunk in enumerate(chunks):
            client = self.clients[index % len(self.clients)]
            envelope = client.request(
                replace(chunk, entry_temperatures=entry)
            )
            results.append((envelope, client.label))
            if progress is not None:
                progress({
                    "event": "shard", "index": index, "worker": client.label,
                    "requests": 1, "ok": envelope.ok,
                })
            if not envelope.ok:
                break
            exit_temperatures = envelope.result["report"].get(
                "exit_temperatures"
            )
            if exit_temperatures is None:
                raise WorkerError(
                    f"worker {client.label} returned no exit state for "
                    f"pipeline chunk {index} — cannot chain the next chunk"
                )
            entry = tuple(float(t) for t in exit_temperatures)
        return merge_pipeline_chunks(
            request, results, time.perf_counter() - started
        )

    def execute(self, service, request: Request, progress=None) -> ResultEnvelope:
        started = time.perf_counter()
        try:
            merged = None
            if isinstance(request, SuiteRequest):
                merged = self.run_suite_sharded(request, progress)
            elif isinstance(request, PipelineRequest):
                merged = self.run_pipeline_chunked(request, progress)
            elif isinstance(request, ScheduleRequest):
                merged = self.run_schedule_sharded(request, progress)
            if merged is not None:
                payload, stats = merged
                return ResultEnvelope(
                    request=request,
                    result=payload,
                    wall_time_seconds=time.perf_counter() - started,
                    context_stats=stats,
                )
            return self._next_client().request(request)
        except _BACKEND_FAILURES as exc:
            return ResultEnvelope(
                request=request,
                ok=False,
                error={"type": type(exc).__name__, "message": str(exc)},
                wall_time_seconds=time.perf_counter() - started,
            )

    def close(self) -> None:
        for client in self.clients:
            client.close()
