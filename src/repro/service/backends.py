"""Execution backends: where a job's work actually runs.

The v2 service protocol separates *what* to run (a declarative
:class:`~repro.service.requests.Request`) and *how to track it* (a
:class:`~repro.service.jobs.JobHandle`) from *where it executes* — an
:class:`ExecutionBackend`:

``InlineBackend``
    Today's semantics: the request executes on the service thread pool
    in this process, against the service's shared contexts.  The
    default, and still bit-identical to a serial run (the per-context
    lock serializes cache mutation).
``ProcessBackend``
    Local worker *processes*, each owning its own
    :class:`~repro.service.service.AnalysisService` (and with it warm
    per-process contexts that persist across requests).  Suite requests
    shard their kernels round-robin across the pool — generated
    scenarios (pressure sweeps, random loops) travel as serialized IR
    text, so *every* suite shards — exhaustive schedule searches shard
    as candidate batches, and any other request is forwarded whole to
    one worker.
``RemoteBackend``
    Worker processes reachable over TCP (``python -m repro worker
    --listen HOST:PORT``), speaking the same line-delimited JSON
    envelope protocol as ``repro serve``.  Since the ``repro.service/3``
    control plane, every worker is a member of a
    :class:`~repro.service.cluster.WorkerRegistry` (heartbeat probes,
    ``drain``/``deregister`` lifecycle, failure accounting) and every
    shard routes through a
    :class:`~repro.service.cluster.ShardDispatcher`: a worker dying
    mid-suite/pipeline/schedule costs a resubmission of its shard to a
    healthy peer, not the job.  Shards are wrapped in streaming
    ``submit`` requests, so per-kernel/per-stage progress events arrive
    live as wire frames instead of shard-completion-only reports.

The sharding/merging logic itself lives in
:mod:`repro.service.dispatch` (one implementation, every backend); the
names are re-exported here for compatibility.  Sharded results merge
the way PR 4's multi-process fix established: per-kernel/per-stage
records reassemble in request order and per-worker context stats are
**summed**, so a merged report carries real amortization totals plus a
``workers`` breakdown for observability — now annotated with each
fleet member's registry state and failure counts.
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import replace

from ..errors import ReproError, WorkerConnectError, WorkerError
from ..obs.metrics import default_registry
from .cluster import (
    DEFAULT_MAX_FAILURES,
    ShardDispatcher,
    WorkerRegistry,
    annotate_worker_breakdown,
)
from .dispatch import (  # noqa: F401  (re-exported compatibility surface)
    _schedule_stage_keys,
    _suite_shard_units,
    chunk_pipeline_request,
    merge_pipeline_chunks,
    merge_schedule_shards,
    merge_suite_shards,
    run_pipeline_chunks,
    run_schedule_shards,
    run_suite_shards,
    shard_schedule_request,
    shard_suite_request,
)
from .envelope import ResultEnvelope, is_event_frame
from .requests import (
    PipelineRequest,
    Request,
    ScheduleRequest,
    SubmitRequest,
    SuiteRequest,
)

#: Failures a backend converts into ``ok=False`` envelopes on the job
#: path (`WorkerError` included via `ReproError`); genuine bugs still
#: propagate to the job runner's defensive net.
_BACKEND_FAILURES = (ReproError, OSError)

#: Process-wide metrics registry (disabled by default).  Bound once at
#: import so the per-round-trip cost while disabled is one boolean.
_METRICS = default_registry()


class ExecutionBackend:
    """Where requests execute.  Implementations override :meth:`execute`."""

    #: Stamped onto envelopes (``ResultEnvelope.backend``) and job
    #: handles so the execution path is observable per response.
    name = "backend"

    #: The fleet roster, when this backend has one (RemoteBackend);
    #: merged payloads' ``workers`` breakdowns annotate from it.
    registry: WorkerRegistry | None = None

    def execute(self, service, request: Request, progress=None) -> ResultEnvelope:
        raise NotImplementedError

    def close(self) -> None:
        """Release worker pools / connections (idempotent)."""

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


class InlineBackend(ExecutionBackend):
    """In-process execution against the service's shared contexts."""

    name = "inline"

    def execute(self, service, request: Request, progress=None) -> ResultEnvelope:
        return service.execute(request, progress=progress)


class ShardingBackend(ExecutionBackend):
    """Shared control flow of every fan-out backend.

    Subclasses override the ``run_*`` hooks (returning the merged
    ``(payload, stats)`` pair, or ``None`` when the request is not
    shardable) and :meth:`forward` (one whole request to one worker).
    :meth:`execute` is the one implementation of the
    try-shard-else-forward shape both ProcessBackend and RemoteBackend
    used to duplicate, including the failure net that turns
    :data:`_BACKEND_FAILURES` into error envelopes and the
    registry-state annotation of merged ``workers`` breakdowns.
    """

    def run_suite_sharded(
        self, request: SuiteRequest, progress=None
    ) -> tuple[dict, dict] | None:
        return None

    def run_pipeline_chunked(
        self, request: PipelineRequest, progress=None
    ) -> tuple[dict, dict] | None:
        return None

    def run_schedule_sharded(
        self, request: ScheduleRequest, progress=None
    ) -> tuple[dict, dict] | None:
        return None

    def prepare_forward(self, request: Request) -> Request:
        """Adjust an unshardable request before forwarding it whole."""
        return request

    def forward(self, request: Request) -> ResultEnvelope:
        raise NotImplementedError

    def execute(self, service, request: Request, progress=None) -> ResultEnvelope:
        started = time.perf_counter()
        try:
            merged = None
            if isinstance(request, SuiteRequest):
                merged = self.run_suite_sharded(request, progress)
            elif isinstance(request, PipelineRequest):
                merged = self.run_pipeline_chunked(request, progress)
            elif isinstance(request, ScheduleRequest):
                merged = self.run_schedule_sharded(request, progress)
            if merged is not None:
                payload, stats = merged
                workers = payload.get("workers")
                if isinstance(workers, list):
                    annotate_worker_breakdown(workers, self.registry)
                return ResultEnvelope(
                    request=request,
                    result=payload,
                    wall_time_seconds=time.perf_counter() - started,
                    context_stats=stats,
                )
            return self.forward(self.prepare_forward(request))
        except _BACKEND_FAILURES as exc:
            return ResultEnvelope(
                request=request,
                ok=False,
                error={"type": type(exc).__name__, "message": str(exc)},
                wall_time_seconds=time.perf_counter() - started,
            )


# ----------------------------------------------------------------------
# ProcessBackend: local worker processes, one service each.
# ----------------------------------------------------------------------
_PROCESS_SERVICE = None


def _process_worker_init() -> None:
    """Pool initializer: one AnalysisService per worker process.

    The service — and its contexts, models and transfer caches — lives
    for the pool's lifetime, so successive requests against the same
    worker are warm.
    """
    global _PROCESS_SERVICE
    from .service import AnalysisService

    _PROCESS_SERVICE = AnalysisService()


def _process_worker_execute(request_data: dict) -> dict:
    import os

    from .requests import request_from_dict

    request = request_from_dict(request_data)
    # The pid identifies which pool process served the request — the
    # merge needs it to de-duplicate cumulative per-worker stats when
    # one process happens to serve several shards.
    return {
        "pid": os.getpid(),
        "envelope": _PROCESS_SERVICE.execute(request).to_dict(),
    }


class ProcessBackend(ShardingBackend):
    """Local worker processes, each with its own warm service.

    Suite requests shard across the pool (kernels dealt round-robin,
    reports merged, stats summed); everything else forwards whole to
    one worker.  The pool is lazy and persists across requests, so the
    per-process contexts amortize exactly like the in-process ones.
    """

    name = "process"

    def __init__(self, processes: int = 2, timeout: float = 600.0) -> None:
        if processes < 1:
            raise ReproError("ProcessBackend needs at least one process")
        self.processes = processes
        #: Per-round-trip bound.  A pool worker killed mid-task (OOM,
        #: segfault) never completes its AsyncResult — an unbounded
        #: get() would hang forever where RemoteBackend surfaces a
        #: WorkerError on a dropped connection.
        self.timeout = timeout
        self._pool = None
        self._lock = threading.Lock()

    def _pool_handle(self):
        with self._lock:
            if self._pool is None:
                import multiprocessing

                self._pool = multiprocessing.Pool(
                    self.processes, initializer=_process_worker_init
                )
            return self._pool

    def _labelled_roundtrip(self, request: Request) -> tuple[str, ResultEnvelope]:
        import multiprocessing

        handle = self._pool_handle().apply_async(
            _process_worker_execute, (request.to_dict(),)
        )
        try:
            answer = handle.get(self.timeout)
        except multiprocessing.TimeoutError:
            raise WorkerError(
                f"worker process did not answer within {self.timeout}s "
                "(crashed mid-request, or raise ProcessBackend(timeout=…))"
            ) from None
        return (
            f"process-{answer['pid']}",
            ResultEnvelope.from_dict(answer["envelope"]),
        )

    def _roundtrip(self, request: Request) -> ResultEnvelope:
        return self._labelled_roundtrip(request)[1]

    def run_suite_sharded(
        self, request: SuiteRequest, progress=None
    ) -> tuple[dict, dict] | None:
        """Shard a suite across the pool; ``None`` if not shardable."""
        sharded = shard_suite_request(request, self.processes)
        if sharded is None:
            return None
        return run_suite_shards(
            request, sharded,
            lambda _index, shard: self._labelled_roundtrip(shard),
            self.processes, progress,
        )

    def run_schedule_sharded(
        self, request: ScheduleRequest, progress=None
    ) -> tuple[dict, dict] | None:
        """Fan exhaustive candidate batches across the pool."""
        sharded = shard_schedule_request(request, self.processes)
        if sharded is None:
            return None
        shards, exhausted = sharded
        return run_schedule_shards(
            request, shards, exhausted,
            lambda _index, shard: self._labelled_roundtrip(shard),
            progress,
        )

    def prepare_forward(self, request: Request) -> Request:
        if isinstance(request, SuiteRequest) and request.processes > 1:
            # Unshardable (generator-addressed scenarios) with
            # processes>1: the pool workers are daemonic and cannot
            # spawn run_suite's nested pool — run the forwarded
            # request single-process in the worker.
            return replace(request, processes=1)
        return request

    def forward(self, request: Request) -> ResultEnvelope:
        return self._roundtrip(request)

    def close(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.terminate()
            pool.join()


# ----------------------------------------------------------------------
# RemoteBackend: envelope protocol over sockets.
# ----------------------------------------------------------------------
def parse_worker_address(spec) -> tuple[str, int]:
    """``"host:port"`` (or an ``(host, port)`` pair) → ``(host, port)``."""
    if isinstance(spec, (tuple, list)) and len(spec) == 2:
        return str(spec[0]), int(spec[1])
    host, sep, port = str(spec).rpartition(":")
    if not sep or not host:
        raise ReproError(
            f"worker address {spec!r} is not HOST:PORT"
        )
    try:
        return host, int(port)
    except ValueError:
        raise ReproError(
            f"worker address {spec!r} has a non-numeric port"
        ) from None


class WorkerClient:
    """One persistent connection to a ``repro worker`` process.

    The wire protocol is the serve protocol verbatim: one request JSON
    per line out, one envelope JSON per line back, in request order per
    connection — possibly preceded by ``repro.service/3`` *event
    frames* when the request was a streaming ``submit`` (each frame is
    forwarded to the caller's ``on_event`` as it arrives).  A lock
    serializes round-trips, and responses to tagged requests are
    verified against the ``request_id`` echo.

    Connection failures are typed: a *failed connect* raises
    :class:`~repro.errors.WorkerConnectError` (the worker never saw the
    request — always safe to resubmit) and tears the half-built socket
    down, while a mid-request loss raises plain
    :class:`~repro.errors.WorkerError`.
    """

    def __init__(self, address, timeout: float = 600.0) -> None:
        self.address = parse_worker_address(address)
        self.label = f"{self.address[0]}:{self.address[1]}"
        self.timeout = timeout
        self._lock = threading.Lock()
        self._sock = None
        self._rfile = None
        self._wfile = None

    def _connect_locked(self) -> None:
        if self._sock is not None:
            return
        sock = None
        try:
            sock = socket.create_connection(
                self.address, timeout=self.timeout
            )
            rfile = sock.makefile("r", encoding="utf-8", newline="\n")
            wfile = sock.makefile("w", encoding="utf-8", newline="\n")
        except OSError as exc:
            # Close whatever was half-built: a failed connect must not
            # leak the socket (or leave stale file handles behind for
            # the next attempt to trip over).
            if sock is not None:
                try:
                    sock.close()
                except OSError:  # pragma: no cover - best-effort teardown
                    pass
            raise WorkerConnectError(
                f"cannot connect to worker {self.label}: {exc}"
            ) from None
        self._sock = sock
        self._rfile = rfile
        self._wfile = wfile

    def request(self, request: Request, on_event=None) -> ResultEnvelope:
        """One request/response round-trip against this worker.

        *on_event* receives the ``event`` payload of every
        ``repro.service/3`` event frame the worker streams ahead of the
        final envelope (frames arriving with no *on_event* are
        discarded).
        """
        import json as _json

        started = time.perf_counter() if _METRICS.enabled else None
        with self._lock:
            self._connect_locked()
            try:
                self._wfile.write(request.to_json())
                self._wfile.write("\n")
                self._wfile.flush()
            except OSError as exc:
                self._close_locked()
                raise WorkerError(
                    f"worker {self.label} connection failed: {exc}"
                ) from None
            while True:
                try:
                    line = self._rfile.readline()
                except OSError as exc:
                    self._close_locked()
                    raise WorkerError(
                        f"worker {self.label} connection failed: {exc}"
                    ) from None
                if not line:
                    self._close_locked()
                    raise WorkerError(
                        f"worker {self.label} closed the connection "
                        "mid-request"
                    )
                try:
                    data = _json.loads(line)
                except ValueError:
                    data = None
                if is_event_frame(data):
                    if on_event is not None:
                        on_event(dict(data.get("event") or {}))
                    continue
                break
        envelope = ResultEnvelope.from_json(line)
        if (request.request_id is not None
                and envelope.request.request_id != request.request_id):
            raise WorkerError(
                f"worker {self.label} answered request "
                f"{envelope.request.request_id!r}, expected "
                f"{request.request_id!r}"
            )
        if started is not None:
            _METRICS.inc("backend.roundtrips")
            _METRICS.observe(
                "backend.roundtrip_seconds", time.perf_counter() - started
            )
        return envelope

    def _close_locked(self) -> None:
        for handle in (self._rfile, self._wfile, self._sock):
            if handle is not None:
                try:
                    handle.close()
                except OSError:  # pragma: no cover - best-effort teardown
                    pass
        self._sock = self._rfile = self._wfile = None

    def close(self) -> None:
        with self._lock:
            self._close_locked()


class RemoteBackend(ShardingBackend):
    """Sharded execution over ``python -m repro worker`` processes.

    *workers* is a list of ``"host:port"`` addresses (duplicates
    collapse to one roster entry).  Suite requests shard kernels across
    all workers in parallel; pipeline requests are split into
    contiguous chunks chained worker-to-worker through exit states;
    exhaustive schedule searches shard as candidate batches; any other
    request is forwarded round-robin to one worker.  *timeout* bounds
    each socket round-trip — workers answer only when the whole request
    completes, so size it for the slowest request, not the network.

    Every worker is registered in a
    :class:`~repro.service.cluster.WorkerRegistry` with a TCP-connect
    probe, and every round-trip routes through a
    :class:`~repro.service.cluster.ShardDispatcher`: when a worker dies
    mid-job its shard is resubmitted to a healthy peer (excluded-worker
    retry) and the worker ages toward ``dead`` after *max_failures*
    consecutive losses.  The healthy path places shard *i* on worker
    ``i % n`` exactly as before the registry existed — only failure
    reroutes — so retried merged results stay bit-identical
    (suite/schedule) or within 2δ (pipeline chains) to inline.

    With *stream_events* (default), shards are wrapped in streaming
    ``submit`` requests and the workers' live per-kernel/per-stage
    events forward into the coordinator job's event stream, remapped to
    the original request's coordinates.
    """

    name = "remote"

    def __init__(
        self,
        workers,
        timeout: float = 600.0,
        max_failures: int = DEFAULT_MAX_FAILURES,
        stream_events: bool = True,
        probe_timeout: float = 2.0,
    ) -> None:
        addresses = list(workers)
        if not addresses:
            raise ReproError("RemoteBackend needs at least one worker address")
        self.stream_events = stream_events
        self.probe_timeout = probe_timeout
        self.registry = WorkerRegistry(max_failures=max_failures)
        self._clients: dict[str, WorkerClient] = {}
        self._labels: list[str] = []
        for address in addresses:
            client = WorkerClient(address, timeout=timeout)
            if client.label in self._clients:
                continue
            self._clients[client.label] = client
            self._labels.append(client.label)
            self.registry.register(
                client.label, probe=self._probe_for(client)
            )
        self.dispatcher = ShardDispatcher(self.registry, self._send)
        self._rr_lock = threading.Lock()
        self._rr_next = 0

    @property
    def clients(self) -> list[WorkerClient]:
        """The worker connections, in registration order (compat view)."""
        return [self._clients[label] for label in self._labels]

    def _probe_for(self, client: WorkerClient):
        def probe() -> bool:
            sock = socket.create_connection(
                client.address, timeout=self.probe_timeout
            )
            sock.close()
            return True
        return probe

    def _send(self, worker: str, request: Request, on_event) -> ResultEnvelope:
        """The dispatcher's round-trip: one request to one named worker."""
        client = self._clients[worker]
        if on_event is not None and self.stream_events:
            # Wrap in a streaming submit so the worker's per-kernel /
            # per-sweep events come back live as wire frames.  The
            # submit reuses the inner request_id: the final envelope
            # echoes the inner request, so the client's echo check
            # holds unchanged.
            wrapped = SubmitRequest(
                request_id=request.request_id,
                request=request.to_dict(),
                stream=True,
            )
            return client.request(wrapped, on_event=on_event)
        return client.request(request)

    def _shard_dispatch(self, progress):
        """A dispatch callable for the run_* flows, retry included."""
        def dispatch(index, shard, on_event=None):
            prefer = self._labels[index % len(self._labels)]
            return self.dispatcher.dispatch(
                shard, on_event=on_event, progress=progress, prefer=prefer
            )
        return dispatch

    def run_suite_sharded(
        self, request: SuiteRequest, progress=None
    ) -> tuple[dict, dict] | None:
        """Fan a suite out across all workers; ``None`` if not shardable."""
        sharded = shard_suite_request(request, len(self._labels))
        if sharded is None:
            return None
        return run_suite_shards(
            request, sharded, self._shard_dispatch(progress),
            len(self._labels), progress,
            streams_events=self.stream_events,
        )

    def run_schedule_sharded(
        self, request: ScheduleRequest, progress=None
    ) -> tuple[dict, dict] | None:
        """Fan exhaustive candidate batches across all workers."""
        sharded = shard_schedule_request(request, len(self._labels))
        if sharded is None:
            return None
        shards, exhausted = sharded
        return run_schedule_shards(
            request, shards, exhausted, self._shard_dispatch(progress),
            progress,
        )

    def run_pipeline_chunked(
        self, request: PipelineRequest, progress=None
    ) -> tuple[dict, dict] | None:
        """Chain pipeline chunks across workers; ``None`` if unsplittable."""
        chunks = chunk_pipeline_request(request, len(self._labels))
        if chunks is None:
            return None
        return run_pipeline_chunks(
            request, chunks, self._shard_dispatch(progress), progress,
            streams_events=self.stream_events,
        )

    def forward(self, request: Request) -> ResultEnvelope:
        with self._rr_lock:
            prefer = self._labels[self._rr_next % len(self._labels)]
            self._rr_next += 1
        _worker, envelope = self.dispatcher.dispatch(request, prefer=prefer)
        return envelope

    def close(self) -> None:
        for client in self._clients.values():
            client.close()
