"""Control plane: worker registry, health checks, and shard dispatch.

PR 5 gave the service a wire protocol; this module gives it
*operability*.  The pieces mirror the provision → run → collect →
teardown lifecycle PerfKitBenchmarker uses for cloud VMs, scaled down
to analysis workers:

:class:`WorkerRegistry`
    The fleet roster.  Every worker is registered with a name (and
    optionally a *probe* — a cheap liveness callable), moves through
    the lifecycle ``joining → healthy → draining → dead`` (plus
    ``deregistered``, which removes it from the roster), and carries
    failure accounting: consecutive failures, total shards served and
    failed, last-heartbeat timestamp.  ``acquire()`` leases the
    least-loaded healthy worker (FIFO tie-break), skipping an explicit
    exclusion set — the primitive shard retry is built on.

:class:`ShardDispatcher`
    Backend-agnostic retry engine.  ``dispatch(shard)`` leases a
    worker, performs the backend-supplied round-trip, and on a
    :class:`~repro.errors.WorkerError` marks the worker failed,
    *excludes* it, and resubmits the identical shard to the next
    healthy worker — so one worker dying mid-suite/pipeline/schedule
    costs a re-run of its shard, not the whole job.  When no healthy
    worker remains, :class:`~repro.errors.NoHealthyWorkersError`
    carries the registry's failure breakdown.

Shard requests are deterministic and side-effect-free (pure analyses
against per-worker caches), so resubmitting one to a different worker
reproduces the exact same per-kernel/per-stage records — which is what
keeps the retried merged result bit-identical (suites, schedules) or
within 2δ (chained pipeline chunks) to the inline run.

Health checks are pull-based: :meth:`WorkerRegistry.check` runs one
worker's probe and records the outcome, :meth:`WorkerRegistry.check_all`
sweeps the fleet, and :class:`HeartbeatThread` (optional, off by
default) does so periodically in the background.  A worker whose
consecutive failures reach ``max_failures`` is marked ``dead``;
a later successful probe resurrects it (``dead → healthy``) so a
restarted worker process rejoins without re-registration.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from ..errors import NoHealthyWorkersError, ReproError, WorkerError
from ..obs.metrics import default_registry

_METRICS = default_registry()

#: Worker lifecycle states, in nominal order.
JOINING = "joining"
HEALTHY = "healthy"
DRAINING = "draining"
DEAD = "dead"

WORKER_STATES = (JOINING, HEALTHY, DRAINING, DEAD)

#: Consecutive failures after which a worker is marked dead.
DEFAULT_MAX_FAILURES = 2


@dataclass
class WorkerInfo:
    """One worker's roster entry (registry-internal; snapshot for a copy)."""

    name: str
    state: str = JOINING
    probe: object = None  # () -> bool | raises; None = no health check
    in_flight: int = 0
    shards_completed: int = 0
    shards_failed: int = 0
    consecutive_failures: int = 0
    registered_at: float = field(default_factory=time.monotonic)
    last_heartbeat: float | None = None
    last_error: str | None = None

    def snapshot(self) -> dict:
        """JSON-plain view for payload ``workers`` breakdowns."""
        return {
            "worker": self.name,
            "state": self.state,
            "in_flight": self.in_flight,
            "shards_completed": self.shards_completed,
            "shards_failed": self.shards_failed,
            "consecutive_failures": self.consecutive_failures,
            "last_error": self.last_error,
        }


class WorkerRegistry:
    """The fleet roster: membership, health, leasing, failure accounting.

    Parameters
    ----------
    max_failures:
        Consecutive round-trip/probe failures after which a worker is
        marked :data:`DEAD` (default :data:`DEFAULT_MAX_FAILURES`).
        Dispatchers *exclude* a worker for the current job after its
        first failure regardless — this knob only controls when the
        worker stops being considered for *future* jobs.
    heartbeat_interval:
        Advisory probe period in seconds, used by
        :class:`HeartbeatThread` and recorded for observability; the
        registry itself never spawns threads.
    """

    def __init__(
        self,
        max_failures: int = DEFAULT_MAX_FAILURES,
        heartbeat_interval: float = 5.0,
    ) -> None:
        if max_failures < 1:
            raise ReproError("WorkerRegistry needs max_failures >= 1")
        self.max_failures = max_failures
        self.heartbeat_interval = heartbeat_interval
        self._lock = threading.Lock()
        self._workers: dict[str, WorkerInfo] = {}
        self._lease_counter = 0  # FIFO tie-break for equal loads

    # ------------------------------------------------------------------
    # Membership lifecycle
    # ------------------------------------------------------------------
    def register(self, name: str, probe=None) -> WorkerInfo:
        """Add *name* to the roster (``joining``; first success or probe
        promotes it to ``healthy``).  Re-registering a known name
        resets its failure accounting — the restart case."""
        with self._lock:
            info = WorkerInfo(name=name, probe=probe)
            # A worker with no probe cannot be health-checked before
            # first use; trust it until a round-trip says otherwise.
            if probe is None:
                info.state = HEALTHY
            self._workers[name] = info
            return info

    def deregister(self, name: str) -> None:
        """Remove *name* from the roster entirely (unknown names ignored)."""
        with self._lock:
            self._workers.pop(name, None)

    def drain(self, name: str) -> None:
        """``healthy → draining``: finish in-flight shards, accept no new
        ones.  Unknown names raise."""
        with self._lock:
            self._require_locked(name).state = DRAINING

    def undrain(self, name: str) -> None:
        """``draining → healthy`` (maintenance over)."""
        with self._lock:
            info = self._require_locked(name)
            if info.state == DRAINING:
                info.state = HEALTHY

    def mark_dead(self, name: str, reason: str = "") -> None:
        with self._lock:
            info = self._require_locked(name)
            info.state = DEAD
            if reason:
                info.last_error = reason

    def _require_locked(self, name: str) -> WorkerInfo:
        info = self._workers.get(name)
        if info is None:
            raise ReproError(f"unknown worker {name!r} (not registered)")
        return info

    # ------------------------------------------------------------------
    # Health checks
    # ------------------------------------------------------------------
    def heartbeat(self, name: str, ok: bool = True, error: str = "") -> None:
        """Record one liveness observation for *name*.

        A successful heartbeat promotes ``joining``/``dead`` workers to
        ``healthy`` (a restarted worker rejoins automatically) and
        clears consecutive failures; a failed one counts toward
        ``max_failures``.  ``draining`` is sticky — a drain is an
        operator decision a probe must not undo.
        """
        with self._lock:
            info = self._require_locked(name)
            info.last_heartbeat = time.monotonic()
            if ok:
                info.consecutive_failures = 0
                if info.state in (JOINING, DEAD):
                    info.state = HEALTHY
            else:
                info.consecutive_failures += 1
                info.last_error = error or info.last_error
                if (info.consecutive_failures >= self.max_failures
                        and info.state != DRAINING):
                    info.state = DEAD

    def check(self, name: str) -> bool:
        """Run *name*'s probe (if any) and record the outcome."""
        with self._lock:
            probe = self._require_locked(name).probe
        if probe is None:
            return True
        try:
            ok = probe() is not False
            error = ""
        except Exception as exc:
            ok, error = False, f"{type(exc).__name__}: {exc}"
        self.heartbeat(name, ok=ok, error=error)
        return ok

    def check_all(self) -> dict[str, bool]:
        """Probe every registered worker; returns ``{name: alive}``."""
        with self._lock:
            names = list(self._workers)
        return {name: self.check(name) for name in names}

    # ------------------------------------------------------------------
    # Leasing
    # ------------------------------------------------------------------
    def acquire(
        self,
        exclude: set[str] | frozenset = frozenset(),
        prefer: str | None = None,
    ) -> str:
        """Lease a healthy worker not in *exclude*.

        *prefer* names the worker the caller would pick if healthy —
        how deterministic shard→worker placement (shard *i* on worker
        ``i % n``) survives the registry: the healthy path places
        exactly where the pre-registry code did, and only failure
        reroutes.  Without a placeable *prefer*, the least-loaded
        healthy worker wins (registration-order tie-break).
        ``joining`` workers count as placeable (their first round-trip
        is their health check).  Raises
        :class:`~repro.errors.NoHealthyWorkersError` with the failure
        breakdown when nothing is placeable — the terminal state of a
        retry chain.
        """
        with self._lock:
            candidates = [
                info for info in self._workers.values()
                if info.state in (HEALTHY, JOINING)
                and info.name not in exclude
            ]
            if not candidates:
                detail = ", ".join(
                    f"{info.name}={info.state}"
                    f"({info.shards_failed} failed)"
                    for info in self._workers.values()
                ) or "registry is empty"
                raise NoHealthyWorkersError(
                    f"no healthy worker available "
                    f"(excluded: {sorted(exclude) or 'none'}; {detail})"
                )
            best = None
            if prefer is not None:
                for info in candidates:
                    if info.name == prefer:
                        best = info
                        break
            if best is None:
                best = min(
                    candidates, key=lambda info: (info.in_flight,
                                                  info.registered_at)
                )
            best.in_flight += 1
            self._lease_counter += 1
            return best.name

    def release(self, name: str, ok: bool, error: str = "") -> None:
        """Return a lease, recording the shard outcome.

        A failed shard counts as a failed heartbeat too (same
        ``max_failures`` threshold), so a worker that keeps dropping
        connections ages out of the roster without a probe sweep.
        """
        with self._lock:
            info = self._workers.get(name)
            if info is None:
                return  # deregistered while in flight
            info.in_flight = max(0, info.in_flight - 1)
            if ok:
                info.shards_completed += 1
            else:
                info.shards_failed += 1
        self.heartbeat(name, ok=ok, error=error)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def workers(self) -> list[str]:
        with self._lock:
            return list(self._workers)

    def healthy(self) -> list[str]:
        with self._lock:
            return [
                info.name for info in self._workers.values()
                if info.state in (HEALTHY, JOINING)
            ]

    def state(self, name: str) -> str:
        with self._lock:
            return self._require_locked(name).state

    def in_flight(self, name: str | None = None) -> int:
        """Outstanding leases for *name* (or fleet-wide total)."""
        with self._lock:
            if name is not None:
                return self._require_locked(name).in_flight
            return sum(info.in_flight for info in self._workers.values())

    def snapshot(self) -> list[dict]:
        """JSON-plain failure-accounting view, registration order —
        what merge paths attach to the payload ``workers`` breakdown."""
        with self._lock:
            return [info.snapshot() for info in self._workers.values()]

    def __len__(self) -> int:
        with self._lock:
            return len(self._workers)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            states = {name: info.state
                      for name, info in self._workers.items()}
        return f"<WorkerRegistry {states}>"


class HeartbeatThread:
    """Optional background probe sweep over a registry's fleet.

    ``start()`` spawns a daemon thread that calls
    :meth:`WorkerRegistry.check_all` every ``registry.heartbeat_interval``
    seconds until ``stop()``.  Backends leave this off by default —
    dispatch-time accounting already ages failing workers out — but a
    long-lived coordinator can run one so dead workers are discovered
    (and resurrected workers rejoin) *between* jobs.
    """

    def __init__(self, registry: WorkerRegistry) -> None:
        self.registry = registry
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> "HeartbeatThread":
        if self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="repro-heartbeat", daemon=True
            )
            self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.registry.heartbeat_interval):
            self.registry.check_all()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


class ShardDispatcher:
    """Excluded-worker retry around one backend's shard round-trip.

    Parameters
    ----------
    registry:
        The fleet roster to lease from.
    send:
        ``send(worker_name, request, on_event) -> ResultEnvelope`` — the
        backend's round-trip.  Must raise
        :class:`~repro.errors.WorkerError` (or a subclass) on transport
        loss; analysis failures come back as ``ok=False`` envelopes and
        are *not* retried (re-running a deterministic failure elsewhere
        cannot succeed).  *on_event* (may be ``None``) receives
        worker-streamed progress events for backends that support event
        frames.
    max_attempts:
        Total placements per shard, the original included (default: one
        resubmission per remaining worker, i.e. fleet size at dispatch
        time).
    """

    def __init__(self, registry: WorkerRegistry, send,
                 max_attempts: int | None = None) -> None:
        self.registry = registry
        self.send = send
        self.max_attempts = max_attempts

    def dispatch(self, request, on_event=None, progress=None,
                 prefer: str | None = None):
        """Run *request* on some healthy worker; returns
        ``(worker_name, envelope)``.

        *prefer* seeds the placement (see
        :meth:`WorkerRegistry.acquire`) — a failed preferred worker is
        excluded, so resubmissions fall back to least-loaded.  On a
        :class:`~repro.errors.WorkerError` the failing worker is
        excluded and the identical request resubmitted elsewhere; a
        ``retry`` progress event narrates each resubmission.  Exhausting
        the fleet (or *max_attempts*) re-raises the last failure — the
        caller's failure path turns it into an error envelope.
        """
        excluded: set[str] = set()
        attempts = 0
        last_error: WorkerError | None = None
        limit = self.max_attempts or max(1, len(self.registry))
        if _METRICS.enabled:
            _METRICS.gauge("cluster.workers.healthy",
                           len(self.registry.healthy()))
        while attempts < limit:
            try:
                worker = self.registry.acquire(
                    exclude=excluded, prefer=prefer
                )
            except NoHealthyWorkersError:
                if last_error is not None:
                    raise last_error
                raise
            attempts += 1
            if _METRICS.enabled:
                _METRICS.inc("cluster.dispatches")
            try:
                envelope = self.send(worker, request, on_event)
            except WorkerError as exc:
                self.registry.release(worker, ok=False, error=str(exc))
                excluded.add(worker)
                last_error = exc
                if _METRICS.enabled:
                    _METRICS.inc("cluster.retries")
                    _METRICS.inc(f"cluster.retries.{worker}")
                if progress is not None:
                    progress({
                        "event": "retry", "worker": worker,
                        "attempt": attempts,
                        "error": {"type": type(exc).__name__,
                                  "message": str(exc)},
                        "request_id": getattr(request, "request_id", None),
                    })
                continue
            self.registry.release(worker, ok=True)
            if _METRICS.enabled:
                _METRICS.inc(f"cluster.shards.{worker}")
            return worker, envelope
        assert last_error is not None
        raise last_error


def annotate_worker_breakdown(
    workers: list[dict], registry: WorkerRegistry | None
) -> list[dict]:
    """Fold the registry's failure accounting into a payload breakdown.

    Successful-shard entries gain their worker's ``state`` /
    ``shards_failed`` / ``consecutive_failures`` / ``last_error``
    columns; workers that served nothing (dead mid-job, draining,
    never picked) are appended with zero ``kernels`` so the breakdown
    names *every* fleet member — the "dead worker reported in the
    failure breakdown" contract.  Entry sums are untouched: failure
    rows carry no ``context_stats``, so "merged stats equal the sum of
    the workers" keeps holding.
    """
    if registry is None:
        return workers
    by_name = {info["worker"]: info for info in workers}
    for entry in registry.snapshot():
        row = by_name.get(entry["worker"])
        if row is None:
            row = {
                "worker": entry["worker"],
                "kernels": 0,
                "wall_time_seconds": 0.0,
                "context_stats": {},
            }
            workers.append(row)
        row.update(
            state=entry["state"],
            shards_failed=entry["shards_failed"],
            consecutive_failures=entry["consecutive_failures"],
            last_error=entry["last_error"],
        )
    return workers
