"""Job handles: the async unit of the v2 service protocol.

``AnalysisService.submit()`` no longer hands back a bare future — it
returns a :class:`JobHandle`, the service's view of one request moving
through ``queued → running → done/error/cancelled``:

* ``job_id`` — stable service-scoped identifier, stamped onto the
  resulting envelope (``ResultEnvelope.job_id``) and onto every
  progress event;
* ``status()`` / ``done()`` — live lifecycle state;
* ``result()`` — block for the :class:`~repro.service.envelope.ResultEnvelope`
  (library-level failures are *error envelopes*, exactly as
  ``execute()``; only cancellation raises);
* ``cancel()`` — a queued job never runs; a running job finishes but
  its result is discarded;
* ``events()`` — an iterator over the job's progress events, replayed
  from the start for late subscribers and live-fed until the job
  reaches a terminal state.

Progress events are plain dicts with an ``"event"`` discriminator and
the ``job_id`` attached: ``status`` (lifecycle transitions), ``sweep``
(per fixed-point sweep: ``iteration``, ``delta``), ``kernel`` (suite
runs: ``name``, ``index``, ``total``, ``converged``), ``stage``
(pipelines: ``index``, ``total``, ``name``), ``shard`` (sharding
backends: ``worker``, ``index``, ``requests``) and ``retry`` (the
dispatcher resubmitting a shard after a worker loss: ``worker``,
``attempt``, ``error``).  The shapes are documented in
``benchmarks/README.md``.  Since ``repro.service/3``, remote shards
stream their workers' live per-kernel/per-sweep events back over the
wire as event frames, so sharded jobs narrate at the same granularity
as inline ones.

The replay buffer is a bounded ring (:data:`DEFAULT_EVENTS_CAPACITY`,
configurable per service): a pathological emitter wraps instead of
growing without bound, evicted events are skipped by late subscribers,
and the eviction count lands in the final envelope's
``context_stats["dropped_events"]``.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import replace as _replace
from typing import Callable, Iterator

from ..errors import JobCancelledError

#: Lifecycle states of a job, in nominal order.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
ERROR = "error"
CANCELLED = "cancelled"

JOB_STATUSES = (QUEUED, RUNNING, DONE, ERROR, CANCELLED)

#: States a job never leaves.
TERMINAL_STATUSES = (DONE, ERROR, CANCELLED)

#: Default capacity of the per-job event replay ring.  Generous enough
#: that ordinary runs (a full-suite job emits tens of events, a long
#: fixed point a few hundred sweeps) never drop; a pathological
#: emitter (a million-sweep analysis on a long-lived serve process)
#: wraps instead of growing without bound.
DEFAULT_EVENTS_CAPACITY = 1024


class JobHandle:
    """One submitted request: identity, lifecycle, events, result.

    Created by :meth:`AnalysisService.submit
    <repro.service.service.AnalysisService.submit>`; user code never
    constructs one.  *subscriber*, when given, is called with every
    progress event as it happens (in the worker thread — keep it
    cheap); :meth:`events` offers the same stream as a replayable
    iterator instead.
    """

    def __init__(
        self,
        job_id: str,
        request,
        backend: str = "inline",
        subscriber: Callable[[dict], None] | None = None,
        events_capacity: int = DEFAULT_EVENTS_CAPACITY,
    ) -> None:
        self.job_id = job_id
        self.request = request
        self.backend = backend
        #: Replay-ring capacity.  The buffer is a bounded ring
        #: (``deque(maxlen=...)``): once more than *events_capacity*
        #: events have been emitted, the oldest are dropped from
        #: replay (live subscribers saw them; ``dropped_events``
        #: counts them, surfaced in the final envelope's
        #: ``context_stats``).
        self.events_capacity = max(1, int(events_capacity))
        self._subscriber = subscriber
        self._cond = threading.Condition()
        self._status = QUEUED
        self._cancel_requested = False
        self._terminal = False
        self._envelope = None
        self._events: deque[dict] = deque(maxlen=self.events_capacity)
        self._events_seen = 0  # total emitted, dropped included
        self._callbacks: list[Callable[["JobHandle"], None]] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def status(self) -> str:
        """Current lifecycle state (one of :data:`JOB_STATUSES`)."""
        with self._cond:
            return self._status

    def done(self) -> bool:
        """Whether the job reached a terminal state."""
        with self._cond:
            return self._terminal

    def cancelled(self) -> bool:
        with self._cond:
            return self._status == CANCELLED

    @property
    def dropped_events(self) -> int:
        """Events evicted from the bounded replay ring (never seen by
        late ``events()`` subscribers; live subscribers saw them)."""
        with self._cond:
            return self._events_seen - len(self._events)

    def events_seen(self) -> int:
        """Total events emitted so far, dropped ones included — the
        absolute-index cursor space of :meth:`indexed_events`."""
        with self._cond:
            return self._events_seen

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def wait(self, timeout: float | None = None) -> bool:
        """Block until terminal (or *timeout*); returns :meth:`done`."""
        with self._cond:
            self._cond.wait_for(lambda: self._terminal, timeout=timeout)
            return self._terminal

    def result(self, timeout: float | None = None):
        """The job's :class:`ResultEnvelope`, blocking until terminal.

        Mirrors ``execute()`` semantics: library-level failures come
        back as ``ok=False`` envelopes, never exceptions.  Raises
        :class:`~repro.errors.JobCancelledError` for cancelled jobs
        (queued-cancelled never ran; running-cancelled had its result
        discarded) and :class:`TimeoutError` when *timeout* expires
        first.
        """
        with self._cond:
            self._cond.wait_for(lambda: self._terminal, timeout=timeout)
            if not self._terminal:
                raise TimeoutError(
                    f"job {self.job_id} still {self._status!r} after "
                    f"{timeout}s"
                )
            if self._status == CANCELLED:
                raise JobCancelledError(f"job {self.job_id} was cancelled")
            return self._envelope

    def cancel(self) -> bool:
        """Request cancellation; returns whether it took effect.

        A *queued* job is cancelled outright — it will never run.  A
        *running* job cannot be interrupted mid-analysis: it runs to
        completion, but its result is discarded and the job lands in
        ``cancelled`` (``result()`` raises).  Jobs already terminal
        return ``False``.
        """
        with self._cond:
            if self._status == QUEUED:
                self._status = CANCELLED
                queued = True
            elif self._status == RUNNING:
                self._cancel_requested = True
                return True
            else:
                return False
        if queued:
            self._emit({"event": "status", "status": CANCELLED})
            self._finalize()
        return True

    # ------------------------------------------------------------------
    # Event stream
    # ------------------------------------------------------------------
    def events(self) -> Iterator[dict]:
        """Iterate the job's progress events, from the beginning.

        Replays events already emitted (minus any evicted from the
        bounded ring — see :attr:`events_capacity`), then blocks for
        new ones until the job is terminal and the stream is drained —
        so iterating a finished job yields its retained history and
        returns.
        """
        for _index, event in self.indexed_events():
            yield event

    def indexed_events(self, after: int = 0) -> Iterator[tuple[int, dict]]:
        """Like :meth:`events`, but yields ``(absolute_index, event)``
        starting at index *after*.

        Absolute indices count every event ever emitted — indices the
        ring has already evicted are skipped, so a consumer resuming
        from a stale cursor lands on the oldest retained event.  The
        ``(index, event)`` pairing is what the wire front-end turns
        into ``seq``-stamped event frames.
        """
        index = max(0, int(after))
        while True:
            with self._cond:
                self._cond.wait_for(
                    lambda: index < self._events_seen or self._terminal
                )
                base = self._events_seen - len(self._events)
                if index < base:
                    index = base  # evicted from the ring: skip ahead
                if index >= self._events_seen:
                    return
                event = self._events[index - base]
                position = index
                index += 1
            yield position, event

    def event_snapshot(self, after: int = 0) -> tuple[list[tuple[int, dict]], int]:
        """The retained events with absolute index ≥ *after*, plus the
        next cursor — a non-blocking view for the wire ``events`` kind."""
        with self._cond:
            base = self._events_seen - len(self._events)
            start = max(int(after), base)
            events = [
                (base + offset, event)
                for offset, event in enumerate(self._events)
                if base + offset >= start
            ]
            return events, self._events_seen

    def add_done_callback(self, callback: Callable[["JobHandle"], None]) -> None:
        """Call *callback(job)* once the job is terminal (immediately if
        it already is).  Callbacks run in the worker thread."""
        with self._cond:
            if not self._terminal:
                self._callbacks.append(callback)
                return
        callback(self)

    # ------------------------------------------------------------------
    # Runner-side transitions (the owning backend drives these)
    # ------------------------------------------------------------------
    def _emit(self, event: dict) -> None:
        event = {"job_id": self.job_id, **event}
        with self._cond:
            self._events.append(event)  # ring: maxlen evicts the oldest
            self._events_seen += 1
            self._cond.notify_all()
        if self._subscriber is not None:
            # Outside the lock: a subscriber may block (tests use this
            # to pin a job in "running") without wedging the stream.
            # Best-effort: a raising subscriber must not wedge the job
            # — an exception during the terminal emit would otherwise
            # skip _finalize and leave result()/wait() blocked forever
            # (e.g. a CLI narrate callback printing to a broken pipe).
            # The recorded events() stream is the reliable channel.
            try:
                self._subscriber(event)
            except Exception:
                self._subscriber = None

    def _mark_running(self) -> bool:
        """queued → running; ``False`` if cancelled first (skip the run)."""
        with self._cond:
            if self._status != QUEUED:
                return False
            self._status = RUNNING
        self._emit({"event": "status", "status": RUNNING})
        return True

    def _finish(self, envelope) -> None:
        """Record the outcome and go terminal (exactly once)."""
        with self._cond:
            if self._cancel_requested or self._status == CANCELLED:
                status = CANCELLED
                envelope = None
            elif envelope is not None and envelope.ok:
                status = DONE
            else:
                status = ERROR
            self._status = status
            self._envelope = envelope
        self._emit({"event": "status", "status": status})
        dropped = self.dropped_events
        if envelope is not None and dropped:
            # Surface the replay-ring eviction count where every other
            # per-job counter lives; absent when nothing was dropped,
            # so bounded-buffer bookkeeping never perturbs the
            # bit-identical-to-inline result comparisons.
            with self._cond:
                self._envelope = _replace(
                    envelope,
                    context_stats={
                        **envelope.context_stats,
                        "dropped_events": dropped,
                    },
                )
        self._finalize()

    def _finalize(self) -> None:
        with self._cond:
            self._terminal = True
            callbacks, self._callbacks = self._callbacks, []
            self._cond.notify_all()
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<JobHandle {self.job_id} {self.status()} "
            f"kind={getattr(self.request, 'kind', '?')} "
            f"backend={self.backend}>"
        )
