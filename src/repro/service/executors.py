"""Request executors: one function per request kind.

Each executor takes ``(service, request, progress)``, runs the work
through the service's shared
:class:`~repro.core.context.AnalysisContext` for the request's
``(machine, chip)`` pair, and returns ``(payload, source)`` — the
JSON-plain result dict that lands in the
:class:`~repro.service.envelope.ResultEnvelope` and the stats source:
the serving context (snapshotted under its lock), a pre-summed stats
dict (sharded fan-out paths), or ``None`` for context-free kinds.
*progress*, when set, receives the run's per-sweep / per-kernel /
per-stage events — what feeds a job handle's event stream.

Executors hold the context's lock for the whole context-touching
section: the shared model, power models and transfer caches mutate on
cache misses, and the lock is what makes concurrent ``submit()`` safe
while keeping results bit-identical to a serial run (asserted by
``tests/service/test_service.py``).

The ``rendered`` entry of every payload is the exact human-readable
report the pre-1.2 CLI printed — the CLI is now a thin client that
prints envelopes.
"""

from __future__ import annotations

from io import StringIO

from ..core.critical import rank_critical_variables
from ..core.report import format_result
from ..core.rules import evaluate_rules
from ..core.suite_runner import SuiteReport, run_suite
from ..errors import ReproError
from ..regalloc.policies import policy_by_name
from ..sim import compare_to_emulation
from ..thermal import render_side_by_side, summarize
from ..util import format_table
from ..workloads import full_suite
from .requests import (
    AnalysisRequest,
    CompileRequest,
    EmulateRequest,
    Fig1Request,
    MetricsRequest,
    PipelineRequest,
    Request,
    ScheduleRequest,
    SuiteRequest,
    WorkloadListRequest,
)


def _peak_payload(result, ambient: float) -> dict:
    """Convergence + thermal headline numbers shared by analyze kinds."""
    peak = result.peak_state()
    return {
        "converged": result.converged,
        "iterations": result.iterations,
        "engine": result.engine,
        "sweep": result.sweep,
        "final_delta_kelvin": result.final_delta,
        "analysis_seconds": result.wall_time_seconds,
        "peak_kelvin": peak.peak,
        "peak_delta_kelvin": peak.peak - ambient,
        "gradient_kelvin": peak.max_gradient(),
    }


def execute_analyze(service, request: AnalysisRequest, progress=None):
    machine = service.machine(request.machine)
    function, _args, _memory = service.resolve_input(request)
    with service.pinned_context(request.machine, chip=request.chip) as context, \
            context.lock:
        allocated = service.allocation(function, machine, request.policy)
        result = context.analyze(
            allocated,
            progress=progress,
            delta=request.delta,
            merge=request.merge,
            engine=request.engine,
            sweep=request.sweep,
            max_iterations=request.max_iterations,
            include_leakage=request.include_leakage,
            warm_start=request.warm_start,
        )
        payload = {
            "function": allocated.name,
            "instructions": allocated.instruction_count(),
            **_peak_payload(result, context.model.params.ambient),
        }
        if request.chip:
            status = "converged" if result.converged else "DID NOT CONVERGE"
            payload["rendered"] = (
                f"thermal data flow analysis of @{allocated.name} "
                f"(chip model): {status} after {result.iterations} "
                f"iteration(s) [{result.engine} engine] — "
                f"peak dT {payload['peak_delta_kelvin']:.2f}K, "
                f"gradient {payload['gradient_kelvin']:.2f}K"
            )
        else:
            criticals = rank_critical_variables(
                result, context.exact_placement, top_k=request.top
            )
            plan = evaluate_rules(result, context.exact_placement, machine)
            payload["critical_variables"] = [str(c.reg) for c in criticals]
            payload["rendered"] = format_result(
                result, criticals=criticals, plan=plan,
                show_map=request.show_map,
            )
    return payload, context


def execute_compile(service, request: CompileRequest, progress=None):
    from ..opt.pipeline import ThermalAwareCompiler

    machine = service.machine(request.machine)
    function, _args, _memory = service.resolve_input(request)
    with service.pinned_context(request.machine) as context, context.lock:
        compiler = ThermalAwareCompiler(
            machine,
            policy=policy_by_name(request.policy),
            config=request.config(),
            enable_nops=request.enable_nops,
            context=context,
        )
        result = compiler.compile(function)
    summary = result.summary()
    out = StringIO()
    out.write(str(result.plan))
    out.write("\n\n")
    for report in result.pass_reports:
        out.write(f"  {report}\n")
    out.write("\n")
    out.write(format_table(
        ["metric", "before", "after"],
        [
            ("instructions", summary["instructions_before"],
             summary["instructions_after"]),
            ("predicted peak (K)", summary.get("peak_before", float("nan")),
             summary.get("peak_after", float("nan"))),
            ("predicted gradient (K)", summary.get("gradient_before", float("nan")),
             summary.get("gradient_after", float("nan"))),
        ],
    ))
    payload = {
        "function": result.original.name,
        "summary": summary,
        "pass_reports": [str(report) for report in result.pass_reports],
        "plan": str(result.plan),
        "rendered": out.getvalue(),
    }
    return payload, context


def execute_emulate(service, request: EmulateRequest, progress=None):
    machine = service.machine(request.machine)
    function, run_args, memory = service.resolve_input(request)
    with service.pinned_context(request.machine) as context, context.lock:
        allocated = service.allocation(function, machine, request.policy)
        emulator = service.emulator(request.machine)
        em = emulator.run(allocated, args=run_args, memory=dict(memory))
        s = summarize(em.steady_state)
        out = StringIO()
        out.write(f"return value: {em.execution.return_value}\n")
        out.write(f"cycles:       {em.cycles}\n")
        out.write(
            f"steady map:   peak={s.peak:.2f}K spread={s.spread:.2f}K "
            f"gradient={s.gradient:.2f}K sigma={s.std:.3f}K\n"
        )
        payload = {
            "return_value": em.execution.return_value,
            "cycles": em.cycles,
            "peak_kelvin": s.peak,
            "spread_kelvin": s.spread,
            "gradient_kelvin": s.gradient,
            "sigma_kelvin": s.std,
            "emulated_seconds": em.wall_time_seconds,
        }
        if request.compare_analysis:
            analysis = context.analyze(
                allocated,
                delta=request.delta,
                merge=request.merge,
                engine=request.engine,
            )
            report = compare_to_emulation(
                analysis.peak_state(), em,
                predicted_seconds=analysis.wall_time_seconds,
            )
            payload["analysis"] = {
                "delta": request.delta,
                "merge": request.merge,
                "engine": analysis.engine,
                "converged": analysis.converged,
                "pearson_r": report.pearson_r,
                "rmse_kelvin": report.rmse_kelvin,
                "peak_error_kelvin": report.peak_error_kelvin,
                "hottest_register_match": report.hottest_register_match,
                "speedup": report.speedup,
            }
            out.write(
                f"analysis:     r={report.pearson_r:.3f} "
                f"rmse={report.rmse_kelvin:.3f}K "
                f"hottest="
                f"{'ok' if report.hottest_register_match else 'missed'} "
                f"speedup={report.speedup:.1f}x\n"
            )
        payload["rendered"] = out.getvalue()
    return payload, context


def execute_fig1(service, request: Fig1Request, progress=None):
    machine = service.machine(request.machine)
    function, run_args, memory = service.resolve_input(request)
    from ..regalloc.linearscan import allocate_linear_scan

    with service.pinned_context(request.machine) as context, context.lock:
        emulator = service.emulator(request.machine)
        ambient = emulator.model.params.ambient
        states, titles, rows, policies = [], [], [], []
        for name in ("first-free", "random", "chessboard"):
            allocation = allocate_linear_scan(
                function, machine, policy_by_name(name, seed=1)
            )
            state = emulator.steady_map(
                allocation.function, args=run_args, memory=dict(memory)
            )
            states.append(state)
            titles.append(name)
            s = summarize(state)
            rows.append((name, s.peak - ambient, s.gradient, s.std))
            policies.append({
                "policy": name,
                "peak_delta_kelvin": s.peak - ambient,
                "gradient_kelvin": s.gradient,
                "sigma_kelvin": s.std,
            })
        out = StringIO()
        out.write(render_side_by_side(states, titles=titles))
        out.write("\n\n")
        out.write(format_table(
            ["policy", "peak dT (K)", "gradient (K)", "sigma (K)"], rows
        ))
    return {"policies": policies, "rendered": out.getvalue()}, context


def render_suite_report(report: SuiteReport) -> str:
    """The suite table + totals exactly as the CLI prints them."""
    rows = [
        (
            item.name,
            item.instructions,
            item.engine + (f"/{item.sweep}" if item.sweep else ""),
            "yes" if item.converged else "NO",
            item.iterations,
            item.wall_time_seconds * 1e3,
            item.peak_delta_kelvin,
            item.gradient_kelvin,
        )
        for item in report.items
    ]
    out = StringIO()
    out.write(format_table(
        ["kernel", "insts", "engine", "conv", "sweeps", "time (ms)",
         "peak dT (K)", "gradient (K)"],
        rows,
    ))
    totals = report.totals()
    out.write("\n\n")
    out.write(
        f"{int(totals['kernels'])} kernels, "
        f"{int(totals['instructions'])} instructions on "
        f"{report.machine} ({report.model} model), "
        f"{report.processes} process(es): "
        f"analysis {totals['analysis_seconds'] * 1e3:.1f} ms, "
        f"wall {totals['wall_time_seconds'] * 1e3:.1f} ms\n"
    )
    if report.context_stats:
        stats = report.context_stats
        out.write(
            f"shared context: {stats['analyses']} analyses, "
            f"{stats['block_compiles']} block compiles, "
            f"{stats['block_hits']} cache hits\n"
        )
    return out.getvalue()


def execute_suite(service, request: SuiteRequest, progress=None):
    names = list(request.workloads) if request.workloads else None
    common = dict(
        names=names,
        machine_name=request.machine,
        chip=request.chip,
        delta=request.delta,
        merge=request.merge,
        engine=request.engine,
        sweep=request.sweep,
        policy=request.policy,
        quick=request.quick,
        include_pressure=request.include_pressure,
        random_count=request.random_count,
        ir_texts=(
            list(request.ir_texts) if request.ir_texts else None
        ),
        progress=progress,
    )
    if request.processes > 1:
        # Fan out through the service's persistent ProcessBackend: the
        # kernels shard round-robin across worker processes (each with
        # its own warm service) and the per-worker reports and context
        # stats merge back summed.  Generated scenarios (pressure,
        # random) travel as serialized IR text, so every suite shards.
        sharded = service.process_backend(request.processes) \
            .run_suite_sharded(request, progress)
        if sharded is not None:
            return sharded
        report = run_suite(processes=request.processes, **common)
        stats_source: object = dict(report.context_stats)
    else:
        with service.pinned_context(
            request.machine, chip=request.chip
        ) as context, context.lock:
            report = run_suite(context=context, **common)
        stats_source = context
    payload = {
        "converged": report.all_converged,
        "report": report.to_dict(),
        "rendered": render_suite_report(report),
    }
    return payload, stats_source


def render_pipeline_report(report) -> str:
    """The pipeline table + totals exactly as the CLI prints them."""
    ambient_rel = "dT (K)"
    rows = [
        (
            f"{k}",
            item.name,
            item.policy,
            item.instructions,
            item.entry_peak_kelvin,
            item.exit_peak_kelvin,
            item.exit_delta_kelvin,
            "-" if item.peak_kelvin is None else f"{item.peak_kelvin:.2f}",
        )
        for k, item in enumerate(report.stages)
    ]
    out = StringIO()
    out.write(format_table(
        ["stage", "kernel", "policy", "insts", "entry (K)", "exit (K)",
         f"exit {ambient_rel}", "peak (K)"],
        rows,
    ))
    totals = report.totals()
    out.write("\n\n")
    out.write(
        f"{int(totals['stages'])} stage(s), "
        f"{int(totals['distinct_kernels'])} distinct kernel(s), "
        f"{int(totals['instructions'])} instructions on "
        f"{report.machine} ({report.model} model) "
        f"[{report.strategy} strategy]: "
        f"{'converged' if report.converged else 'DID NOT CONVERGE'} "
        f"after {report.iterations} sweep(s), "
        f"exit dT {totals['exit_delta_kelvin']:.2f}K, "
        f"wall {totals['wall_time_seconds'] * 1e3:.1f} ms\n"
    )
    if report.context_stats:
        stats = report.context_stats
        out.write(
            f"shared context: {stats.get('block_compiles', 0)} block "
            f"compiles, {stats.get('block_hits', 0)} block hits, "
            f"{stats.get('pipeline_compiles', 0)} pipeline compiles, "
            f"{stats.get('pipeline_hits', 0)} pipeline hits, "
            f"{stats.get('pipeline_sweep_patches', 0)} pipeline patches, "
            f"{stats.get('rank_updates', 0)} rank updates, "
            f"{stats.get('summary_compiles', 0)} summary solves\n"
        )
    return out.getvalue()


def execute_pipeline(service, request: PipelineRequest, progress=None):
    from ..core.pipeline_runner import run_pipeline
    from ..workloads.kernels import Workload

    if request.stages is not None and request.ir_texts is not None:
        raise ReproError(
            "ambiguous pipeline input: provide stages (workload names) "
            "or ir_texts, not both"
        )
    if request.stages is None and request.ir_texts is None:
        raise ReproError(
            "a pipeline needs stages (workload names) or ir_texts"
        )
    specs = request.stages if request.stages is not None else request.ir_texts
    if not specs:
        raise ReproError("a pipeline needs at least one stage")

    machine = service.machine(request.machine)
    if request.stages is not None:
        # Workload objects come from the service cache, so repeated
        # requests (and repeated stages) share identity.
        stages = [service.workload(name) for name in request.stages]
    else:
        stages = []
        for text in request.ir_texts:
            function = service.parse_ir(text)
            stages.append(Workload(
                name=function.name,
                description="pipeline stage from ir_text",
                function=function,
                expected_return=None,
            ))

    with service.pinned_context(
        request.machine, chip=request.chip
    ) as context, context.lock:
        entry_state = None
        if request.entry_temperatures is not None:
            # A coordinator chaining pipeline chunks starts this chunk
            # exactly where the previous one (possibly on another
            # worker) ended.
            import numpy as np

            from ..thermal.state import ThermalState

            grid = context.model.grid
            if len(request.entry_temperatures) != grid.num_nodes:
                raise ReproError(
                    f"entry_temperatures has "
                    f"{len(request.entry_temperatures)} values; the "
                    f"{request.machine} thermal grid has {grid.num_nodes} "
                    "nodes"
                )
            entry_state = ThermalState(
                grid, np.asarray(request.entry_temperatures, dtype=float)
            )
        report = run_pipeline(
            stages,
            context=context,
            chip=request.chip,
            strategy=request.strategy,
            delta=request.delta,
            merge=request.merge,
            engine=request.engine,
            sweep=request.sweep,
            policy=request.policy,
            policies=list(request.policies) if request.policies else None,
            max_iterations=request.max_iterations,
            warm_start=request.warm_start,
            entry_state=entry_state,
            progress=progress,
            include_exit_state=request.return_exit_state,
            allocator=lambda function, policy: service.allocation(
                function, machine, policy
            ),
        )
    payload = {
        "converged": report.converged,
        "report": report.to_dict(),
        "rendered": render_pipeline_report(report),
    }
    return payload, context


def render_schedule_report(report) -> str:
    """The schedule table + search totals the CLI prints."""
    rows = [
        (
            slot,
            name,
            (report.best_policies[slot]
             if report.best_policies else report.policy),
            stage_index,
        )
        for slot, (stage_index, name) in enumerate(
            zip(report.best_order, report.best_names)
        )
    ]
    out = StringIO()
    out.write(format_table(
        ["slot", "kernel", "policy", "input stage"], rows
    ))
    out.write("\n\n")
    identity = (
        f"{report.identity_score:.4f}"
        if report.identity_score is not None else "-"
    )
    improvement = report.improvement_kelvin
    out.write(
        f"schedule search over {len(report.stages)} stage(s) on "
        f"{report.machine} ({report.model} model) "
        f"[{report.strategy} strategy, {report.objective} objective]: "
        f"best {report.best_score:.4f} vs identity {identity}"
        + (f" (improved {improvement:.4f})" if improvement else "")
        + "\n"
    )
    out.write(
        f"space {report.space_size} candidate(s), evaluated "
        f"{report.candidates_evaluated} ({report.eval_memo_hits} memo "
        f"hit(s), budget {report.budget}"
        f"{', exhausted' if report.exhausted else ''}), "
        f"wall {report.wall_time_seconds * 1e3:.1f} ms\n"
    )
    if report.evidence is not None:
        converged = report.evidence.get("converged")
        out.write(
            "evidence: stacked pipeline analysis of the argmin "
            f"({'converged' if converged else 'DID NOT CONVERGE'}, "
            f"{report.evidence.get('iterations', 0)} sweep(s))\n"
        )
    stats = report.context_stats
    if stats:
        out.write(
            f"shared context: {stats.get('summary_compiles', 0)} summary "
            f"solves, {stats.get('summary_hits', 0)} summary hits\n"
        )
    return out.getvalue()


def execute_schedule(service, request: ScheduleRequest, progress=None):
    from ..sched import optimize_schedule
    from ..workloads.generators import random_pipeline
    from ..workloads.kernels import Workload

    sources = [
        name
        for name, present in (
            ("stages", request.stages is not None),
            ("ir_texts", request.ir_texts is not None),
            ("random_stages", request.random_stages > 0),
        )
        if present
    ]
    if len(sources) != 1:
        raise ReproError(
            "a schedule search needs exactly one input source out of "
            "stages (workload names), ir_texts, or random_stages > 0; "
            f"got {', '.join(sources) or 'none'}"
        )

    machine = service.machine(request.machine)
    if request.stages is not None:
        if not request.stages:
            raise ReproError("a schedule needs at least one stage")
        # Workload objects come from the service cache: repeated stages
        # share identity, which is what makes them interchangeable in
        # the candidate space and cache-coherent in the context.
        stages = [service.workload(name) for name in request.stages]
    elif request.ir_texts is not None:
        if not request.ir_texts:
            raise ReproError("a schedule needs at least one stage")
        texts: dict[str, Workload] = {}
        stages = []
        for text in request.ir_texts:
            # Equal IR texts resolve to one Workload object so repeated
            # generated stages stay interchangeable across backends.
            workload = texts.get(text)
            if workload is None:
                function = service.parse_ir(text)
                workload = Workload(
                    name=function.name,
                    description="schedule stage from ir_text",
                    function=function,
                    expected_return=None,
                )
                texts[text] = workload
            stages.append(workload)
    else:
        # The seeded generator path: identical (request, seed) pairs
        # build identical stage multisets on every backend.
        stages = random_pipeline(
            seed=request.seed, length=request.random_stages
        )

    with service.pinned_context(
        request.machine, chip=request.chip
    ) as context, context.lock:
        report = optimize_schedule(
            stages,
            context=context,
            chip=request.chip,
            strategy=request.strategy,
            objective=request.objective,
            budget=request.budget,
            seed=request.seed,
            delta=request.delta,
            merge=request.merge,
            sweep=request.sweep,
            policy=request.policy,
            placements=(
                list(request.placements) if request.placements else None
            ),
            dwell_threshold=request.dwell_threshold,
            candidates=request.candidates,
            batch=request.batch,
            progress=progress,
            allocator=lambda function, policy: service.allocation(
                function, machine, policy
            ),
        )
    payload = {
        "converged": bool(
            report.evidence and report.evidence.get("converged")
        ),
        "report": report.to_dict(),
        "rendered": render_schedule_report(report),
    }
    return payload, context


def execute_workloads(service, request: WorkloadListRequest, progress=None):
    rows = [
        (wl.name, wl.function.instruction_count(), wl.description)
        for wl in full_suite()
    ]
    payload = {
        "workloads": [
            {"name": name, "instructions": insts, "description": desc}
            for name, insts, desc in rows
        ],
        "rendered": format_table(["name", "insts", "description"], rows),
    }
    return payload, None


def execute_metrics(service, request: MetricsRequest, progress=None):
    """Context-free: snapshot (and optionally flip/reset) the process
    metrics registry, plus the service-level counters."""
    registry = service.metrics
    if request.enable is not None:
        registry.set_enabled(request.enable)
    snapshot = registry.snapshot()
    if request.reset:
        registry.reset()
    payload = {
        "enabled": registry.enabled,
        "metrics": snapshot,
        "service": service.stats(),
        "rendered": registry.render(snapshot),
    }
    return payload, None


#: Request class -> executor.
EXECUTORS = {
    AnalysisRequest: execute_analyze,
    CompileRequest: execute_compile,
    EmulateRequest: execute_emulate,
    Fig1Request: execute_fig1,
    SuiteRequest: execute_suite,
    PipelineRequest: execute_pipeline,
    ScheduleRequest: execute_schedule,
    WorkloadListRequest: execute_workloads,
    MetricsRequest: execute_metrics,
}


def executor_for(request: Request):
    executor = EXECUTORS.get(type(request))
    if executor is None:
        from ..errors import ProtocolError

        raise ProtocolError(
            f"no executor for request type {type(request).__name__}"
        )
    return executor
