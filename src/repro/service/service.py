"""The analysis service: one shared runtime behind every entry point.

The paper's pitch is thermal prediction as a *compiler service* — cheap
enough to consult at every decision point instead of the
emulate-and-recompile loop.  :class:`AnalysisService` is that service
boundary: it owns one :class:`~repro.core.context.AnalysisContext` per
``(machine, chip)`` pair, executes any
:class:`~repro.service.requests.Request` against the right context, and
returns a uniform :class:`~repro.service.envelope.ResultEnvelope`.

Within one process every client — the six CLI subcommands, the
compatibility shims ``repro.analyze`` / ``repro.run_suite``, the
line-delimited JSON front-end (:mod:`repro.service.frontend`), direct
library use — shares the same thermal models, factorizations, step
operators and compiled block transfers.  The envelope's
``context_stats`` make the sharing observable per response.

Concurrency — the v2 job protocol: :meth:`submit` schedules the request
on the service pool and returns a
:class:`~repro.service.jobs.JobHandle` — stable ``job_id``, live
``status()`` (``queued/running/done/error/cancelled``), ``cancel()``,
``result()`` and a replayable ``events()`` stream of progress events
(per-sweep δ for analyses, per-kernel/per-stage completion for suites
and pipelines, per-shard completion for sharding backends).  Execution
goes through a pluggable
:class:`~repro.service.backends.ExecutionBackend`: the default
:class:`~repro.service.backends.InlineBackend` keeps today's semantics
(in-process against the shared contexts; every executor holds its
context's lock across the context-touching section, so results are
identical to a serial run — a concurrent-agreement test asserts it),
while :class:`~repro.service.backends.ProcessBackend` and
:class:`~repro.service.backends.RemoteBackend` shard work across local
worker processes or ``python -m repro worker`` sockets.

Service-level caches (workloads by name, parsed IR by text, allocations
by ``(function, machine, policy)``) give repeated requests *identical
input objects*, which is what lets the identity-keyed transfer caches
serve block-level hits across requests.
"""

from __future__ import annotations

import itertools
import threading
import time
import weakref
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from typing import Any

from ..arch import MACHINE_PRESETS, MachineDescription
from ..core.context import AnalysisContext
from ..errors import ReproError
from ..ir.function import Function
from ..obs.metrics import MetricsRegistry, default_registry, obs_event
from ..workloads import load
from .backends import ExecutionBackend, InlineBackend, ProcessBackend
from .envelope import ResultEnvelope
from .executors import executor_for
from .jobs import DEFAULT_EVENTS_CAPACITY, JobHandle
from .requests import Request

#: Exceptions `execute` converts into error envelopes: everything the
#: library deliberately raises (`ReproError` covers the whole hierarchy,
#: `UnknownWorkloadError` included; `run_suite` raises `ValueError` for
#: invalid combinations), plus input-file problems.  Genuine bugs —
#: `KeyError`, `AttributeError`, `TypeError` — still propagate.
_REQUEST_ERRORS = (ReproError, FileNotFoundError, IsADirectoryError,
                   PermissionError, ValueError)


#: FIFO bounds on the service-level identity caches, so a long-lived
#: serve process under unbounded distinct-input churn (many different
#: ir_text programs, a machine-geometry sweep) holds steady-state
#: memory instead of growing per distinct input.  Eviction only costs
#: future cache hits — each cached object is self-contained.
_MAX_CONTEXTS = 16
_MAX_FUNCTIONS = 256
_MAX_ALLOCATIONS = 512
_MAX_MACHINES = 32
_MAX_WORKLOADS = 64
_MAX_EMULATORS = 8
#: Terminal jobs retained for `job(job_id)` lookup; older ones evict
#: FIFO (live jobs are never evicted — their handles are the API).
_MAX_JOBS = 512


def _evict_oldest(cache: dict, cap: int) -> None:
    """Drop insertion-order-oldest entries until *cache* fits *cap*."""
    while len(cache) > cap:
        cache.pop(next(iter(cache)))


class AnalysisService:
    """Declarative request execution over shared analysis contexts.

    Parameters
    ----------
    max_workers:
        Thread-pool width for :meth:`submit` (the pool is created
        lazily; plain :meth:`execute` never starts threads).  Queued
        jobs beyond the width wait — and can still be cancelled before
        they ever run.
    backend:
        Default :class:`~repro.service.backends.ExecutionBackend` for
        submitted jobs (per-call ``submit(backend=…)`` overrides it).
        ``None`` means the inline backend: in-process execution against
        the shared contexts, exactly the v1 semantics.

    Every identity cache (contexts, machines, workloads, parsed IR,
    allocations, emulators) is FIFO-bounded (:data:`_MAX_CONTEXTS`
    etc.): unbounded distinct-input churn evicts oldest entries rather
    than growing without limit.  Contexts with in-flight requests are
    pinned (:meth:`pinned_context`) and never evicted mid-execution.
    Within a context, cache growth across many analyses of *distinct*
    functions is the concern of
    :meth:`AnalysisContext.invalidate <repro.core.context.AnalysisContext.invalidate>`.
    """

    def __init__(
        self,
        max_workers: int = 4,
        backend: ExecutionBackend | None = None,
        events_capacity: int = DEFAULT_EVENTS_CAPACITY,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.max_workers = max_workers
        #: The registry this service records into (default: the
        #: process-wide one, disabled until ``enable_metrics()``).
        #: While enabled, every envelope carries a ``metrics`` snapshot
        #: and jobs emit ``obs`` progress events; while disabled the
        #: instrumentation is a boolean check and output is
        #: bit-identical to an un-instrumented service.
        self.metrics = metrics if metrics is not None else default_registry()
        #: Per-job event replay-ring capacity (see
        #: :data:`repro.service.jobs.DEFAULT_EVENTS_CAPACITY`): events
        #: beyond it evict oldest-first from replay, counted in the
        #: final envelope's ``context_stats["dropped_events"]``.
        self.events_capacity = events_capacity
        self.backend = backend or InlineBackend()
        # Only a backend this service built is torn down with it; a
        # caller-provided one may be shared across services.
        self._owns_backend = backend is None
        self._contexts: dict[tuple[MachineDescription, bool], AnalysisContext] = {}
        self._machines: dict[str, MachineDescription] = {}
        self._workloads: dict[str, Any] = {}
        self._functions: dict[str, Function] = {}
        self._allocations: dict[tuple[Function, MachineDescription, str], Function] = {}
        self._emulators: dict[str, Any] = {}
        # In-flight lease counts per context (identity-keyed; the dict
        # holds a strong ref while leased).  A pinned context is never
        # evicted — eviction of a context another thread is executing
        # against would let a same-key request build a second context
        # running concurrently with the first, voiding the per-context
        # lock's concurrent == serial guarantee.
        self._pinned: dict[AnalysisContext, int] = {}
        self._pool: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()  # guards the service-level dicts
        self._requests_served = 0
        # Weak-valued: a terminal job whose handle nobody holds any
        # more (the serve/worker loops drop theirs after writing the
        # envelope) is garbage-collected out of the registry instead of
        # pinning its full envelope and event history; callers that
        # keep their handles can still look them up by id.
        self._jobs: weakref.WeakValueDictionary[str, JobHandle] = \
            weakref.WeakValueDictionary()
        self._job_ids = itertools.count(1)
        # Lazily-built process backends, keyed by pool width; their
        # worker pools persist across requests so per-process contexts
        # stay warm (closed with the service).
        self._process_backends: dict[int, ProcessBackend] = {}

    # ------------------------------------------------------------------
    # Shared components
    # ------------------------------------------------------------------
    def machine(self, name: str) -> MachineDescription:
        """The machine preset *name* (one instance per service)."""
        with self._lock:
            cached = self._machines.get(name)
            if cached is None:
                factory = MACHINE_PRESETS.get(name)
                if factory is None:
                    raise ReproError(
                        f"unknown machine {name!r}; "
                        f"available: {', '.join(sorted(MACHINE_PRESETS))}"
                    )
                cached = factory()
                self._machines[name] = cached
                _evict_oldest(self._machines, _MAX_MACHINES)
            return cached

    def _context_locked(
        self, key: tuple[MachineDescription, bool]
    ) -> AnalysisContext:
        """Get-or-create the context for *key*; caller holds ``_lock``."""
        context = self._contexts.get(key)
        if context is None:
            self.metrics.inc("service.cache.contexts.misses")
            machine, chip = key
            context = (
                AnalysisContext.for_chip(machine)
                if chip
                else AnalysisContext(machine)
            )
            self._contexts[key] = context
            self._evict_contexts_locked()
        else:
            self.metrics.inc("service.cache.contexts.hits")
        return context

    def _evict_contexts_locked(self) -> None:
        """FIFO-evict unpinned contexts down to the cap.

        Pinned (in-flight) contexts are skipped — the map may
        transiently exceed the cap while many distinct keys execute at
        once; lease release retries the eviction.
        """
        if len(self._contexts) <= _MAX_CONTEXTS:
            return
        for key, context in list(self._contexts.items()):
            if len(self._contexts) <= _MAX_CONTEXTS:
                break
            if self._pinned.get(context, 0) == 0:
                del self._contexts[key]

    def context_for(
        self, machine: str | MachineDescription, chip: bool = False
    ) -> AnalysisContext:
        """The shared context serving *(machine, chip)*, created once.

        *machine* may be a preset name or a full
        :class:`~repro.arch.MachineDescription`; descriptions hash by
        value, so ``"rf64"`` and ``rf64()`` resolve to the same context.

        The returned context is *not* pinned against eviction; request
        executors go through :meth:`pinned_context` instead, which
        guarantees the context stays the one serving its key for the
        duration of the lease.
        """
        if isinstance(machine, str):
            machine = self.machine(machine)
        with self._lock:
            return self._context_locked((machine, chip))

    @contextmanager
    def pinned_context(
        self, machine: str | MachineDescription, chip: bool = False
    ):
        """Lease the *(machine, chip)* context, pinned against eviction.

        While any lease is held, cache-pressure eviction skips this
        context, so every concurrent same-key request resolves to the
        *same* object and the per-context lock keeps concurrent
        execution equivalent to serial.  Lookup and pin are one atomic
        step (a get-then-pin window would let an eviction slip
        between).
        """
        if isinstance(machine, str):
            machine = self.machine(machine)
        with self._lock:
            context = self._context_locked((machine, chip))
            self._pinned[context] = self._pinned.get(context, 0) + 1
        try:
            yield context
        finally:
            with self._lock:
                remaining = self._pinned[context] - 1
                if remaining:
                    self._pinned[context] = remaining
                else:
                    del self._pinned[context]
                    # Complete any eviction deferred while pinned.
                    self._evict_contexts_locked()

    def workload(self, name: str):
        """The built-in workload *name*, loaded once per service.

        Serving the *same* workload object to every request is what
        makes the identity-keyed transfer caches hit across requests.
        """
        with self._lock:
            cached = self._workloads.get(name)
            if cached is None:
                self.metrics.inc("service.cache.workloads.misses")
                cached = load(name)
                self._workloads[name] = cached
                _evict_oldest(self._workloads, _MAX_WORKLOADS)
            else:
                self.metrics.inc("service.cache.workloads.hits")
            return cached

    def parse_ir(self, text: str) -> Function:
        """Parse IR *text*, cached by content."""
        from ..ir import parse_function

        with self._lock:
            cached = self._functions.get(text)
            if cached is None:
                self.metrics.inc("service.cache.ir.misses")
                cached = parse_function(text)
                self._functions[text] = cached
                _evict_oldest(self._functions, _MAX_FUNCTIONS)
            else:
                self.metrics.inc("service.cache.ir.hits")
            return cached

    def resolve_input(self, request) -> tuple[Function, list[int], dict[int, int]]:
        """Resolve a request's input source to (function, args, memory)."""
        sources = request.input_sources()
        if len(sources) > 1:
            raise ReproError(
                f"ambiguous input: {', '.join(sources)} are all set — "
                "provide exactly one of workload/ir_text/ir_path/function"
            )
        if request.workload is not None:
            wl = self.workload(request.workload)
            return wl.function, list(wl.args), dict(wl.memory)
        if request.function is not None:
            return request.function, [], {}
        if request.ir_text is not None:
            return self.parse_ir(request.ir_text), [], {}
        if request.ir_path is not None:
            from pathlib import Path

            return self.parse_ir(Path(request.ir_path).read_text()), [], {}
        raise ReproError("provide an IR file or --workload NAME")

    def allocation(
        self, function: Function, machine: MachineDescription, policy: str
    ) -> Function:
        """Register-allocate *function*, cached per (function, machine, policy).

        Repeated requests against the same input get the identical
        allocated function object — and with it, all-hit block
        transfers from the shared context.
        """
        from ..regalloc.linearscan import allocate_linear_scan
        from ..regalloc.policies import policy_by_name

        key = (function, machine, policy)
        with self._lock:
            cached = self._allocations.get(key)
        if cached is not None:
            self.metrics.inc("service.cache.allocations.hits")
            return cached
        self.metrics.inc("service.cache.allocations.misses")
        allocated = allocate_linear_scan(
            function, machine, policy_by_name(policy)
        ).function
        with self._lock:
            allocated = self._allocations.setdefault(key, allocated)
            _evict_oldest(self._allocations, _MAX_ALLOCATIONS)
            return allocated

    def emulator(self, machine_name: str):
        """The shared emulator for *machine_name* (RF model).

        Built over the RF context's thermal model, so emulation and
        analysis share one operator cache.
        """
        from ..sim import ThermalEmulator

        with self._lock:
            cached = self._emulators.get(machine_name)
        if cached is not None:
            return cached
        context = self.context_for(machine_name)
        emulator = ThermalEmulator(self.machine(machine_name), model=context.model)
        with self._lock:
            emulator = self._emulators.setdefault(machine_name, emulator)
            _evict_oldest(self._emulators, _MAX_EMULATORS)
            return emulator

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, request: Request, progress=None) -> ResultEnvelope:
        """Run *request* to completion (inline) and return its envelope.

        Library-level failures (unknown workload, bad IR, missing file,
        invalid configuration) become ``ok=False`` envelopes carrying
        ``{"type", "message"}`` — a service must answer, not die.
        *progress*, when given, receives the run's progress events
        (per-sweep / per-kernel / per-stage dicts) as they happen.
        """
        started = time.perf_counter()
        try:
            executor = executor_for(request)
            payload, source = executor(self, request, progress)
            if source is None:
                stats: dict[str, int] = {}
            elif isinstance(source, dict):
                # Sharded paths hand back pre-summed per-worker stats.
                stats = source
            else:
                with source.lock:
                    stats = dict(source.stats)
            envelope = ResultEnvelope(
                request=request,
                ok=True,
                result=payload,
                wall_time_seconds=time.perf_counter() - started,
                context_stats=stats,
            )
        except _REQUEST_ERRORS as exc:
            envelope = ResultEnvelope(
                request=request,
                ok=False,
                error={"type": type(exc).__name__, "message": str(exc)},
                wall_time_seconds=time.perf_counter() - started,
            )
        with self._lock:
            self._requests_served += 1
        if self.metrics.enabled:
            envelope = self._observe(envelope, request, progress)
        return envelope

    def _observe(self, envelope: ResultEnvelope, request: Request,
                 progress) -> ResultEnvelope:
        """Record the request into the registry, attach the snapshot to
        the envelope, and narrate it on the events stream (enabled
        registries only — the caller checks)."""
        from dataclasses import replace as _replace

        registry = self.metrics
        registry.inc(f"service.requests.{request.kind}")
        if not envelope.ok:
            registry.inc("service.errors")
        registry.observe("service.request_seconds",
                         envelope.wall_time_seconds)
        event = obs_event(registry)
        if progress is not None:
            progress(event)
        return _replace(envelope, metrics=event["metrics"])

    def submit(
        self,
        request: Request,
        progress=None,
        backend: ExecutionBackend | None = None,
    ) -> JobHandle:
        """Schedule *request* on the service pool; returns its job handle.

        The handle exposes the v2 async protocol: ``status()`` through
        ``queued/running/done/error/cancelled``, ``result()`` for the
        :class:`ResultEnvelope` (library-level failures resolve to
        error envelopes, never exceptions — see :meth:`execute`),
        ``cancel()`` and a replayable ``events()`` stream.  *progress*
        additionally receives every event live, in the worker thread.
        *backend* overrides the service default for this job.
        """
        backend = backend or self.backend
        with self._lock:
            job = JobHandle(
                f"job-{next(self._job_ids)}",
                request,
                backend=backend.name,
                subscriber=progress,
                events_capacity=self.events_capacity,
            )
            self._jobs[job.job_id] = job
            self._evict_jobs_locked()
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="repro-service",
                )
            pool = self._pool
        pool.submit(self._run_job, job, backend)
        return job

    def _run_job(self, job: JobHandle, backend: ExecutionBackend) -> None:
        """Worker-thread body: run one job through its backend."""
        from dataclasses import replace as _replace

        if not job._mark_running():
            return  # cancelled while queued: never runs
        try:
            envelope = backend.execute(self, job.request, progress=job._emit)
        except Exception as exc:  # defensive: a job must answer
            envelope = ResultEnvelope(
                request=job.request,
                ok=False,
                error={"type": type(exc).__name__, "message": str(exc)},
            )
        job._finish(
            _replace(envelope, job_id=job.job_id, backend=backend.name)
        )

    def _evict_jobs_locked(self) -> None:
        """FIFO-evict *terminal* jobs down to the registry cap.

        The weak-valued registry already drops jobs nobody references;
        this bounds the case where a caller holds many terminal
        handles (only the registry entry goes — the handles live on).
        """
        if len(self._jobs) <= _MAX_JOBS:
            return
        for job_id, job in list(self._jobs.items()):
            if len(self._jobs) <= _MAX_JOBS:
                break
            if job.done():
                del self._jobs[job_id]

    def job(self, job_id: str) -> JobHandle | None:
        """Look a submitted job up by its ``job_id`` (``None`` if unknown
        or already evicted from the bounded registry)."""
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[JobHandle]:
        """The registry's still-referenced job handles, oldest first."""
        with self._lock:
            return list(self._jobs.values())

    def map(self, requests: list[Request]) -> list[ResultEnvelope]:
        """Submit *requests* concurrently and gather envelopes in order."""
        jobs = [self.submit(request) for request in requests]
        return [job.result() for job in jobs]

    def process_backend(self, processes: int) -> ProcessBackend:
        """The service's shared local-process backend of width *processes*.

        Built once per width and kept — its worker processes (each with
        its own warm service) persist across requests and close with
        the service.  The ``SuiteRequest.processes > 1`` executor path
        fans out through this instead of ``run_suite``'s old ad-hoc
        per-call pool whenever the run is name-shardable.
        """
        with self._lock:
            backend = self._process_backends.get(processes)
            if backend is None:
                backend = ProcessBackend(processes)
                self._process_backends[processes] = backend
            return backend

    # ------------------------------------------------------------------
    # Lifecycle / introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Service-level counters plus per-context cache stats."""
        with self._lock:
            contexts = dict(self._contexts)
            served = self._requests_served
        per_context = {}
        for (machine, chip), context in contexts.items():
            label = f"{machine.name}/{'chip' if chip else 'rf'}"
            with context.lock:
                per_context[label] = dict(context.stats)
        return {
            "requests_served": served,
            "contexts": per_context,
            "workloads_cached": len(self._workloads),
            "allocations_cached": len(self._allocations),
        }

    def close(self) -> None:
        """Shut the thread pool and owned backends down (idempotent)."""
        with self._lock:
            pool, self._pool = self._pool, None
            process_backends = list(self._process_backends.values())
            self._process_backends.clear()
        if pool is not None:
            pool.shutdown(wait=True)
        for backend in process_backends:
            backend.close()
        if self._owns_backend:
            self.backend.close()

    def __enter__(self) -> "AnalysisService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<AnalysisService contexts={len(self._contexts)} "
            f"served={self._requests_served}>"
        )


# ----------------------------------------------------------------------
# The module-level default service: what the compatibility shims and the
# CLI share, so every entry point in a process amortizes one runtime.
# ----------------------------------------------------------------------
_default_service: AnalysisService | None = None
_default_lock = threading.Lock()


def default_service() -> AnalysisService:
    """The process-wide shared service, created on first use."""
    global _default_service
    with _default_lock:
        if _default_service is None:
            _default_service = AnalysisService()
        return _default_service


def reset_default_service() -> None:
    """Drop the process-wide service (tests; long-lived processes)."""
    global _default_service
    with _default_lock:
        service, _default_service = _default_service, None
    if service is not None:
        service.close()
