"""Declarative analysis requests: everything a run needs, in one value.

The pre-1.2 public API smeared run parameters across free-function
keyword arguments and ``argparse`` flags — input source here, machine
preset there, ``TDFAConfig`` fields somewhere else.  This module folds
each entry point's full parameter surface into one **frozen,
JSON-round-trippable dataclass**:

=====================  ==============================================
:class:`AnalysisRequest`  one thermal data flow analysis (CLI ``analyze``)
:class:`CompileRequest`   the thermal-aware pipeline (CLI ``compile``)
:class:`EmulateRequest`   the feedback-driven reference flow (CLI ``emulate``)
:class:`SuiteRequest`     a whole-suite run (CLI ``suite``)
:class:`PipelineRequest`  a cross-function pipeline analysis (CLI ``pipeline``)
:class:`ScheduleRequest`  a thermal-aware schedule search (CLI ``schedule``)
:class:`Fig1Request`      the Fig. 1 policy comparison (CLI ``fig1``)
:class:`WorkloadListRequest`  list the built-in suite (CLI ``workloads``)
:class:`MetricsRequest`   read/control the process metrics registry
=====================  ==============================================

A request says *what* to run; the :class:`~repro.service.AnalysisService`
decides *how* (which shared :class:`~repro.core.context.AnalysisContext`
serves it, what is already cached).  ``to_dict()`` / ``from_dict()``
round-trip through plain JSON types — ``request_from_dict`` dispatches
on the ``"kind"`` discriminator, which is how the line-delimited JSON
front-end (:mod:`repro.service.frontend`) revives requests off a pipe.

Input sources
-------------
The input-bearing requests accept exactly one of

* ``workload`` — a built-in workload name (``repro.workloads.load``);
* ``ir_text`` — the textual IR of one function;
* ``ir_path`` — path to a textual IR file;
* ``function`` — an in-memory :class:`~repro.ir.function.Function`
  (programmatic use only; serialized as ``ir_text`` by ``to_dict``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from typing import Any, ClassVar

from ..core.tdfa import TDFAConfig
from ..errors import ProtocolError, ReproError
from ..ir.function import Function


@dataclass(frozen=True)
class Request:
    """Base of every service request.

    ``request_id`` is an optional caller-chosen correlation token; the
    service echoes it (inside the request echo of every
    :class:`~repro.service.envelope.ResultEnvelope`), which is what lets
    pipelined front-end clients match responses to requests.
    """

    #: Discriminator used by ``to_dict``/``request_from_dict``.
    kind: ClassVar[str] = ""

    request_id: str | None = None

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON representation, ``{"kind": ..., field: value, ...}``.

        A ``function`` object (not JSON-representable) is serialized to
        its textual IR and carried in ``ir_text``.
        """
        data: dict[str, Any] = {"kind": self.kind}
        for f in fields(self):
            if f.name == "function":
                continue
            value = getattr(self, f.name)
            if isinstance(value, tuple):
                value = list(value)
            data[f.name] = value
        function = getattr(self, "function", None)
        if function is not None and not data.get("ir_text"):
            from ..ir.printer import print_function

            data["ir_text"] = print_function(function)
        return data

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Request":
        """Revive a request of this class from ``to_dict`` output."""
        if cls is Request:
            return request_from_dict(data)
        payload = dict(data)
        kind = payload.pop("kind", cls.kind)
        if kind != cls.kind:
            raise ProtocolError(
                f"request kind {kind!r} does not match {cls.__name__} "
                f"(expected {cls.kind!r})"
            )
        known = {f.name for f in fields(cls) if f.init}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ProtocolError(
                f"unknown field(s) for {kind!r} request: {', '.join(unknown)}"
            )
        for f in fields(cls):
            if f.name in payload and isinstance(payload[f.name], list):
                payload[f.name] = tuple(payload[f.name])
        return cls(**payload)


@dataclass(frozen=True)
class _InputRequest(Request):
    """Shared input-source + machine-preset surface."""

    workload: str | None = None
    ir_text: str | None = None
    ir_path: str | None = None
    function: Function | None = None
    machine: str = "rf64"

    def input_sources(self) -> list[str]:
        """Names of the input fields actually set (should be exactly one)."""
        return [
            name
            for name in ("workload", "ir_text", "ir_path", "function")
            if getattr(self, name) is not None
        ]


@dataclass(frozen=True)
class AnalysisRequest(_InputRequest):
    """One thermal data flow analysis of one function.

    Mirrors ``python -m repro analyze`` flag for flag: the function is
    register-allocated under *policy*, analyzed under the ``TDFAConfig``
    fields, and (RF model only) ranked for critical variables and run
    through the rule engine.  ``chip=True`` analyzes on the die-level
    model instead.
    """

    kind: ClassVar[str] = "analyze"

    chip: bool = False
    policy: str = "first-free"
    delta: float = 0.01
    merge: str = "freq"
    engine: str = "auto"
    sweep: str = "auto"
    max_iterations: int = 2000
    include_leakage: bool = True
    #: Start the fixed point from the shared context's previously
    #: converged solution for this function, when one exists — the
    #: incremental re-analysis knob (see ``TDFAConfig.warm_start``).
    warm_start: bool = False
    top: int = 5
    show_map: bool = True

    def config(self) -> TDFAConfig:
        return TDFAConfig(
            delta=self.delta,
            merge=self.merge,
            engine=self.engine,
            sweep=self.sweep,
            max_iterations=self.max_iterations,
            include_leakage=self.include_leakage,
            warm_start=self.warm_start,
        )


@dataclass(frozen=True)
class CompileRequest(_InputRequest):
    """The full thermal-aware compilation pipeline on one function."""

    kind: ClassVar[str] = "compile"

    policy: str = "first-free"
    delta: float = 0.05
    merge: str = "freq"
    engine: str = "auto"
    sweep: str = "auto"
    max_iterations: int = 2000
    include_leakage: bool = True
    enable_nops: bool = True

    def config(self) -> TDFAConfig:
        return TDFAConfig(
            delta=self.delta,
            merge=self.merge,
            engine=self.engine,
            sweep=self.sweep,
            max_iterations=self.max_iterations,
            include_leakage=self.include_leakage,
        )


@dataclass(frozen=True)
class EmulateRequest(_InputRequest):
    """The feedback-driven reference flow (interpreter + RC integration).

    With ``compare_analysis=True`` the analysis runs too — under the
    standard analysis knobs (*delta*/*merge*/*engine*), not a hardcoded
    configuration — and the envelope carries the accuracy report.
    """

    kind: ClassVar[str] = "emulate"

    policy: str = "first-free"
    compare_analysis: bool = False
    delta: float = 0.01
    merge: str = "freq"
    engine: str = "auto"


@dataclass(frozen=True)
class Fig1Request(_InputRequest):
    """The Fig. 1 policy comparison: emulated maps for three policies."""

    kind: ClassVar[str] = "fig1"


@dataclass(frozen=True)
class SuiteRequest(Request):
    """A whole-suite analysis run through one shared context.

    Mirrors ``python -m repro suite``: the named *workloads* subset (or
    the full/quick suite), optional pressure/random scenario generators,
    the die-level ``chip`` model and multi-process fan-out.
    """

    kind: ClassVar[str] = "suite"

    workloads: tuple[str, ...] | None = None
    machine: str = "rf64"
    chip: bool = False
    delta: float = 0.01
    merge: str = "freq"
    engine: str = "auto"
    sweep: str = "auto"
    policy: str = "first-free"
    quick: bool = False
    include_pressure: bool = False
    random_count: int = 0
    processes: int = 1
    #: Extra stages as textual IR, one function each, appended after the
    #: named/generated scenarios.  This is how sharding backends carry
    #: *generated* kernels (pressure/random scenarios) to workers that
    #: cannot regenerate them by name.
    ir_texts: tuple[str, ...] | None = None


@dataclass(frozen=True)
class PipelineRequest(Request):
    """A cross-function pipeline analysis: many kernels, one program.

    Mirrors ``python -m repro pipeline``: the ordered *stages* (built-in
    workload names) — or *ir_texts*, one function per stage — are
    register-allocated under the per-stage *policies* (default: *policy*
    everywhere) and analyzed as one thermal pipeline, the entry state of
    each stage being the exit state of the previous one.  *strategy*
    picks the engine: the stacked pipeline-wide fixed point
    (``"stacked"``), exact summary composition (``"composed"``) or the
    per-kernel carry-through reference (``"sequential"``) — see
    :mod:`repro.core.pipeline_runner`.
    """

    kind: ClassVar[str] = "pipeline"

    stages: tuple[str, ...] | None = None
    ir_texts: tuple[str, ...] | None = None
    machine: str = "rf64"
    chip: bool = False
    strategy: str = "stacked"
    policy: str = "first-free"
    policies: tuple[str, ...] | None = None
    delta: float = 0.01
    merge: str = "freq"
    engine: str = "auto"
    sweep: str = "auto"
    max_iterations: int = 2000
    #: Restart the stacked fixed point from the shared context's stored
    #: pipeline-level solution, when one is still valid — the
    #: incremental re-analysis knob, one level up from
    #: ``AnalysisRequest.warm_start`` (see ``TDFAConfig.warm_start``).
    warm_start: bool = False
    #: Entry temperature vector (one value per thermal node) instead of
    #: uniform ambient — how a coordinator chains pipeline *chunks*
    #: across workers: chunk k+1 starts from chunk k's reported
    #: ``exit_temperatures``.
    entry_temperatures: tuple[float, ...] | None = None
    #: Carry the pipeline's exit temperature vector on the report
    #: (``report["exit_temperatures"]``) so the caller can chain.
    return_exit_state: bool = False


@dataclass(frozen=True)
class ScheduleRequest(Request):
    """A thermal-aware schedule search: find the coolest stage ordering.

    Mirrors ``python -m repro schedule``: the stage multiset — built-in
    workload names (*stages*), textual IR functions (*ir_texts*), or a
    seeded generated pipeline (*random_stages*/*seed*) — is searched
    under *strategy* for the ordering (and, with *placements*, per-slot
    assignment policies) minimizing *objective*, scored through cached
    composed summaries.  The result payload is a ``repro.schedule/1``
    :class:`~repro.sched.ScheduleReport`: the argmin schedule plus its
    full stacked pipeline analysis as evidence.

    *candidates* — explicit ``(order, policies)`` pairs — switches the
    request into batch-evaluation mode: score exactly these and report
    per-candidate scores.  That is the shard unit
    ``shard_schedule_request`` sends each worker; end users normally
    leave it ``None``.
    """

    kind: ClassVar[str] = "schedule"

    stages: tuple[str, ...] | None = None
    ir_texts: tuple[str, ...] | None = None
    #: Generate the stage list with ``random_pipeline(seed, length)``
    #: instead of naming stages — with *seed*, the bitwise-reproducible
    #: input path (identical (request, seed) pairs build identical
    #: stage multisets on every backend).
    random_stages: int = 0
    seed: int = 0
    machine: str = "rf64"
    chip: bool = False
    strategy: str = "greedy"
    objective: str = "peak"
    budget: int = 2000
    delta: float = 0.01
    merge: str = "freq"
    sweep: str = "auto"
    policy: str = "first-free"
    #: Assignment-policy names opening the per-slot placement axis.
    placements: tuple[str, ...] | None = None
    dwell_threshold: float = 1.0
    #: Explicit candidate batch (shard mode); each entry is
    #: ``(order, policies-or-None)``.
    candidates: tuple[tuple, ...] | None = None
    #: Progress-event granularity: one ``"batch"`` event per this many
    #: computed evaluations.
    batch: int = 25

    def __post_init__(self) -> None:
        # ``Request.from_dict`` only tuples the *top* level; candidate
        # entries arrive as nested lists off the wire, so normalize here
        # to keep revived requests equal to their originals.
        if self.candidates is not None:
            normalized = tuple(
                (
                    tuple(int(i) for i in order),
                    tuple(policies) if policies is not None else None,
                )
                for order, policies in self.candidates
            )
            object.__setattr__(self, "candidates", normalized)

    def to_dict(self) -> dict[str, Any]:
        data = super().to_dict()
        if self.candidates is not None:
            data["candidates"] = [
                [list(order), list(policies) if policies else None]
                for order, policies in self.candidates
            ]
        return data


@dataclass(frozen=True)
class WorkloadListRequest(Request):
    """List the built-in workload suite."""

    kind: ClassVar[str] = "workloads"


@dataclass(frozen=True)
class MetricsRequest(Request):
    """Read (and optionally control) the serving process's metrics.

    Answered from the service's
    :class:`~repro.obs.metrics.MetricsRegistry` without touching any
    analysis context: ``result`` holds ``{"enabled", "metrics",
    "service", "rendered"}`` — the registry snapshot, the service-level
    counters (``requests_served``, per-context cache stats), and a
    rendered table.  *enable* (tri-state) flips the registry on or off
    for the whole process — how a dashboard or operator turns live
    instrumentation on against a running serve/worker without a
    restart; *reset* zeroes the recorded values after snapshotting
    (read-and-clear).
    """

    kind: ClassVar[str] = "metrics"

    enable: bool | None = None
    reset: bool = False


# ----------------------------------------------------------------------
# Job-queue kinds (repro.service/3): the wire view of the JobHandle API.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SubmitRequest(Request):
    """Submit a request as an async job instead of a synchronous call.

    *request* carries the inner request's ``to_dict`` form (any
    executable kind).  A plain submit is answered immediately with an
    acknowledgement envelope — ``result`` holds ``{"job_id",
    "status"}`` — and the job runs in the background; the client comes
    back with ``poll``/``events``/``cancel``.  With ``stream=true`` the
    front-end instead holds the line open and writes the job's progress
    events as :class:`~repro.service.envelope.EventFrame` lines,
    followed by the job's final envelope (which echoes the *inner*
    request, ``request_id`` included — what lets
    :class:`~repro.service.backends.WorkerClient` keep its echo check).
    """

    kind: ClassVar[str] = "submit"

    request: dict[str, Any] | None = None
    stream: bool = False

    def inner(self) -> "Request":
        """Revive the wrapped request (ProtocolError when malformed)."""
        if not isinstance(self.request, dict):
            raise ProtocolError(
                "a submit request needs a 'request' object (the inner "
                "request's to_dict form)"
            )
        return request_from_dict(self.request)


@dataclass(frozen=True)
class PollRequest(Request):
    """Query a submitted job's status (and final envelope, if terminal).

    Answered immediately: ``result`` holds ``{"job_id", "status",
    "done"}`` plus, once the job is terminal, ``"envelope"`` — the
    job's final envelope as a nested dict (``null`` for cancelled
    jobs, which have none).  An unknown ``job_id`` answers with an
    :class:`~repro.errors.UnknownJobError` error envelope — an
    application error, not a protocol violation.
    """

    kind: ClassVar[str] = "poll"

    job_id: str | None = None


@dataclass(frozen=True)
class EventsRequest(Request):
    """Replay a job's buffered progress events as event frames.

    Answered immediately with one :class:`EventFrame` line per buffered
    event with absolute index ≥ *after*, then a closing envelope whose
    ``result`` holds ``{"job_id", "status", "next", "dropped_events"}``
    — ``next`` is the cursor to pass as the next call's *after*, so a
    client streams a running job by polling the cursor forward; on a
    terminal job one call replays the full retained history.  Events
    evicted from the bounded ring buffer are skipped (and counted in
    ``dropped_events``).
    """

    kind: ClassVar[str] = "events"

    job_id: str | None = None
    after: int = 0


@dataclass(frozen=True)
class CancelRequest(Request):
    """Cancel a submitted job.

    Answered immediately: ``result`` holds ``{"job_id", "cancelled",
    "status"}`` with :meth:`JobHandle.cancel
    <repro.service.jobs.JobHandle.cancel>` semantics — a queued job
    never runs (and never dispatches to any worker), a running job
    completes but its result is discarded, a terminal job reports
    ``cancelled: false``.
    """

    kind: ClassVar[str] = "cancel"

    job_id: str | None = None


#: The v3 job-queue kinds, handled by the serve front-end itself (they
#: manipulate the session's job table rather than executing analyses).
JOB_REQUEST_KINDS = ("submit", "poll", "events", "cancel")


@dataclass(frozen=True)
class InvalidRequest(Request):
    """Echo placeholder for input that never became a request.

    The line-delimited front-end answers *every* line with an envelope;
    when a line is malformed (bad JSON, unknown kind), the error
    envelope echoes this request with the offending text in ``raw`` —
    so clients can still revive every response line with
    ``ResultEnvelope.from_json``.  Executing one always fails.
    """

    kind: ClassVar[str] = "invalid"

    raw: str | None = None


#: kind discriminator -> request class, for ``request_from_dict``.
REQUEST_KINDS: dict[str, type[Request]] = {
    cls.kind: cls
    for cls in (
        AnalysisRequest,
        CompileRequest,
        EmulateRequest,
        Fig1Request,
        SuiteRequest,
        PipelineRequest,
        ScheduleRequest,
        WorkloadListRequest,
        MetricsRequest,
        SubmitRequest,
        PollRequest,
        EventsRequest,
        CancelRequest,
        InvalidRequest,
    )
}


def request_from_dict(data: dict[str, Any]) -> Request:
    """Revive any request from its ``to_dict`` form (``"kind"`` dispatch).

    Wire-level violations — a non-object document, an unknown ``kind``,
    unknown fields — raise :class:`~repro.errors.ProtocolError` (still a
    :class:`~repro.errors.ReproError`, so blanket handlers keep
    working), which is how front-ends tell protocol failures apart from
    analysis failures.
    """
    if not isinstance(data, dict):
        raise ProtocolError(
            f"a request must be a JSON object, got {type(data).__name__}"
        )
    kind = data.get("kind")
    cls = REQUEST_KINDS.get(kind)
    if cls is None:
        raise ProtocolError(
            f"unknown request kind {kind!r}; "
            f"expected one of: {', '.join(sorted(REQUEST_KINDS))}"
        )
    return cls.from_dict(data)


def request_from_json(text: str) -> Request:
    """Revive any request from one JSON document (front-end line format)."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"malformed request JSON: {exc}") from None
    return request_from_dict(data)
