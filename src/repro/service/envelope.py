"""The uniform response type of the analysis service.

Every request kind — analysis, compilation, emulation, suite run,
listing — resolves to one :class:`ResultEnvelope`: the request echo, a
typed (JSON-plain) result payload, the wall time the service spent, and
a snapshot of the serving context's cache statistics (the observable
evidence that requests share one :class:`~repro.core.context.AnalysisContext`).

The envelope is schema-versioned (:data:`SCHEMA`, bump on incompatible
changes) and round-trips losslessly: ``ResultEnvelope.from_dict(env.to_dict())
== env`` and likewise through ``to_json``/``from_json`` — the wire
format of the line-delimited JSON front-end and of the
``python -m repro worker`` socket protocol.  The full field-by-field
schema is documented in ``benchmarks/README.md``.

Versioning: the current schema is ``repro.service/3``.  v2 *added*
the job fields (``job_id``, ``backend``) over ``repro.service/1``; v3
adds no envelope fields but introduces the job-queue request kinds
(``submit``/``poll``/``events``/``cancel``) and a second wire document,
the :class:`EventFrame` — a progress event streamed ahead of a final
envelope, distinguished on the wire by its ``"frame": "event"`` key.
Archived v1/v2 envelopes still revive (missing fields default), while
a document declaring a schema this reader does not speak raises
:class:`~repro.errors.ProtocolError`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from ..errors import ProtocolError
from .requests import Request, request_from_dict

#: Envelope schema identifier (bump on incompatible changes).
SCHEMA = "repro.service/3"

#: Every schema version this reader revives.  v2 is v1 plus the job
#: fields and v3 is v2 plus the job-queue kinds and event frames, so
#: archived v1/v2 envelopes parse under the v3 reader unchanged.
SCHEMAS = ("repro.service/1", "repro.service/2", "repro.service/3")


@dataclass(frozen=True)
class ResultEnvelope:
    """What the service returns for any request.

    Attributes
    ----------
    request:
        Echo of the request that produced this result.
    ok:
        ``True`` when execution succeeded; ``False`` means *error* holds
        ``{"type": ..., "message": ...}`` and *result* is empty.
    result:
        Kind-specific payload of plain JSON types.  Human-readable
        output lives under ``result["rendered"]``; convergence-bearing
        kinds carry ``result["converged"]``.
    wall_time_seconds:
        Service-side wall time for this request.
    context_stats:
        Snapshot of the serving context's aggregate cache counters
        (:attr:`repro.core.context.AnalysisContext.stats`) taken right
        after execution — ``analyses`` > 1 with nonzero hit counters is
        the shared-runtime amortization, observable per response.  For
        sharded backends this is the *sum* of the per-worker snapshots.
    job_id:
        The :class:`~repro.service.jobs.JobHandle` identity that
        produced this envelope, or ``None`` for plain synchronous
        ``execute()`` calls (and for revived v1 envelopes).
    backend:
        Name of the :class:`~repro.service.backends.ExecutionBackend`
        that executed the job (``"inline"`` / ``"process"`` /
        ``"remote"``), or ``None`` outside the job path.
    metrics:
        Snapshot of the serving
        :class:`~repro.obs.metrics.MetricsRegistry` (counters, gauges,
        histograms) taken after execution — present **only when the
        registry is enabled** (``repro.obs.enable_metrics()`` or
        ``--metrics``).  ``None`` omits the key from ``to_dict``
        entirely, so envelopes from an un-instrumented service stay
        byte-identical to earlier ``repro.service/3`` producers (the
        ``dropped_events`` only-when-nonzero idiom, one field up).
    """

    request: Request
    ok: bool = True
    result: dict[str, Any] = field(default_factory=dict)
    error: dict[str, str] | None = None
    wall_time_seconds: float = 0.0
    context_stats: dict[str, int] = field(default_factory=dict)
    job_id: str | None = None
    backend: str | None = None
    metrics: dict[str, Any] | None = None
    schema: str = SCHEMA

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def converged(self) -> bool:
        """Convergence of the underlying run (vacuously true if N/A)."""
        return bool(self.result.get("converged", True))

    @property
    def exit_code(self) -> int:
        """Process exit semantics: 0 ok, 1 error, 2 did-not-converge."""
        if not self.ok:
            return 1
        return 0 if self.converged else 2

    @property
    def rendered(self) -> str:
        """The human-readable report, if the executor produced one."""
        return str(self.result.get("rendered", ""))

    def error_message(self) -> str:
        return (self.error or {}).get("message", "")

    @property
    def protocol_error(self) -> bool:
        """Whether this is an error envelope for a protocol violation
        (the line never became a request, or spoke a wrong schema)."""
        return (self.error or {}).get("type") == "ProtocolError"

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        data = {
            "schema": self.schema,
            "request": self.request.to_dict(),
            "ok": self.ok,
            "result": self.result,
            "error": self.error,
            "wall_time_seconds": self.wall_time_seconds,
            "context_stats": self.context_stats,
            "job_id": self.job_id,
            "backend": self.backend,
        }
        if self.metrics is not None:
            # Key absent (not null) when metrics are off: wire output
            # stays byte-identical to pre-observability producers.
            data["metrics"] = self.metrics
        return data

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ResultEnvelope":
        schema = str(data.get("schema", SCHEMA))
        if schema not in SCHEMAS:
            raise ProtocolError(
                f"unsupported envelope schema {schema!r}; "
                f"supported: {', '.join(SCHEMAS)}"
            )
        return cls(
            request=request_from_dict(data["request"]),
            ok=bool(data.get("ok", True)),
            result=dict(data.get("result") or {}),
            error=dict(data["error"]) if data.get("error") else None,
            wall_time_seconds=float(data.get("wall_time_seconds", 0.0)),
            context_stats=dict(data.get("context_stats") or {}),
            job_id=data.get("job_id"),
            backend=data.get("backend"),
            metrics=(dict(data["metrics"])
                     if isinstance(data.get("metrics"), dict) else None),
            schema=schema,
        )

    @classmethod
    def from_json(cls, text: str) -> "ResultEnvelope":
        return cls.from_dict(json.loads(text))


# ----------------------------------------------------------------------
# Event frames: the v3 streaming wire document.
# ----------------------------------------------------------------------
def is_event_frame(data: Any) -> bool:
    """Whether a decoded wire document is an event frame (vs an
    envelope).  The discriminator is the ``"frame": "event"`` key —
    envelopes never carry ``frame``."""
    return isinstance(data, dict) and data.get("frame") == "event"


@dataclass(frozen=True)
class EventFrame:
    """One progress event on the wire, ahead of its job's final envelope.

    A ``repro.service/3`` streaming response (a ``submit`` with
    ``stream=true``, or an ``events`` replay) interleaves these frames
    with the ordinary envelope lines: each frame carries the ``job_id``
    it narrates, a monotonically increasing ``seq`` ordinal, and the
    progress event dict exactly as :class:`~repro.service.jobs.JobHandle`
    recorded it (``kernel``/``stage``/``sweep``/``shard``/``retry``/
    ``status`` shapes — see ``benchmarks/README.md``).  Readers
    distinguish the two documents by :func:`is_event_frame`; a v2
    client that never sends streaming kinds never sees one.
    """

    job_id: str | None
    seq: int
    event: dict[str, Any] = field(default_factory=dict)
    schema: str = SCHEMA

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": self.schema,
            "frame": "event",
            "job_id": self.job_id,
            "seq": self.seq,
            "event": self.event,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "EventFrame":
        schema = str(data.get("schema", SCHEMA))
        if schema not in SCHEMAS:
            raise ProtocolError(
                f"unsupported frame schema {schema!r}; "
                f"supported: {', '.join(SCHEMAS)}"
            )
        if data.get("frame") != "event":
            raise ProtocolError(
                f"not an event frame: frame={data.get('frame')!r}"
            )
        return cls(
            job_id=data.get("job_id"),
            seq=int(data.get("seq", 0)),
            event=dict(data.get("event") or {}),
            schema=schema,
        )

    @classmethod
    def from_json(cls, text: str) -> "EventFrame":
        return cls.from_dict(json.loads(text))
