"""Minimal async front-end: line-delimited JSON over a pipe.

One request per input line (a JSON object with a ``"kind"``
discriminator — see :mod:`repro.service.requests`), one
:class:`~repro.service.envelope.ResultEnvelope` per output line, in
request order.  Lines are dispatched onto the service's thread pool as
they arrive, so independent requests overlap while responses still come
back in order — callers may tag requests with ``"request_id"`` and
match on the echo instead of relying on ordering.

This is the shape the ROADMAP's "async service front-end over the
shared context" asks for, kept deliberately transport-free: anything
that can write lines to a pipe (a shell, a socat bridge, a scheduler
repeatedly querying its thermal oracle) can drive it.  CI's
``bench-smoke`` job pipes analyze/suite/pipeline requests through
``python -m repro serve`` and checks every envelope::

    printf '%s\n%s\n' \
      '{"kind": "analyze", "workload": "fir", "delta": 0.05}' \
      '{"kind": "analyze", "workload": "fir", "delta": 0.05}' \
      | python -m repro serve
"""

from __future__ import annotations

import json
import sys
from collections import deque
from typing import IO, Iterable

from .envelope import ResultEnvelope
from .requests import InvalidRequest, request_from_json
from .service import AnalysisService, default_service


def _protocol_error(line: str, exc: Exception) -> dict:
    """An error envelope for lines that never became requests.

    Echoes an :class:`~repro.service.requests.InvalidRequest` carrying
    the offending text, so the response is still a fully revivable
    envelope (``ResultEnvelope.from_json`` works on every output line).
    """
    return ResultEnvelope(
        request=InvalidRequest(raw=line),
        ok=False,
        error={"type": type(exc).__name__, "message": str(exc)},
    ).to_dict()


def _write(out: IO[str], payload: dict) -> None:
    out.write(json.dumps(payload, sort_keys=True))
    out.write("\n")
    out.flush()


def serve_forever(
    service: AnalysisService | None = None,
    lines: Iterable[str] | None = None,
    out: IO[str] | None = None,
) -> int:
    """Serve requests from *lines* until EOF; returns lines answered.

    Defaults: the process-wide default service, ``sys.stdin`` and
    ``sys.stdout`` — i.e. ``python -m repro serve``.  Every input line
    is answered, malformed ones with an ``ok=false`` error object, so a
    driving process can always match responses to requests by count (or
    by ``request_id`` echo).
    """
    service = service or default_service()
    lines = lines if lines is not None else sys.stdin
    out = out or sys.stdout

    answered = 0
    #: (input-order) futures not yet written; popped as they complete.
    pending: deque = deque()

    def drain(block: bool) -> None:
        nonlocal answered
        while pending and (block or pending[0][1].done()):
            line, future = pending.popleft()
            try:
                envelope: ResultEnvelope = future.result()
                _write(out, envelope.to_dict())
            except Exception as exc:  # defensive: a service must answer
                _write(out, _protocol_error(line, exc))
            answered += 1

    for raw in lines:
        line = raw.strip()
        if not line:
            continue
        try:
            request = request_from_json(line)
        except Exception as exc:
            # Flush earlier answers first so output stays in order.
            drain(block=True)
            _write(out, _protocol_error(line, exc))
            answered += 1
            continue
        pending.append((line, service.submit(request)))
        drain(block=False)
    drain(block=True)
    return answered
