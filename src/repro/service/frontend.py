"""Minimal async front-end: line-delimited JSON over a pipe.

One request per input line (a JSON object with a ``"kind"``
discriminator — see :mod:`repro.service.requests`), one
:class:`~repro.service.envelope.ResultEnvelope` per output line.  Lines
are dispatched onto the service as jobs as they arrive, so independent
requests overlap; by default responses come back **in request order**
(ordered drain), while ``unordered=True`` (CLI ``serve --unordered``)
writes each envelope the moment its request completes — no head-of-line
blocking — and callers match responses on the ``request_id`` echo
instead of position.

This is the shape the ROADMAP's "async service front-end over the
shared context" asks for, kept deliberately transport-free: anything
that can write lines to a pipe (a shell, a socat bridge, a scheduler
repeatedly querying its thermal oracle) can drive it — and
``python -m repro worker`` serves the very same loop over a TCP
socket.  CI's ``bench-smoke`` job pipes analyze/suite/pipeline requests
through ``python -m repro serve`` and checks every envelope::

    printf '%s\n%s\n' \
      '{"kind": "analyze", "workload": "fir", "delta": 0.05}' \
      '{"kind": "analyze", "workload": "fir", "delta": 0.05}' \
      | python -m repro serve

Lines that never become requests (bad JSON, unknown kinds, unknown
fields) are answered with :class:`~repro.errors.ProtocolError`
envelopes; :func:`serve_forever` counts them and ``repro serve`` exits
3 when any were answered.
"""

from __future__ import annotations

import json
import sys
import threading
from collections import deque
from typing import IO, Iterable

from .envelope import ResultEnvelope
from .requests import InvalidRequest, request_from_json
from .service import AnalysisService, default_service


class ServeResult(int):
    """What one serve session answered: an ``int`` (line count, so the
    pre-1.4 ``answered == n`` assertions keep working) carrying the
    protocol-error tally that drives ``repro serve``'s exit code 3."""

    protocol_errors: int

    def __new__(cls, answered: int, protocol_errors: int = 0) -> "ServeResult":
        self = super().__new__(cls, answered)
        self.protocol_errors = protocol_errors
        return self

    @property
    def answered(self) -> int:
        return int(self)

    @property
    def exit_code(self) -> int:
        """0 when every line parsed into a request, 3 otherwise."""
        return 3 if self.protocol_errors else 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ServeResult(answered={int(self)}, "
            f"protocol_errors={self.protocol_errors})"
        )


def _protocol_error(line: str, exc: Exception) -> dict:
    """An error envelope for lines that never became requests.

    Echoes an :class:`~repro.service.requests.InvalidRequest` carrying
    the offending text, so the response is still a fully revivable
    envelope (``ResultEnvelope.from_json`` works on every output line).
    The parsers raise :class:`~repro.errors.ProtocolError` for every
    wire-level violation, so ``error.type`` distinguishes protocol
    failures from analysis failures.
    """
    return ResultEnvelope(
        request=InvalidRequest(raw=line),
        ok=False,
        error={"type": type(exc).__name__, "message": str(exc)},
    ).to_dict()


def _write(out: IO[str], payload: dict) -> None:
    out.write(json.dumps(payload, sort_keys=True))
    out.write("\n")
    out.flush()


def serve_forever(
    service: AnalysisService | None = None,
    lines: Iterable[str] | None = None,
    out: IO[str] | None = None,
    unordered: bool = False,
) -> ServeResult:
    """Serve requests from *lines* until EOF; returns a :class:`ServeResult`
    (the number of lines answered, plus the protocol-error tally).

    Defaults: the process-wide default service, ``sys.stdin`` and
    ``sys.stdout`` — i.e. ``python -m repro serve``.  Every input line
    is answered, malformed ones with an ``ok=false`` error object, so a
    driving process can always match responses to requests by count (or
    by ``request_id`` echo).  With *unordered* set, each envelope is
    written as its request completes (matching by count no longer pairs
    responses with requests — use ``request_id``).
    """
    service = service or default_service()
    lines = lines if lines is not None else sys.stdin
    out = out or sys.stdout

    if unordered:
        return _serve_unordered(service, lines, out)
    return _serve_ordered(service, lines, out)


def _serve_ordered(service, lines, out) -> ServeResult:
    answered = 0
    protocol_errors = 0
    #: (input-order) jobs not yet written; popped as they complete.
    pending: deque = deque()

    def drain(block: bool) -> None:
        nonlocal answered, protocol_errors
        while pending and (block or pending[0][1].done()):
            line, job = pending.popleft()
            try:
                envelope: ResultEnvelope = job.result()
                if envelope.protocol_error:
                    # Rare but possible post-parse (e.g. an executable
                    # kind with no executor): still a wire-contract
                    # violation for the exit-3 tally.
                    protocol_errors += 1
                _write(out, envelope.to_dict())
            except Exception as exc:  # defensive: a service must answer
                _write(out, _protocol_error(line, exc))
                protocol_errors += 1
            answered += 1

    for raw in lines:
        line = raw.strip()
        if not line:
            continue
        try:
            request = request_from_json(line)
        except Exception as exc:
            # Flush earlier answers first so output stays in order.
            drain(block=True)
            _write(out, _protocol_error(line, exc))
            answered += 1
            protocol_errors += 1
            continue
        pending.append((line, service.submit(request)))
        drain(block=False)
    drain(block=True)
    return ServeResult(answered, protocol_errors)


def _serve_unordered(service, lines, out) -> ServeResult:
    """Write each envelope as its request completes.

    Jobs finish on service worker threads, so writes go through one
    lock; the ``request_id`` echo is the caller's correlation handle.
    Delivered jobs leave the pending map immediately — a long-lived
    worker connection streaming thousands of requests must not pin
    every answered job's envelope and event history until EOF.
    """
    write_lock = threading.Lock()
    counters = {"answered": 0, "protocol_errors": 0}
    #: id(job) -> (line, job) for jobs not yet written; popped on
    #: delivery, so exactly-once falls out of the pop and answered
    #: handles become collectable while the connection stays open.
    pending: dict[int, tuple] = {}

    def deliver(job) -> None:
        with write_lock:
            entry = pending.pop(id(job), None)
            if entry is None:
                return  # the done-callback and the EOF sweep raced
            line = entry[0]
            try:
                envelope = job.result()
                if envelope.protocol_error:
                    counters["protocol_errors"] += 1
                _write(out, envelope.to_dict())
            except Exception as exc:  # defensive: a service must answer
                _write(out, _protocol_error(line, exc))
                counters["protocol_errors"] += 1
            counters["answered"] += 1

    for raw in lines:
        line = raw.strip()
        if not line:
            continue
        try:
            request = request_from_json(line)
        except Exception as exc:
            with write_lock:
                _write(out, _protocol_error(line, exc))
                counters["answered"] += 1
                counters["protocol_errors"] += 1
            continue
        job = service.submit(request)
        with write_lock:
            pending[id(job)] = (line, job)
        job.add_done_callback(deliver)
    # EOF sweep: make sure every job's envelope is on the wire before
    # reporting (callbacks give timeliness; this gives completeness).
    while True:
        with write_lock:
            if not pending:
                break
            _line, job = next(iter(pending.values()))
        job.wait()
        deliver(job)
    with write_lock:
        return ServeResult(
            counters["answered"], counters["protocol_errors"]
        )
