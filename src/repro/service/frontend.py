"""Minimal async front-end: line-delimited JSON over a pipe.

One request per input line (a JSON object with a ``"kind"``
discriminator — see :mod:`repro.service.requests`), one
:class:`~repro.service.envelope.ResultEnvelope` per output line.  Lines
are dispatched onto the service as jobs as they arrive, so independent
requests overlap; by default responses come back **in request order**
(ordered drain), while ``unordered=True`` (CLI ``serve --unordered``)
writes each envelope the moment its request completes — no head-of-line
blocking — and callers match responses on the ``request_id`` echo
instead of position.

Since ``repro.service/3`` the front-end also speaks the **job-queue
kinds**, giving pipe clients the same async
:class:`~repro.service.jobs.JobHandle` semantics the in-process API
has:

``submit``
    Wraps any executable request; answered immediately with an
    acknowledgement envelope carrying the ``job_id`` while the job runs
    in the background.  With ``"stream": true`` the response is instead
    the job's live progress events as
    :class:`~repro.service.envelope.EventFrame` lines followed by the
    final envelope (in ordered mode the frames replay right before the
    envelope, preserving output order).
``poll``
    Immediate status answer; carries the final envelope once terminal.
``events``
    Replays the job's buffered events (absolute index ≥ ``after``) as
    event frames plus a closing cursor envelope — poll the cursor
    forward to stream a running job.
``cancel``
    :meth:`JobHandle.cancel` over the wire: a queued job never runs
    (and never dispatches to a worker), a running one completes with
    its result discarded.

Jobs submitted on a session are strongly held in a bounded per-session
table, so ``poll``/``events``/``cancel`` resolve them even after the
service's weak registry would have let go; unknown job ids answer with
:class:`~repro.errors.UnknownJobError` envelopes (an application
error — not a protocol violation, no exit 3).

This is the shape the ROADMAP's "async service front-end over the
shared context" asks for, kept deliberately transport-free: anything
that can write lines to a pipe (a shell, a socat bridge, a scheduler
repeatedly querying its thermal oracle) can drive it — and
``python -m repro worker`` serves the very same loop over a TCP
socket.  CI's ``bench-smoke`` job pipes analyze/suite/pipeline requests
through ``python -m repro serve`` and checks every envelope::

    printf '%s\n%s\n' \
      '{"kind": "analyze", "workload": "fir", "delta": 0.05}' \
      '{"kind": "analyze", "workload": "fir", "delta": 0.05}' \
      | python -m repro serve

Lines that never become requests (bad JSON, unknown kinds, unknown
fields) are answered with :class:`~repro.errors.ProtocolError`
envelopes; :func:`serve_forever` counts them and ``repro serve`` exits
3 when any were answered.  Event frames do not count as answers — one
input line is one answered envelope, frames are garnish before it.
"""

from __future__ import annotations

import itertools
import json
import sys
import threading
from collections import deque
from typing import IO, Iterable

from ..errors import JobCancelledError, ProtocolError, UnknownJobError
from .envelope import EventFrame, ResultEnvelope
from .jobs import JobHandle
from .requests import (
    CancelRequest,
    EventsRequest,
    InvalidRequest,
    PollRequest,
    SubmitRequest,
    request_from_json,
)
from .service import AnalysisService, default_service

#: Jobs a session holds strong references to (terminal ones evict FIFO
#: beyond this, mirroring the service registry's own bound).
_MAX_SESSION_JOBS = 256


class ServeResult(int):
    """What one serve session answered: an ``int`` (line count, so the
    pre-1.4 ``answered == n`` assertions keep working) carrying the
    protocol-error tally that drives ``repro serve``'s exit code 3."""

    protocol_errors: int

    def __new__(cls, answered: int, protocol_errors: int = 0) -> "ServeResult":
        self = super().__new__(cls, answered)
        self.protocol_errors = protocol_errors
        return self

    @property
    def answered(self) -> int:
        return int(self)

    @property
    def exit_code(self) -> int:
        """0 when every line parsed into a request, 3 otherwise."""
        return 3 if self.protocol_errors else 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ServeResult(answered={int(self)}, "
            f"protocol_errors={self.protocol_errors})"
        )


def _protocol_error(line: str, exc: Exception) -> dict:
    """An error envelope for lines that never became requests.

    Echoes an :class:`~repro.service.requests.InvalidRequest` carrying
    the offending text, so the response is still a fully revivable
    envelope (``ResultEnvelope.from_json`` works on every output line).
    The parsers raise :class:`~repro.errors.ProtocolError` for every
    wire-level violation, so ``error.type`` distinguishes protocol
    failures from analysis failures.
    """
    return ResultEnvelope(
        request=InvalidRequest(raw=line),
        ok=False,
        error={"type": type(exc).__name__, "message": str(exc)},
    ).to_dict()


def _cancelled_envelope(job: JobHandle) -> ResultEnvelope:
    """The wire answer for a job that was cancelled (it has no result)."""
    return ResultEnvelope(
        request=job.request,
        ok=False,
        error={
            "type": "JobCancelledError",
            "message": f"job {job.job_id} was cancelled",
        },
        job_id=job.job_id,
        backend=job.backend,
    )


def _unknown_job(request, job_id) -> dict:
    """An UnknownJobError envelope: application error, not protocol."""
    exc = UnknownJobError(
        f"unknown job {job_id!r} (never submitted on this service, or "
        "already evicted from the bounded registry)"
    )
    return ResultEnvelope(
        request=request,
        ok=False,
        error={"type": type(exc).__name__, "message": str(exc)},
    ).to_dict()


def _write(out: IO[str], payload: dict) -> None:
    out.write(json.dumps(payload, sort_keys=True) + "\n")
    out.flush()


class _JobSession:
    """One serve session's job table: strong refs, bounded, shared with
    the service's weak registry for lookups across sessions."""

    def __init__(self, service: AnalysisService) -> None:
        self.service = service
        self._jobs: dict[str, JobHandle] = {}
        self._lock = threading.Lock()

    def track(self, job: JobHandle) -> None:
        with self._lock:
            self._jobs[job.job_id] = job
            if len(self._jobs) <= _MAX_SESSION_JOBS:
                return
            for job_id, handle in list(self._jobs.items()):
                if len(self._jobs) <= _MAX_SESSION_JOBS:
                    break
                if handle.done():
                    del self._jobs[job_id]

    def lookup(self, job_id) -> JobHandle | None:
        if not job_id:
            return None
        with self._lock:
            job = self._jobs.get(job_id)
        return job if job is not None else self.service.job(job_id)


# ----------------------------------------------------------------------
# Answers: one input line -> one deliverable unit (frames + envelope).
# ----------------------------------------------------------------------
class _Answer:
    """What one input line owes the output: a deliverable.

    ``done()``/``wait()``/``add_done_callback`` gate *when* it can be
    delivered; ``deliver(write)`` writes its line(s) — event frames, if
    any, then exactly one envelope — and returns the protocol-error
    increment.  Immediate answers (acks, polls, cancels, replays) are
    born done; job-backed answers become done with their job.
    """

    def __init__(self, line: str) -> None:
        self.line = line

    def done(self) -> bool:
        return True

    def wait(self) -> None:
        pass

    def add_done_callback(self, callback) -> None:
        callback(self)

    def deliver(self, write) -> int:
        raise NotImplementedError


class _ImmediateAnswer(_Answer):
    def __init__(self, line: str, payloads: list[dict],
                 protocol_error: bool = False) -> None:
        super().__init__(line)
        self.payloads = payloads
        self.protocol_error = protocol_error

    def deliver(self, write) -> int:
        for payload in self.payloads:
            write(payload)
        return 1 if self.protocol_error else 0


class _JobAnswer(_Answer):
    """The classic shape: one request line, its job's final envelope."""

    def __init__(self, line: str, job: JobHandle) -> None:
        super().__init__(line)
        self.job = job

    def done(self) -> bool:
        return self.job.done()

    def wait(self) -> None:
        self.job.wait()

    def add_done_callback(self, callback) -> None:
        self.job.add_done_callback(lambda _job: callback(self))

    def deliver(self, write) -> int:
        try:
            envelope = self.job.result()
        except JobCancelledError:
            write(_cancelled_envelope(self.job).to_dict())
            return 0
        except Exception as exc:  # defensive: a service must answer
            write(_protocol_error(self.line, exc))
            return 1
        errors = 1 if envelope.protocol_error else 0
        write(envelope.to_dict())
        return errors


class _StreamAnswer(_JobAnswer):
    """A streaming submit: event frames, then the final envelope.

    With *live* set (unordered serving), a subscriber attached at
    submit time already wrote each frame the moment it happened;
    delivery adds only the final envelope.  Without it (ordered
    serving, where mid-stream writes would break response order), the
    retained event history replays as frames right before the
    envelope.
    """

    def __init__(self, line: str, job: JobHandle, live: bool) -> None:
        super().__init__(line, job)
        self.live = live

    def deliver(self, write) -> int:
        if not self.live:
            for seq, event in self.job.indexed_events():
                write(EventFrame(self.job.job_id, seq, event).to_dict())
        return super().deliver(write)


def _submit_answer(service, session, request: SubmitRequest, line,
                   live_writer) -> _Answer:
    try:
        inner = request.inner()
    except ProtocolError as exc:
        return _ImmediateAnswer(
            line, [_protocol_error(line, exc)], protocol_error=True
        )
    if request.stream:
        if live_writer is not None:
            seq = itertools.count()

            def frames(event: dict) -> None:
                live_writer(
                    EventFrame(
                        event.get("job_id"), next(seq), event
                    ).to_dict()
                )

            job = service.submit(inner, progress=frames)
            session.track(job)
            return _StreamAnswer(line, job, live=True)
        job = service.submit(inner)
        session.track(job)
        return _StreamAnswer(line, job, live=False)
    job = service.submit(inner)
    session.track(job)
    ack = ResultEnvelope(
        request=request,
        result={"job_id": job.job_id, "status": job.status()},
        job_id=job.job_id,
        backend=job.backend,
    )
    return _ImmediateAnswer(line, [ack.to_dict()])


def _poll_answer(request: PollRequest, job: JobHandle, line) -> _Answer:
    done = job.done()
    result = {"job_id": job.job_id, "status": job.status(), "done": done}
    if done:
        try:
            result["envelope"] = job.result(timeout=0).to_dict()
        except JobCancelledError:
            result["envelope"] = None
    envelope = ResultEnvelope(
        request=request, result=result,
        job_id=job.job_id, backend=job.backend,
    )
    return _ImmediateAnswer(line, [envelope.to_dict()])


def _events_answer(request: EventsRequest, job: JobHandle, line) -> _Answer:
    events, cursor = job.event_snapshot(after=request.after)
    payloads = [
        EventFrame(job.job_id, seq, event).to_dict()
        for seq, event in events
    ]
    payloads.append(ResultEnvelope(
        request=request,
        result={
            "job_id": job.job_id,
            "status": job.status(),
            "next": cursor,
            "dropped_events": job.dropped_events,
        },
        job_id=job.job_id,
        backend=job.backend,
    ).to_dict())
    return _ImmediateAnswer(line, payloads)


def _cancel_answer(request: CancelRequest, job: JobHandle, line) -> _Answer:
    cancelled = job.cancel()
    envelope = ResultEnvelope(
        request=request,
        result={
            "job_id": job.job_id,
            "cancelled": cancelled,
            "status": job.status(),
        },
        job_id=job.job_id,
        backend=job.backend,
    )
    return _ImmediateAnswer(line, [envelope.to_dict()])


def _job_queue_answer(service, session, request, line,
                      live_writer=None) -> _Answer | None:
    """The answer for a v3 job-queue request, or ``None`` for every
    other kind (which executes as a job the classic way)."""
    if isinstance(request, SubmitRequest):
        return _submit_answer(service, session, request, line, live_writer)
    if isinstance(request, (PollRequest, EventsRequest, CancelRequest)):
        job = session.lookup(request.job_id)
        if job is None:
            return _ImmediateAnswer(
                line, [_unknown_job(request, request.job_id)]
            )
        if isinstance(request, PollRequest):
            return _poll_answer(request, job, line)
        if isinstance(request, EventsRequest):
            return _events_answer(request, job, line)
        return _cancel_answer(request, job, line)
    return None


def serve_forever(
    service: AnalysisService | None = None,
    lines: Iterable[str] | None = None,
    out: IO[str] | None = None,
    unordered: bool = False,
) -> ServeResult:
    """Serve requests from *lines* until EOF; returns a :class:`ServeResult`
    (the number of lines answered, plus the protocol-error tally).

    Defaults: the process-wide default service, ``sys.stdin`` and
    ``sys.stdout`` — i.e. ``python -m repro serve``.  Every input line
    is answered, malformed ones with an ``ok=false`` error object, so a
    driving process can always match responses to requests by count (or
    by ``request_id`` echo); streaming responses may precede their
    envelope with event-frame lines (distinguished by ``"frame":
    "event"``), which do not count as answers.  With *unordered* set,
    each envelope is written as its request completes (matching by
    count no longer pairs responses with requests — use ``request_id``)
    and stream-submit frames go out live.
    """
    service = service or default_service()
    lines = lines if lines is not None else sys.stdin
    out = out or sys.stdout

    if unordered:
        return _serve_unordered(service, lines, out)
    return _serve_ordered(service, lines, out)


def _serve_ordered(service, lines, out) -> ServeResult:
    session = _JobSession(service)
    answered = 0
    protocol_errors = 0
    #: (input-order) answers not yet written; popped as they complete.
    pending: deque[_Answer] = deque()

    def write(payload: dict) -> None:
        _write(out, payload)

    def drain(block: bool) -> None:
        nonlocal answered, protocol_errors
        while pending and (block or pending[0].done()):
            answer = pending.popleft()
            answer.wait()
            protocol_errors += answer.deliver(write)
            answered += 1

    for raw in lines:
        line = raw.strip()
        if not line:
            continue
        try:
            request = request_from_json(line)
        except Exception as exc:
            # Flush earlier answers first so output stays in order.
            drain(block=True)
            _write(out, _protocol_error(line, exc))
            answered += 1
            protocol_errors += 1
            continue
        answer = _job_queue_answer(service, session, request, line)
        if answer is None:
            answer = _JobAnswer(line, service.submit(request))
        pending.append(answer)
        drain(block=False)
    drain(block=True)
    return ServeResult(answered, protocol_errors)


def _serve_unordered(service, lines, out) -> ServeResult:
    """Write each envelope as its request completes.

    Jobs finish on service worker threads, so writes go through one
    lock; the ``request_id`` echo is the caller's correlation handle.
    Delivered jobs leave the pending map immediately — a long-lived
    worker connection streaming thousands of requests must not pin
    every answered job's envelope and event history until EOF.
    Streaming submits write their event frames live, under the same
    lock, interleaved with whatever else completes — frames carry
    their ``job_id``, envelopes their ``request_id`` echo, so clients
    demultiplex either way.
    """
    session = _JobSession(service)
    write_lock = threading.Lock()
    counters = {"answered": 0, "protocol_errors": 0}
    #: id(answer) -> answer for lines not yet written; popped on
    #: delivery, so exactly-once falls out of the pop and answered
    #: handles become collectable while the connection stays open.
    pending: dict[int, _Answer] = {}

    def locked_write(payload: dict) -> None:
        with write_lock:
            _write(out, payload)

    def deliver(answer: _Answer) -> None:
        with write_lock:
            if pending.pop(id(answer), None) is None:
                return  # the done-callback and the EOF sweep raced
            counters["protocol_errors"] += answer.deliver(
                lambda payload: _write(out, payload)
            )
            counters["answered"] += 1

    for raw in lines:
        line = raw.strip()
        if not line:
            continue
        try:
            request = request_from_json(line)
        except Exception as exc:
            with write_lock:
                _write(out, _protocol_error(line, exc))
                counters["answered"] += 1
                counters["protocol_errors"] += 1
            continue
        answer = _job_queue_answer(
            service, session, request, line, live_writer=locked_write
        )
        if answer is None:
            answer = _JobAnswer(line, service.submit(request))
        with write_lock:
            pending[id(answer)] = answer
        answer.add_done_callback(deliver)
    # EOF sweep: make sure every answer is on the wire before
    # reporting (callbacks give timeliness; this gives completeness).
    while True:
        with write_lock:
            if not pending:
                break
            answer = next(iter(pending.values()))
        answer.wait()
        deliver(answer)
    with write_lock:
        return ServeResult(
            counters["answered"], counters["protocol_errors"]
        )
