"""repro — reproduction of *Thermal-Aware Data Flow Analysis* (DAC 2009).

Ayala, Atienza and Brisk propose that a compiler can predict the thermal
state of the register file at every program point with a forward data
flow analysis, and use the prediction to drive thermal-aware
optimization without the usual emulate-and-recompile feedback loop.

This package is a complete implementation of that idea and of every
substrate it needs:

* :mod:`repro.ir` — three-address IR, CFG, parser/printer/verifier;
* :mod:`repro.dataflow` — classic data flow framework and analyses;
* :mod:`repro.arch` — register file geometry and energy model;
* :mod:`repro.thermal` — HotSpot-style RC thermal network;
* :mod:`repro.regalloc` — allocators and the Fig. 1 assignment policies;
* :mod:`repro.core` — **the thermal data flow analysis** (Fig. 2),
  predictive pre-allocation placements, critical variables, rules;
* :mod:`repro.opt` — the §4 optimizations and the full pipeline;
* :mod:`repro.sim` — interpreter + thermal emulator (the feedback-driven
  reference flow) and accuracy scoring;
* :mod:`repro.workloads` — kernels and generators.

Quickstart
----------
>>> from repro import analyze, rf64
>>> from repro.workloads import load
>>> from repro.regalloc import allocate_linear_scan
>>> machine = rf64()
>>> allocated = allocate_linear_scan(load("fir").function, machine)
>>> result = analyze(allocated.function, machine, delta=0.05)
>>> result.converged
True
"""

from .arch import (
    DEFAULT_MACHINE,
    EnergyModel,
    MachineDescription,
    RegisterFileGeometry,
    rf16,
    rf32,
    rf64,
)
from .core import (
    AffineTransfer,
    AllocationPlacement,
    AnalysisContext,
    BlockTransferCache,
    ExactPlacement,
    FunctionSummary,
    PolicyPlacement,
    SuiteReport,
    TDFAConfig,
    TDFAResult,
    ThermalDataflowAnalysis,
    UniformPlacement,
    analyze,
    compile_block,
    compose_pipeline,
    evaluate_rules,
    rank_critical_variables,
    run_suite,
    summarize_function,
)
from .errors import (
    AllocationError,
    ConvergenceError,
    DataflowError,
    IRError,
    ParseError,
    ReproError,
    SimulationError,
    ThermalModelError,
    VerificationError,
)
from .opt import ThermalAwareCompiler
from .sim import Interpreter, ThermalEmulator
from .thermal import RFThermalModel, ThermalGrid, ThermalParams, ThermalState

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # machines
    "MachineDescription",
    "RegisterFileGeometry",
    "EnergyModel",
    "DEFAULT_MACHINE",
    "rf16",
    "rf32",
    "rf64",
    # core analysis
    "ThermalDataflowAnalysis",
    "TDFAConfig",
    "TDFAResult",
    "analyze",
    "AnalysisContext",
    "SuiteReport",
    "run_suite",
    "AffineTransfer",
    "BlockTransferCache",
    "compile_block",
    "FunctionSummary",
    "summarize_function",
    "compose_pipeline",
    "ExactPlacement",
    "UniformPlacement",
    "PolicyPlacement",
    "AllocationPlacement",
    "rank_critical_variables",
    "evaluate_rules",
    # thermal substrate
    "RFThermalModel",
    "ThermalGrid",
    "ThermalParams",
    "ThermalState",
    # flows
    "ThermalAwareCompiler",
    "Interpreter",
    "ThermalEmulator",
    # errors
    "ReproError",
    "IRError",
    "ParseError",
    "VerificationError",
    "DataflowError",
    "AllocationError",
    "ThermalModelError",
    "SimulationError",
    "ConvergenceError",
]
