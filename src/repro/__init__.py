"""repro — reproduction of *Thermal-Aware Data Flow Analysis* (DAC 2009).

Ayala, Atienza and Brisk propose that a compiler can predict the thermal
state of the register file at every program point with a forward data
flow analysis, and use the prediction to drive thermal-aware
optimization without the usual emulate-and-recompile feedback loop.

This package is a complete implementation of that idea and of every
substrate it needs:

* :mod:`repro.ir` — three-address IR, CFG, parser/printer/verifier;
* :mod:`repro.dataflow` — classic data flow framework and analyses;
* :mod:`repro.arch` — register file geometry and energy model;
* :mod:`repro.thermal` — HotSpot-style RC thermal network;
* :mod:`repro.regalloc` — allocators and the Fig. 1 assignment policies;
* :mod:`repro.core` — **the thermal data flow analysis** (Fig. 2),
  the shared :class:`~repro.core.context.AnalysisContext` runtime,
  predictive pre-allocation placements, critical variables, rules;
* :mod:`repro.service` — the declarative request/response front-end:
  frozen request dataclasses, :class:`~repro.service.AnalysisService`,
  the schema-versioned :class:`~repro.service.ResultEnvelope` and the
  line-delimited JSON pipe server;
* :mod:`repro.sched` — thermal-aware schedule search: candidate spaces
  over stage orderings/placements, pluggable strategies and objectives,
  :func:`~repro.sched.optimize_schedule` returning the argmin schedule
  with full pipeline evidence;
* :mod:`repro.opt` — the §4 optimizations and the full pipeline;
* :mod:`repro.sim` — interpreter + thermal emulator (the feedback-driven
  reference flow) and accuracy scoring;
* :mod:`repro.workloads` — kernels and generators;
* :mod:`repro.obs` — observability: the process-wide
  :class:`~repro.obs.MetricsRegistry` (disabled by default; when
  enabled, counters/timers ride home on every envelope's ``metrics``
  field and as ``obs`` events on the job stream), the benchmark trend
  store with its CI regression gate (``python -m repro bench trend
  --gate``) and the terminal dashboard (``python -m repro dash``).

Quickstart
----------
The service API is the front door: describe the run as a request, get a
uniform envelope back, and let every request in the process share one
analysis runtime (thermal model, factorizations, compiled transfers).

>>> from repro.service import AnalysisRequest, AnalysisService
>>> service = AnalysisService()
>>> envelope = service.execute(AnalysisRequest(workload="fir", delta=0.05))
>>> envelope.converged
True
>>> round(envelope.result["peak_delta_kelvin"], 1) > 0
True

Requests round-trip through JSON (``request.to_dict()``,
``envelope.to_json()``), ``service.submit(request)`` returns a
:class:`~repro.service.JobHandle` (status, progress events, ``result()``,
``cancel()``) executed on a pluggable backend — in-process, local
worker processes, or remote ``python -m repro worker`` sockets — and
``python -m repro serve`` exposes the same surface over a
line-delimited JSON pipe.

With metrics enabled (:func:`repro.obs.enable_metrics`, or ``--metrics``
on the CLI) each envelope additionally carries a ``metrics`` snapshot —
sweep counts, cache hit/miss counters, dispatch/retry totals and
request timings; with metrics disabled the key is absent and envelopes
are byte-identical to earlier releases.

The classic function API still works and now shares the same runtime —
``analyze`` / ``run_suite`` below delegate to a process-wide default
service:

>>> from repro import analyze, rf64
>>> from repro.workloads import load
>>> from repro.regalloc import allocate_linear_scan
>>> machine = rf64()
>>> allocated = allocate_linear_scan(load("fir").function, machine)
>>> analyze(allocated.function, machine, delta=0.05).converged
True
"""

from .arch import (
    DEFAULT_MACHINE,
    EnergyModel,
    MachineDescription,
    RegisterFileGeometry,
    rf16,
    rf32,
    rf64,
)
from .core import (
    AffineTransfer,
    AllocationPlacement,
    AnalysisContext,
    BlockTransferCache,
    ExactPlacement,
    FunctionSummary,
    PipelineAnalysis,
    PipelineReport,
    PolicyPlacement,
    SuiteReport,
    TDFAConfig,
    TDFAResult,
    ThermalDataflowAnalysis,
    UniformPlacement,
    compile_block,
    compose_pipeline,
    evaluate_rules,
    rank_critical_variables,
    run_pipeline,
    summarize_function,
    summarize_in_context,
)
from .core import analyze as _core_analyze
from .core import run_suite as _core_run_suite
from .core.estimator import PlacementModel
from .errors import (
    AllocationError,
    ConvergenceError,
    DataflowError,
    IRError,
    JobCancelledError,
    ParseError,
    ProtocolError,
    ReproError,
    SimulationError,
    ThermalModelError,
    UnknownWorkloadError,
    VerificationError,
    WorkerError,
)
from .ir.function import Function
from .obs import MetricsRegistry, enable_metrics
from .opt import ThermalAwareCompiler
from .sched import ScheduleReport, optimize_schedule
from .service import (
    AnalysisRequest,
    AnalysisService,
    CompileRequest,
    EmulateRequest,
    InlineBackend,
    JobHandle,
    ProcessBackend,
    RemoteBackend,
    ResultEnvelope,
    ScheduleRequest,
    SuiteRequest,
    WorkerServer,
    default_service,
    serve_forever,
)
from .sim import Interpreter, ThermalEmulator
from .thermal import RFThermalModel, ThermalGrid, ThermalParams, ThermalState

__version__ = "1.9.0"


def analyze(
    function: Function,
    machine: MachineDescription,
    delta: float = 0.01,
    merge: str = "freq",
    max_iterations: int = 2000,
    placement: PlacementModel | None = None,
    model: RFThermalModel | None = None,
    engine: str = "auto",
    sweep: str = "auto",
) -> TDFAResult:
    """Analyze *function* through the process-wide default service.

    Compatibility shim over :meth:`AnalysisContext.analyze
    <repro.core.context.AnalysisContext.analyze>`: same signature and
    result as the pre-1.2 free function, but repeated calls share the
    default service's context for *machine* — the thermal model is
    factorized once per process, not once per call.  Passing an
    explicit *model* opts out of sharing (the model is the cache).
    """
    if model is not None:
        return _core_analyze(
            function, machine, delta=delta, merge=merge,
            max_iterations=max_iterations, placement=placement,
            model=model, engine=engine, sweep=sweep,
        )
    context = default_service().context_for(machine)
    with context.lock:
        return context.analyze(
            function,
            placement=placement,
            delta=delta,
            merge=merge,
            max_iterations=max_iterations,
            engine=engine,
            sweep=sweep,
        )


def run_suite(
    names: list[str] | None = None,
    machine_name: str = "rf64",
    *,
    context: AnalysisContext | None = None,
    chip: bool = False,
    **kwargs,
) -> SuiteReport:
    """Run the workload suite through the process-wide default service.

    Compatibility shim over :func:`repro.core.suite_runner.run_suite`:
    identical signature and report, but single-process runs without an
    explicit *context* are served by the default service's shared
    context for ``(machine_name, chip)`` — so suite runs amortize the
    same runtime the other entry points use.
    """
    if context is None and kwargs.get("processes", 1) == 1:
        service = default_service()
        context = service.context_for(machine_name, chip=chip)
        with context.lock:
            return _core_run_suite(
                names, machine_name, context=context, chip=chip, **kwargs
            )
    return _core_run_suite(
        names, machine_name, context=context, chip=chip, **kwargs
    )


__all__ = [
    "__version__",
    # machines
    "MachineDescription",
    "RegisterFileGeometry",
    "EnergyModel",
    "DEFAULT_MACHINE",
    "rf16",
    "rf32",
    "rf64",
    # core analysis
    "ThermalDataflowAnalysis",
    "TDFAConfig",
    "TDFAResult",
    "analyze",
    "AnalysisContext",
    "SuiteReport",
    "run_suite",
    "PipelineAnalysis",
    "PipelineReport",
    "run_pipeline",
    "AffineTransfer",
    "BlockTransferCache",
    "compile_block",
    "FunctionSummary",
    "summarize_function",
    "summarize_in_context",
    "compose_pipeline",
    "ExactPlacement",
    "UniformPlacement",
    "PolicyPlacement",
    "AllocationPlacement",
    "rank_critical_variables",
    "evaluate_rules",
    # schedule search
    "ScheduleReport",
    "optimize_schedule",
    # service front-end
    "AnalysisService",
    "AnalysisRequest",
    "CompileRequest",
    "EmulateRequest",
    "SuiteRequest",
    "ScheduleRequest",
    "ResultEnvelope",
    "JobHandle",
    "InlineBackend",
    "ProcessBackend",
    "RemoteBackend",
    "WorkerServer",
    "default_service",
    "serve_forever",
    # observability
    "MetricsRegistry",
    "enable_metrics",
    # thermal substrate
    "RFThermalModel",
    "ThermalGrid",
    "ThermalParams",
    "ThermalState",
    # flows
    "ThermalAwareCompiler",
    "Interpreter",
    "ThermalEmulator",
    # errors
    "ReproError",
    "IRError",
    "ParseError",
    "VerificationError",
    "DataflowError",
    "AllocationError",
    "UnknownWorkloadError",
    "ThermalModelError",
    "SimulationError",
    "ConvergenceError",
    "ProtocolError",
    "WorkerError",
    "JobCancelledError",
]
