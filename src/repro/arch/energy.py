"""Access-energy and leakage model of the register file.

These are the "technology coefficients of logic activity and peak power"
that the paper's §4 links analytically to instruction-level information.
Defaults are in the range published for 90 nm register files (the node
of the paper's cited thermal models): a few picojoules per access at a
1 ns cycle, with temperature-dependent subthreshold leakage.

The model is deliberately simple and fully parameterized — every claim
in the paper is about *relative* thermal behaviour (which policy
concentrates power, which variables create hot spots), which survives
any monotone re-calibration of these constants.
"""

from __future__ import annotations

from dataclasses import dataclass

import math

from ..errors import ThermalModelError


@dataclass(frozen=True)
class EnergyModel:
    """Per-access energy and leakage of one register cell.

    Parameters
    ----------
    read_energy / write_energy:
        Joules per 32-bit read/write access to one register.
    cycle_time:
        Seconds per clock cycle (1 ns = 1 GHz default).
    leakage_power:
        Watts of static leakage per cell at ``leakage_ref_temp``.
    leakage_temp_coeff:
        Exponential temperature coefficient β in
        ``P_leak(T) = leakage_power * exp(β (T - T_ref))``; published
        subthreshold-leakage fits give roughly 0.01–0.05 1/K at 90 nm.
        Set to 0 for a linear (temperature-independent) model — the
        paper's convergence discussion hinges on this knob.
    leakage_ref_temp:
        Reference temperature (K) for ``leakage_power``.
    bitwidth_scaling:
        If True, access energy scales linearly with operand bitwidth /
        32 (the paper's §3/§4 link to bitwidth analysis).
    alu_energy:
        Joules per executed ALU operation, dissipated in the ALU block
        of the chip-level model (ignored by the RF-only model).
    cache_access_energy:
        Joules per load/store/spill/reload, dissipated in the D-cache
        block of the chip-level model (ignored by the RF-only model).
    """

    read_energy: float = 4.0e-12
    write_energy: float = 6.0e-12
    cycle_time: float = 1.0e-9
    leakage_power: float = 1.0e-5
    leakage_temp_coeff: float = 0.0
    leakage_ref_temp: float = 318.15  # 45 °C
    bitwidth_scaling: bool = False
    alu_energy: float = 8.0e-12
    cache_access_energy: float = 25.0e-12

    def __post_init__(self) -> None:
        if min(self.read_energy, self.write_energy) < 0:
            raise ThermalModelError("access energies must be non-negative")
        if self.cycle_time <= 0:
            raise ThermalModelError("cycle_time must be positive")
        if self.leakage_power < 0:
            raise ThermalModelError("leakage_power must be non-negative")

    def access_energy(self, is_write: bool, bitwidth: int = 32) -> float:
        """Energy of one access, optionally scaled by operand bitwidth."""
        energy = self.write_energy if is_write else self.read_energy
        if self.bitwidth_scaling:
            energy *= max(1, min(bitwidth, 32)) / 32.0
        return energy

    def access_power(self, is_write: bool, bitwidth: int = 32) -> float:
        """Average power of one access spread over one cycle (W)."""
        return self.access_energy(is_write, bitwidth) / self.cycle_time

    def leakage_at(self, temperature: float) -> float:
        """Leakage power (W) of one cell at *temperature* (K)."""
        if self.leakage_temp_coeff == 0.0:
            return self.leakage_power
        exponent = self.leakage_temp_coeff * (temperature - self.leakage_ref_temp)
        # Clamp to avoid overflow during thermal-runaway experiments.
        return self.leakage_power * math.exp(min(exponent, 50.0))

    def with_leakage_feedback(self, coeff: float = 0.03) -> "EnergyModel":
        """A copy of this model with exponential leakage feedback enabled."""
        return EnergyModel(
            read_energy=self.read_energy,
            write_energy=self.write_energy,
            cycle_time=self.cycle_time,
            leakage_power=self.leakage_power,
            leakage_temp_coeff=coeff,
            leakage_ref_temp=self.leakage_ref_temp,
            bitwidth_scaling=self.bitwidth_scaling,
        )
