"""Target machine models: RF geometry, energy coefficients, presets."""

from .energy import EnergyModel
from .machine import MachineDescription
from .presets import (
    DEFAULT_MACHINE,
    MACHINE_PRESETS,
    banked_rf64,
    rf16,
    rf32,
    rf64,
)
from .registerfile import RegisterFileGeometry

__all__ = [
    "EnergyModel",
    "MachineDescription",
    "RegisterFileGeometry",
    "DEFAULT_MACHINE",
    "rf16",
    "rf32",
    "rf64",
    "banked_rf64",
    "MACHINE_PRESETS",
]
