"""Machine description: everything the compiler knows about the target."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ThermalModelError
from .energy import EnergyModel
from .registerfile import RegisterFileGeometry


@dataclass(frozen=True)
class MachineDescription:
    """A single-issue RISC machine with an exposed register file layout.

    Parameters
    ----------
    name:
        Human-readable identifier (used in reports and bench tables).
    geometry:
        Physical register file layout.
    energy:
        Access energy / leakage model.
    reserved_registers:
        Register indices the allocator must not use (e.g. r0/r1 held for
        spill addressing on real ISAs).  The allocatable set is everything
        else.
    load_latency / store_latency:
        Cycles per memory operation — spilling costs performance, which
        is the trade-off E4 measures.
    """

    name: str = "rf64"
    geometry: RegisterFileGeometry = field(default_factory=RegisterFileGeometry)
    energy: EnergyModel = field(default_factory=EnergyModel)
    reserved_registers: tuple[int, ...] = ()
    load_latency: int = 3
    store_latency: int = 1

    def __post_init__(self) -> None:
        for r in self.reserved_registers:
            if not 0 <= r < self.geometry.num_registers:
                raise ThermalModelError(f"reserved register {r} out of range")
        if len(self.allocatable_registers()) == 0:
            raise ThermalModelError("no allocatable registers remain")

    @property
    def num_registers(self) -> int:
        return self.geometry.num_registers

    def allocatable_registers(self) -> list[int]:
        """Indices available to the register allocator, ascending."""
        reserved = set(self.reserved_registers)
        return [i for i in range(self.geometry.num_registers) if i not in reserved]

    def instruction_latency(self, opcode) -> int:
        """Cycle cost of one instruction (single-issue in-order model)."""
        from ..ir.instructions import Opcode

        if opcode in (Opcode.LOAD, Opcode.RELOAD):
            return self.load_latency
        if opcode in (Opcode.STORE, Opcode.SPILL):
            return self.store_latency
        if opcode in (Opcode.MUL,):
            return 3
        if opcode in (Opcode.DIV, Opcode.REM):
            return 10
        return 1
