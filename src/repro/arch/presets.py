"""Pre-configured machine descriptions used throughout the benches.

``RF64`` (8×8) is the default evaluation target: large enough for the
chessboard policy to show its effect, matching the RF sizes of the
VLIW/embedded processors in the papers this one cites.  ``RF32`` and
``RF16`` provide pressure-stressed variants for the E5 sweep.
"""

from __future__ import annotations

from .energy import EnergyModel
from .machine import MachineDescription
from .registerfile import RegisterFileGeometry


def rf64(leakage_feedback: float = 0.0) -> MachineDescription:
    """8×8, 64-entry register file at 1 GHz (the default target)."""
    energy = EnergyModel(leakage_temp_coeff=leakage_feedback)
    return MachineDescription(
        name="rf64",
        geometry=RegisterFileGeometry(rows=8, cols=8),
        energy=energy,
    )


def rf32(leakage_feedback: float = 0.0) -> MachineDescription:
    """4×8, 32-entry register file (MIPS/ARM-like integer RF)."""
    energy = EnergyModel(leakage_temp_coeff=leakage_feedback)
    return MachineDescription(
        name="rf32",
        geometry=RegisterFileGeometry(rows=4, cols=8),
        energy=energy,
    )


def rf16(leakage_feedback: float = 0.0) -> MachineDescription:
    """4×4, 16-entry register file (pressure-stressed embedded target)."""
    energy = EnergyModel(leakage_temp_coeff=leakage_feedback)
    return MachineDescription(
        name="rf16",
        geometry=RegisterFileGeometry(rows=4, cols=4),
        energy=energy,
    )


def banked_rf64(banks: int = 4) -> MachineDescription:
    """64-entry RF with column banks, for the bank switch-off discussion."""
    return MachineDescription(
        name=f"rf64b{banks}",
        geometry=RegisterFileGeometry(rows=8, cols=8, banks=banks),
        energy=EnergyModel(),
    )


DEFAULT_MACHINE = rf64()

#: Name → factory registry of the CLI-selectable presets.  The single
#: source of truth for every surface that takes a ``--machine`` name.
MACHINE_PRESETS = {"rf16": rf16, "rf32": rf32, "rf64": rf64}
