"""Register file geometry: the floorplan the thermal state lives on.

The paper's analysis is "floorplan-aware" (§3): it must know where each
architectural register sits so that accesses can be attributed to
physical locations.  We model the RF as a ``rows × cols`` array of
identical register cells (a standard RF layout), optionally divided into
column banks (for the bank-switch-off discussion in §4).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ThermalModelError


@dataclass(frozen=True)
class RegisterFileGeometry:
    """Physical layout of the register file.

    Parameters
    ----------
    rows, cols:
        Cell grid dimensions; ``rows * cols`` is the architectural
        register count.
    cell_width, cell_height:
        Cell dimensions in metres.  Defaults approximate a 32-bit
        register cell in a 90 nm process (the technology node of the
        thermal models the paper cites).
    banks:
        Number of banks.  Banking is by contiguous index range (bank 0 =
        registers 0..N/banks-1, ...), i.e. horizontal stripes of the
        row-major cell grid — the layout real RFs use for per-bank power
        gating.  Must divide ``rows * cols``.
    """

    rows: int = 8
    cols: int = 8
    cell_width: float = 30e-6
    cell_height: float = 25e-6
    banks: int = 1

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ThermalModelError("register file dimensions must be positive")
        if self.cell_width <= 0 or self.cell_height <= 0:
            raise ThermalModelError("cell dimensions must be positive")
        if self.banks <= 0 or (self.rows * self.cols) % self.banks != 0:
            raise ThermalModelError(
                "banks must be positive and divide the register count"
            )

    @property
    def num_registers(self) -> int:
        """Architectural register count."""
        return self.rows * self.cols

    @property
    def width(self) -> float:
        """Total RF width in metres."""
        return self.cols * self.cell_width

    @property
    def height(self) -> float:
        """Total RF height in metres."""
        return self.rows * self.cell_height

    @property
    def cell_area(self) -> float:
        """Area of one register cell in m²."""
        return self.cell_width * self.cell_height

    def position(self, index: int) -> tuple[int, int]:
        """(row, col) of register *index*; row-major numbering."""
        if not 0 <= index < self.num_registers:
            raise ThermalModelError(
                f"register index {index} out of range 0..{self.num_registers - 1}"
            )
        return divmod(index, self.cols)

    def index(self, row: int, col: int) -> int:
        """Register index at (row, col)."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ThermalModelError(f"cell ({row}, {col}) out of range")
        return row * self.cols + col

    def center(self, index: int) -> tuple[float, float]:
        """Physical centre (x, y) in metres of register *index*."""
        row, col = self.position(index)
        return (
            (col + 0.5) * self.cell_width,
            (row + 0.5) * self.cell_height,
        )

    def bank_of(self, index: int) -> int:
        """Bank number of register *index* (contiguous index-range banks)."""
        if not 0 <= index < self.num_registers:
            raise ThermalModelError(f"register index {index} out of range")
        return index // (self.num_registers // self.banks)

    def registers_in_bank(self, bank: int) -> list[int]:
        """All register indices belonging to *bank*."""
        if not 0 <= bank < self.banks:
            raise ThermalModelError(f"bank {bank} out of range 0..{self.banks - 1}")
        size = self.num_registers // self.banks
        return list(range(bank * size, (bank + 1) * size))

    def manhattan_distance(self, a: int, b: int) -> int:
        """Cell-grid Manhattan distance between two registers.

        Used by the spreading policies: assigning interfering variables
        to registers that are far apart is exactly §4's "disparate
        regions of the RF".
        """
        ra, ca = self.position(a)
        rb, cb = self.position(b)
        return abs(ra - rb) + abs(ca - cb)

    def chessboard_color(self, index: int) -> int:
        """0/1 colour of the cell in a chessboard pattern (Fig. 1(c))."""
        row, col = self.position(index)
        return (row + col) % 2

    def chessboard_registers(self, color: int = 0) -> list[int]:
        """Register indices of one chessboard colour class."""
        return [
            i for i in range(self.num_registers) if self.chessboard_color(i) == color
        ]
