"""The candidate space of a schedule search.

A *candidate* is one concrete way to run a pipeline of stages: an
ordering of the stage indices (a permutation — interleavings of
repeated kernels are just orderings of the stage multiset) plus,
optionally, a per-slot register-assignment *placement* policy.  At the
chip level an assignment policy decides which physical register cells —
which die coordinates — a kernel's heat lands on, so the policy axis is
the placement axis of the search: the same kernel scheduled into the
same slot under ``first-free`` versus ``chessboard`` occupies a
different region of the die.

Two orderings that run *equal* stages in swapped positions describe the
same physical schedule, so the space deduplicates them: stages carry
hashable *keys* (equal keys ⇔ interchangeable stages, e.g. two
occurrences of the same kernel) and enumeration yields exactly one
representative per distinct key sequence — the lexicographically
smallest index order.  Enumeration order is deterministic and starts at
the identity candidate, which is what lets a sharding coordinator and
an inline run agree on the argmin bit for bit (same candidates, same
order, same tie-break).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import factorial

from ..errors import DataflowError


@dataclass(frozen=True)
class Candidate:
    """One point of the schedule space.

    ``order[j]`` is the original stage index executed in slot *j*;
    ``policies[j]``, when present, is the assignment-policy name the
    slot-*j* stage is allocated under (``None`` means the search's base
    policy everywhere).
    """

    order: tuple[int, ...]
    policies: tuple[str, ...] | None = None

    def key(self) -> tuple:
        """Total-order key: the deterministic tie-break of the search.

        Candidates with equal objective scores resolve to the smallest
        key, so every strategy — and every shard of a fanned-out
        exhaustive search — picks the same argmin.
        """
        return (self.order, self.policies or ())

    def __len__(self) -> int:
        return len(self.order)


class ScheduleSpace:
    """Orderings of a stage multiset × optional per-slot placements.

    Parameters
    ----------
    stage_keys:
        One hashable key per stage; stages with equal keys are
        interchangeable (repeated kernels), and orderings differing only
        by a swap of equal-key stages count once.
    placements:
        Optional assignment-policy names to search per slot.  ``None``
        keeps the placement axis closed (every slot uses the base
        policy) — the pure ordering/interleaving search.
    """

    def __init__(self, stage_keys, placements=None) -> None:
        self.stage_keys = list(stage_keys)
        if not self.stage_keys:
            raise DataflowError("a schedule space needs at least one stage")
        self.placements = tuple(placements) if placements else None
        if self.placements is not None and not self.placements:
            self.placements = None

    @property
    def num_stages(self) -> int:
        return len(self.stage_keys)

    def identity(self) -> Candidate:
        """The as-given schedule: input order, base policy everywhere."""
        return Candidate(order=tuple(range(self.num_stages)))

    def size(self) -> int:
        """Exact number of distinct candidates (may be astronomically
        large — callers cap enumeration with a budget, never with this)."""
        counts: dict = {}
        for key in self.stage_keys:
            counts[key] = counts.get(key, 0) + 1
        orders = factorial(self.num_stages)
        for count in counts.values():
            orders //= factorial(count)
        if self.placements is None:
            return orders
        return orders * len(self.placements) ** self.num_stages

    def enumerate_orders(self):
        """Distinct stage orders, lexicographically by index tuple.

        Among equal-key stages the smallest original index always comes
        first, so the first yield is the identity order.
        """
        keys = self.stage_keys

        def expand(prefix: tuple[int, ...], remaining: tuple[int, ...]):
            if not remaining:
                yield prefix
                return
            seen = set()
            for i, idx in enumerate(remaining):
                if keys[idx] in seen:
                    continue
                seen.add(keys[idx])
                yield from expand(
                    prefix + (idx,), remaining[:i] + remaining[i + 1:]
                )

        yield from expand((), tuple(range(self.num_stages)))

    def enumerate_candidates(self, limit: int | None = None):
        """Candidates in deterministic order, optionally budget-capped.

        Orders enumerate in the :meth:`enumerate_orders` sequence; with
        a placement axis, each order expands into every per-slot policy
        assignment (policies vary fastest).  The identity candidate is
        always first when the placement axis is closed.
        """
        count = 0
        for order in self.enumerate_orders():
            if self.placements is None:
                if limit is not None and count >= limit:
                    return
                count += 1
                yield Candidate(order=order)
                continue
            for policies in _policy_product(self.placements, len(order)):
                if limit is not None and count >= limit:
                    return
                count += 1
                yield Candidate(order=order, policies=policies)


def _policy_product(placements: tuple[str, ...], slots: int):
    """All per-slot policy assignments, last slot varying fastest."""
    from itertools import product

    yield from product(placements, repeat=slots)


def stage_keys_for(workloads) -> list[int]:
    """First-occurrence identity keys for a resolved workload list.

    Repeated stages share one :class:`~repro.workloads.kernels.Workload`
    object (the pipeline-runner convention), so object identity is the
    interchangeability relation; the returned keys are small ints — the
    order each distinct workload first appears — which makes them stable
    across processes given the same construction path.
    """
    first: dict[int, int] = {}
    return [first.setdefault(id(wl), len(first)) for wl in workloads]
