"""Pluggable search strategies over a schedule space.

Hung et al.'s thermal-aware task scheduling splits the problem into an
exact ILP for small instances and heuristics at scale; the same split
here, over composed-summary scoring:

``exhaustive``
    Enumerate the (deduplicated) space in deterministic order, up to
    the evaluation budget.  Exact within budget; the only strategy a
    sharding coordinator fans out (same enumeration + same tie-break on
    every worker ⇒ same argmin as inline).
``greedy``
    Insertion construction: stages join the schedule one at a time,
    each tried at every slot (× every placement, when that axis is
    open), keeping the best partial schedule.  O(K²·|placements|)
    evaluations.
``anneal``
    Seeded simulated annealing from the identity schedule: random slot
    swaps (and placement mutations) accepted by the Metropolis rule
    under a geometric cooling ladder.  Deterministic per seed.

Every strategy evaluates the identity schedule first and returns the
better of it and its own best, so ``greedy``/``anneal`` are *never
worse than the as-given ordering* — asserted by the search-correctness
tests.  Ties break on :meth:`Candidate.key`, making the argmin unique
and reproducible.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from ..errors import DataflowError
from .space import Candidate, ScheduleSpace


@dataclass
class SearchOutcome:
    """What a strategy found: the argmin and how hard it looked."""

    best: Candidate
    best_score: float
    identity_score: float
    #: Whether the whole space was scored (exhaustive within budget).
    exhausted: bool = False


def better(score: float, key, best_score: float, best_key) -> bool:
    """Strict improvement under the deterministic (score, key) order."""
    if score != best_score:
        return score < best_score
    return key < best_key


def exhaustive_search(
    evaluator, space: ScheduleSpace, budget: int, seed: int = 0
) -> SearchOutcome:
    identity = space.identity()
    identity_score = evaluator.evaluate(identity)
    best, best_score = identity, identity_score
    visited = 0
    exhausted = True
    for candidate in space.enumerate_candidates():
        if visited >= max(1, budget):
            exhausted = False
            break
        visited += 1
        score = evaluator.evaluate(candidate)
        if better(score, candidate.key(), best_score, best.key()):
            best, best_score = candidate, score
    return SearchOutcome(
        best=best, best_score=best_score,
        identity_score=identity_score, exhausted=exhausted,
    )


def greedy_search(
    evaluator, space: ScheduleSpace, budget: int, seed: int = 0
) -> SearchOutcome:
    identity = space.identity()
    identity_score = evaluator.evaluate(identity)
    placements = space.placements
    spent = 1

    order: tuple[int, ...] = ()
    policies: tuple[str, ...] = ()
    for idx in range(space.num_stages):
        chosen = None
        chosen_score = math.inf
        for pos in range(len(order) + 1):
            for policy in placements or (None,):
                cand_order = order[:pos] + (idx,) + order[pos:]
                cand_policies = (
                    policies[:pos] + (policy,) + policies[pos:]
                    if placements else None
                )
                candidate = Candidate(cand_order, cand_policies)
                if spent >= max(1, budget) and chosen is not None:
                    continue
                spent += 1
                score = evaluator.evaluate(candidate)
                if chosen is None or better(
                    score, candidate.key(), chosen_score, chosen.key()
                ):
                    chosen, chosen_score = candidate, score
        order = chosen.order
        policies = chosen.policies if placements else ()

    best = Candidate(order, policies if placements else None)
    best_score = evaluator.evaluate(best)
    if not better(best_score, best.key(), identity_score, identity.key()):
        best, best_score = identity, identity_score
    return SearchOutcome(
        best=best, best_score=best_score, identity_score=identity_score,
    )


def anneal_search(
    evaluator, space: ScheduleSpace, budget: int, seed: int = 0
) -> SearchOutcome:
    identity = space.identity()
    identity_score = evaluator.evaluate(identity)
    placements = space.placements
    rng = random.Random(seed)

    current = identity
    current_score = identity_score
    best, best_score = current, current_score
    k = space.num_stages
    steps = max(1, budget - 1)
    # Kelvin-scale cooling: score differences are fractions of a degree
    # for most schedules, so start warm enough to accept ~0.5 K uphill
    # moves and cool geometrically to effectively greedy.
    t_start, t_end = 0.5, 1e-4
    for step in range(steps):
        if k < 2 and placements is None:
            break
        order = list(current.order)
        policies = (
            list(current.policies)
            if current.policies is not None
            else ([placements[0]] * k if placements else None)
        )
        if placements and (k < 2 or rng.random() < 0.3):
            slot = rng.randrange(k)
            policies[slot] = placements[rng.randrange(len(placements))]
        else:
            i = rng.randrange(k)
            j = rng.randrange(k)
            order[i], order[j] = order[j], order[i]
        candidate = Candidate(
            tuple(order), tuple(policies) if placements else None
        )
        score = evaluator.evaluate(candidate)
        temperature = t_start * (t_end / t_start) ** (step / steps)
        delta = score - current_score
        if delta <= 0 or rng.random() < math.exp(-delta / temperature):
            current, current_score = candidate, score
        if better(score, candidate.key(), best_score, best.key()):
            best, best_score = candidate, score
    return SearchOutcome(
        best=best, best_score=best_score, identity_score=identity_score,
    )


#: strategy name -> search function.
SEARCH_STRATEGIES = {
    "exhaustive": exhaustive_search,
    "greedy": greedy_search,
    "anneal": anneal_search,
}


def search_by_name(name: str):
    strategy = SEARCH_STRATEGIES.get(name)
    if strategy is None:
        raise DataflowError(
            f"unknown search strategy {name!r}; "
            f"available: {', '.join(sorted(SEARCH_STRATEGIES))}"
        )
    return strategy
