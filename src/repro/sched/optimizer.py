"""The schedule optimizer: search orchestration + the report layer.

This is where the analyzer becomes an optimizer.  The paper's point in
making thermal data flow analysis cheap is to put it *inside* a loop;
with :meth:`AnalysisContext.summary` caching each distinct kernel's
affine exit map, scoring a candidate ordering is O(stages) mat-vecs —
thousands of candidates per second — so :func:`optimize_schedule` can
drive any of the :mod:`repro.sched.search` strategies over a
:class:`~repro.sched.space.ScheduleSpace` and return the argmin
schedule *with evidence*: a full stacked-strategy
:class:`~repro.core.pipeline_runner.PipelineReport` of the winning
ordering, so the claim "this schedule is coolest" ships with the same
per-stage analysis any pipeline request returns.

``ScheduleReport`` (schema ``repro.schedule/1``) is the machine-
readable result; ``candidates`` mode evaluates an explicit batch
instead of searching — the unit of work a sharding backend sends each
worker (see ``shard_schedule_request`` in
:mod:`repro.service.backends`).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field

import numpy as np

from ..arch import MACHINE_PRESETS
from ..errors import DataflowError
from ..regalloc.linearscan import allocate_linear_scan
from ..regalloc.policies import policy_by_name
from ..workloads import load
from ..core.context import AnalysisContext
from ..core.pipeline_runner import run_pipeline
from .objectives import CandidateEvaluation, Objective, objective_by_name
from .search import SearchOutcome, better, search_by_name
from .space import Candidate, ScheduleSpace, stage_keys_for

#: Report schema identifier (bump on incompatible changes).
SCHEMA = "repro.schedule/1"


class ScheduleEvaluator:
    """Scores candidates through cached composed summaries.

    One evaluator serves one search: it lazily allocates each distinct
    ``(workload, policy)`` pair once (through the service's identity-
    cached *allocator* when given), pulls each allocated function's
    affine exit map from the shared context's summary cache — so a warm
    context charges zero linear solves — and walks candidate orderings
    with two mat-vecs per slot.  Scores memoize per candidate key;
    ``evaluations`` counts computed scores, ``memo_hits`` the replays.
    """

    def __init__(
        self,
        context: AnalysisContext,
        workloads,
        objective: Objective,
        *,
        policy: str = "first-free",
        merge: str = "freq",
        include_leakage: bool = True,
        dwell_threshold: float = 1.0,
        allocator=None,
        progress=None,
        batch: int = 25,
    ) -> None:
        self.context = context
        self.workloads = list(workloads)
        self.objective = objective
        self.policy = policy
        self.merge = merge
        self.include_leakage = include_leakage
        self.dwell_threshold = dwell_threshold
        self.allocator = allocator
        self.progress = progress
        self.batch = max(1, batch)
        self.evaluations = 0
        self.memo_hits = 0
        self._memo: dict[tuple, float] = {}
        self._functions: dict[tuple[int, str], object] = {}
        self._entry = np.array(
            context.model.ambient_state().temperatures, dtype=float
        )
        self._ambient = float(context.model.params.ambient)
        self._best = float("inf")

    def _function(self, stage_index: int, policy: str | None):
        policy = policy or self.policy
        workload = self.workloads[stage_index]
        key = (id(workload), policy)
        function = self._functions.get(key)
        if function is None:
            if self.allocator is not None:
                function = self.allocator(workload.function, policy)
            else:
                function = allocate_linear_scan(
                    workload.function, self.context.machine,
                    policy_by_name(policy),
                ).function
            self._functions[key] = function
        return function

    def _summary(self, stage_index: int, policy: str | None):
        return self.context.summary(
            self._function(stage_index, policy),
            merge=self.merge,
            include_leakage=self.include_leakage,
        )

    def evaluate(self, candidate: Candidate) -> float:
        key = candidate.key()
        memoized = self._memo.get(key)
        if memoized is not None:
            self.memo_hits += 1
            return memoized
        slots = list(zip(
            candidate.order,
            candidate.policies or (None,) * len(candidate.order),
        ))
        summaries = [self._summary(idx, pol) for idx, pol in slots]
        weights = tuple(
            self._function(idx, pol).instruction_count() for idx, pol in slots
        )

        state = self._entry
        peaks = [float(state.max())]
        for summary in summaries:
            state = summary.matrix @ state + summary.offset
            peaks.append(float(state.max()))

        steady_peaks = None
        if self.objective.needs_steady:
            matrix = summaries[0].matrix
            offset = summaries[0].offset
            for summary in summaries[1:]:
                matrix = summary.matrix @ matrix
                offset = summary.matrix @ offset + summary.offset
            steady = np.linalg.solve(
                np.eye(len(offset)) - matrix, offset
            )
            state = steady
            walk = [float(state.max())]
            for summary in summaries:
                state = summary.matrix @ state + summary.offset
                walk.append(float(state.max()))
            steady_peaks = tuple(walk)

        score = self.objective(CandidateEvaluation(
            candidate=candidate,
            boundary_peaks=tuple(peaks),
            stage_weights=weights,
            ambient=self._ambient,
            dwell_threshold=self.dwell_threshold,
            steady_peaks=steady_peaks,
        ))
        self._memo[key] = score
        self.evaluations += 1
        self._best = min(self._best, score)
        if self.progress is not None and self.evaluations % self.batch == 0:
            self.progress({
                "event": "batch",
                "evaluated": self.evaluations,
                "best_score": self._best,
            })
        return score


@dataclass
class ScheduleReport:
    """Machine-readable result of one schedule search."""

    machine: str
    model: str                    # "rf" or "chip"
    strategy: str
    objective: str
    budget: int
    seed: int
    delta: float
    merge: str
    sweep: str
    policy: str
    stages: list[str]             # stage names, input order
    best_order: list[int]
    best_names: list[str]
    best_score: float
    best_policies: list[str] | None = None
    identity_score: float | None = None
    space_size: int = 0
    candidates_evaluated: int = 0
    eval_memo_hits: int = 0
    exhausted: bool = False
    dwell_threshold: float = 1.0
    placements: list[str] | None = None
    #: The argmin schedule's full stacked pipeline analysis
    #: (``PipelineReport.to_dict()`` form) — the evidence.
    evidence: dict | None = None
    #: Per-candidate ``[order, policies, score]`` rows, present only in
    #: explicit-batch (shard) mode; a coordinator merges shards on it.
    candidate_scores: list | None = None
    wall_time_seconds: float = 0.0
    context_stats: dict[str, int] = field(default_factory=dict)

    @property
    def improvement_kelvin(self) -> float | None:
        """Identity score minus best score (positive = the search won).

        Meaningful for the Kelvin-valued objectives; ``None`` when the
        identity schedule was never scored (partial shard batches)."""
        if self.identity_score is None:
            return None
        return self.identity_score - self.best_score

    def to_dict(self) -> dict:
        data = {
            "schema": SCHEMA,
            "machine": self.machine,
            "model": self.model,
            "strategy": self.strategy,
            "objective": self.objective,
            "budget": self.budget,
            "seed": self.seed,
            "delta": self.delta,
            "merge": self.merge,
            "sweep": self.sweep,
            "policy": self.policy,
            "stages": list(self.stages),
            "best_order": list(self.best_order),
            "best_names": list(self.best_names),
            "best_policies": (
                list(self.best_policies)
                if self.best_policies is not None else None
            ),
            "best_score": self.best_score,
            "identity_score": self.identity_score,
            "improvement_kelvin": self.improvement_kelvin,
            "space_size": self.space_size,
            "candidates_evaluated": self.candidates_evaluated,
            "eval_memo_hits": self.eval_memo_hits,
            "exhausted": self.exhausted,
            "dwell_threshold": self.dwell_threshold,
            "placements": (
                list(self.placements) if self.placements is not None else None
            ),
            "evidence": self.evidence,
            "wall_time_seconds": self.wall_time_seconds,
            "context_stats": dict(self.context_stats),
        }
        if self.candidate_scores is not None:
            data["candidate_scores"] = self.candidate_scores
        return data

    def write_json(self, path) -> None:
        """Write the report (e.g. as ``BENCH_schedule.json``)."""
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def from_dict(cls, data: dict) -> "ScheduleReport":
        """Revive a report from its ``to_dict`` form (inverse up to the
        derived ``schema``/``improvement_kelvin`` fields)."""
        return cls(
            machine=data["machine"],
            model=data["model"],
            strategy=data["strategy"],
            objective=data["objective"],
            budget=int(data["budget"]),
            seed=int(data["seed"]),
            delta=float(data["delta"]),
            merge=data["merge"],
            sweep=data.get("sweep", "auto"),
            policy=data["policy"],
            stages=list(data["stages"]),
            best_order=[int(i) for i in data["best_order"]],
            best_names=list(data["best_names"]),
            best_policies=(
                list(data["best_policies"])
                if data.get("best_policies") is not None else None
            ),
            best_score=float(data["best_score"]),
            identity_score=(
                float(data["identity_score"])
                if data.get("identity_score") is not None else None
            ),
            space_size=int(data.get("space_size", 0)),
            candidates_evaluated=int(data.get("candidates_evaluated", 0)),
            eval_memo_hits=int(data.get("eval_memo_hits", 0)),
            exhausted=bool(data.get("exhausted", False)),
            dwell_threshold=float(data.get("dwell_threshold", 1.0)),
            placements=(
                list(data["placements"])
                if data.get("placements") is not None else None
            ),
            evidence=data.get("evidence"),
            candidate_scores=data.get("candidate_scores"),
            wall_time_seconds=float(data.get("wall_time_seconds", 0.0)),
            context_stats=dict(data.get("context_stats", {})),
        )


def _resolve_workloads(stages) -> list:
    """Stage specs (names and/or Workload objects) → shared workloads.

    Repeated names resolve to one object, the identity the summary and
    transfer caches key on — the same convention as ``run_pipeline``."""
    loaded: dict[str, object] = {}
    workloads = []
    for spec in stages:
        if isinstance(spec, str):
            if spec not in loaded:
                loaded[spec] = load(spec)
            workloads.append(loaded[spec])
        else:
            workloads.append(spec)
    return workloads


def optimize_schedule(
    stages,
    machine_name: str = "rf64",
    *,
    context: AnalysisContext | None = None,
    chip: bool = False,
    strategy: str = "greedy",
    objective: str = "peak",
    budget: int = 2000,
    seed: int = 0,
    delta: float = 0.01,
    merge: str = "freq",
    sweep: str = "auto",
    policy: str = "first-free",
    placements=None,
    dwell_threshold: float = 1.0,
    candidates=None,
    allocator=None,
    progress=None,
    batch: int = 25,
    max_iterations: int = 2000,
) -> ScheduleReport:
    """Search stage orderings (and placements) for the argmin schedule.

    Parameters
    ----------
    stages:
        The stage multiset, input order: workload names and/or
        :class:`~repro.workloads.kernels.Workload` objects (repeated
        names share one object, so equivalent orderings deduplicate).
    strategy / objective / budget / seed:
        The search knobs: strategy name (:data:`SEARCH_STRATEGIES
        <repro.sched.search.SEARCH_STRATEGIES>`), objective name
        (:data:`OBJECTIVES <repro.sched.objectives.OBJECTIVES>`), the
        computed-evaluation cap, and the RNG seed (``anneal``).
    placements:
        Optional assignment-policy names opening the per-slot placement
        axis (chip level: which die region each kernel's heat lands on).
    candidates:
        Explicit ``(order, policies)`` batch to score instead of
        searching — the shard unit; the report then carries
        ``candidate_scores`` and its local argmin.
    allocator / progress:
        The service's identity-cached allocation hook and the per-batch
        event callback (``{"event": "batch", "evaluated": n,
        "best_score": s}`` every *batch* computed evaluations).

    The evidence pipeline (the argmin ordering re-analyzed under the
    ``stacked`` strategy) lands under ``report.evidence``.
    """
    stages = list(stages)
    if not stages:
        raise DataflowError("cannot optimize an empty schedule")
    if context is None:
        if machine_name not in MACHINE_PRESETS:
            raise DataflowError(
                f"unknown machine {machine_name!r}; "
                f"available: {sorted(MACHINE_PRESETS)}"
            )
        machine = MACHINE_PRESETS[machine_name]()
        context = (
            AnalysisContext.for_chip(machine)
            if chip
            else AnalysisContext(machine)
        )
    objective_obj = objective_by_name(objective)
    workloads = _resolve_workloads(stages)
    space = ScheduleSpace(stage_keys_for(workloads), placements)
    evaluator = ScheduleEvaluator(
        context, workloads, objective_obj,
        policy=policy, merge=merge,
        include_leakage=context.config.include_leakage,
        dwell_threshold=dwell_threshold,
        allocator=allocator, progress=progress, batch=batch,
    )

    started = time.perf_counter()
    candidate_scores = None
    if candidates is not None:
        outcome, candidate_scores = _evaluate_batch(
            evaluator, space, candidates
        )
    else:
        outcome = search_by_name(strategy)(
            evaluator, space, budget=budget, seed=seed
        )

    best = outcome.best
    ordered = [workloads[i] for i in best.order]
    evidence = run_pipeline(
        ordered,
        context=context,
        chip=chip,
        strategy="stacked",
        delta=delta,
        merge=merge,
        sweep=sweep,
        policy=policy,
        policies=list(best.policies) if best.policies is not None else None,
        max_iterations=max_iterations,
        allocator=allocator,
    )

    return ScheduleReport(
        machine=context.machine.name,
        model="chip" if chip else "rf",
        strategy=strategy,
        objective=objective,
        budget=budget,
        seed=seed,
        delta=delta,
        merge=merge,
        sweep=sweep,
        policy=policy,
        stages=[wl.name for wl in workloads],
        best_order=list(best.order),
        best_names=[wl.name for wl in ordered],
        best_policies=(
            list(best.policies) if best.policies is not None else None
        ),
        best_score=outcome.best_score,
        identity_score=outcome.identity_score,
        space_size=space.size(),
        candidates_evaluated=evaluator.evaluations,
        eval_memo_hits=evaluator.memo_hits,
        exhausted=outcome.exhausted,
        dwell_threshold=dwell_threshold,
        placements=list(placements) if placements else None,
        evidence=evidence.to_dict(),
        candidate_scores=candidate_scores,
        wall_time_seconds=time.perf_counter() - started,
        context_stats=dict(context.stats),
    )


def _evaluate_batch(
    evaluator: ScheduleEvaluator, space: ScheduleSpace, candidates
) -> tuple[SearchOutcome, list]:
    """Score an explicit candidate batch (the shard unit).

    Returns the batch's local argmin under the global (score, key)
    order plus one ``[order, policies, score]`` row per candidate, so
    a coordinator can reduce shard batches to the exact argmin the
    inline enumeration would have picked.
    """
    best = None
    best_score = float("inf")
    identity_score = None
    identity_key = space.identity().key()
    rows = []
    for order, policies in candidates:
        candidate = Candidate(
            tuple(int(i) for i in order),
            tuple(policies) if policies is not None else None,
        )
        if len(candidate.order) != space.num_stages or \
                sorted(candidate.order) != list(range(space.num_stages)):
            raise DataflowError(
                f"candidate order {candidate.order!r} is not a "
                f"permutation of {space.num_stages} stages"
            )
        score = evaluator.evaluate(candidate)
        rows.append([
            list(candidate.order),
            list(candidate.policies) if candidate.policies else None,
            score,
        ])
        if candidate.key() == identity_key:
            identity_score = score
        if best is None or better(
            score, candidate.key(), best_score, best.key()
        ):
            best, best_score = candidate, score
    if best is None:
        raise DataflowError("cannot evaluate an empty candidate batch")
    outcome = SearchOutcome(
        best=best, best_score=best_score,
        identity_score=identity_score, exhausted=True,
    )
    return outcome, rows
