"""Thermal-aware schedule search: the analyzer turned optimizer.

The subsystem in four layers, bottom up:

- :mod:`~repro.sched.space` — candidates (stage orderings × optional
  per-slot placements) and their deduplicated, deterministic space.
- :mod:`~repro.sched.objectives` — first-class minimizable metrics
  (``peak``, ``dwell``, ``steady``).
- :mod:`~repro.sched.search` — pluggable strategies (``exhaustive``,
  ``greedy``, ``anneal``) guaranteeing never-worse-than-identity.
- :mod:`~repro.sched.optimizer` — :func:`optimize_schedule` and the
  ``repro.schedule/1`` :class:`ScheduleReport`, scoring through cached
  composed summaries and shipping the argmin with its full stacked
  pipeline analysis as evidence.

Service and CLI front-ends live in :mod:`repro.service` (kind
``schedule``) and ``python -m repro schedule``.
"""

from .objectives import (
    OBJECTIVES,
    CandidateEvaluation,
    Objective,
    objective_by_name,
)
from .optimizer import (
    SCHEMA,
    ScheduleEvaluator,
    ScheduleReport,
    optimize_schedule,
)
from .search import (
    SEARCH_STRATEGIES,
    SearchOutcome,
    anneal_search,
    exhaustive_search,
    greedy_search,
    search_by_name,
)
from .space import Candidate, ScheduleSpace, stage_keys_for

__all__ = [
    "OBJECTIVES",
    "SCHEMA",
    "SEARCH_STRATEGIES",
    "Candidate",
    "CandidateEvaluation",
    "Objective",
    "ScheduleEvaluator",
    "ScheduleReport",
    "ScheduleSpace",
    "SearchOutcome",
    "anneal_search",
    "exhaustive_search",
    "greedy_search",
    "objective_by_name",
    "optimize_schedule",
    "search_by_name",
    "stage_keys_for",
]
