"""Schedule objectives: first-class callables over candidate evaluations.

An objective maps one :class:`CandidateEvaluation` — the boundary
thermal states a candidate schedule visits, produced from cached
composed summaries in O(stages) — to a scalar to *minimize*.  Three
ship built-in:

``peak``
    The peak boundary temperature anywhere in one pass of the schedule,
    started from ambient.  The direct analogue of the paper's peak-
    temperature metric, at pipeline granularity.
``dwell``
    Hotspot dwell: total instruction count of the stages whose exit
    state is still at least ``dwell_threshold`` Kelvin above ambient —
    a proxy for how long the die *stays* hot, which is what ages
    interconnect (instruction count stands in for stage duration).
``steady``
    The peak boundary temperature of the *steady schedule*: the
    candidate's composed summary is closed under
    :meth:`~repro.core.summaries.FunctionSummary.fixed_point`, giving
    the entry state the schedule converges to when run back-to-back
    forever, and the objective is the hottest boundary in that regime.

Objectives are plain values (:data:`OBJECTIVES`), so registering a new
one is adding a dict entry — the search strategies, the service
executor and the CLI all resolve them through :func:`objective_by_name`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import DataflowError
from .space import Candidate


@dataclass(frozen=True)
class CandidateEvaluation:
    """Everything an objective may score, for one candidate.

    ``boundary_peaks`` has one entry per stage boundary — index 0 is
    the entry state (ambient for a one-pass evaluation), index ``j+1``
    the exit of slot *j* — each the maximum node temperature of that
    boundary state.  ``stage_weights[j]`` is slot *j*'s instruction
    count.  ``steady_peaks`` is the same boundary walk started from the
    schedule's closed-form steady state, present only when the
    objective declared ``needs_steady``.
    """

    candidate: Candidate
    boundary_peaks: tuple[float, ...]
    stage_weights: tuple[int, ...]
    ambient: float
    dwell_threshold: float
    steady_peaks: tuple[float, ...] | None = None


@dataclass(frozen=True)
class Objective:
    """A named, minimizable schedule metric."""

    name: str
    description: str
    fn: Callable[[CandidateEvaluation], float]
    #: Whether evaluations must also carry the steady-regime boundary
    #: walk (one extra linear solve per candidate).
    needs_steady: bool = False

    def __call__(self, evaluation: CandidateEvaluation) -> float:
        return self.fn(evaluation)


def _peak(evaluation: CandidateEvaluation) -> float:
    return max(evaluation.boundary_peaks)


def _dwell(evaluation: CandidateEvaluation) -> float:
    hot = evaluation.ambient + evaluation.dwell_threshold
    return float(sum(
        weight
        for weight, exit_peak in zip(
            evaluation.stage_weights, evaluation.boundary_peaks[1:]
        )
        if exit_peak >= hot
    ))


def _steady(evaluation: CandidateEvaluation) -> float:
    if evaluation.steady_peaks is None:
        raise DataflowError(
            "steady objective scored without a steady-state walk "
            "(evaluator must honor Objective.needs_steady)"
        )
    return max(evaluation.steady_peaks)


#: name -> objective, the registry every front-end resolves through.
OBJECTIVES: dict[str, Objective] = {
    "peak": Objective(
        name="peak",
        description="peak boundary temperature of one ambient-entry pass",
        fn=_peak,
    ),
    "dwell": Objective(
        name="dwell",
        description="instruction-weighted time spent above the hotspot "
                    "threshold",
        fn=_dwell,
    ),
    "steady": Objective(
        name="steady",
        description="peak boundary temperature of the closed-form steady "
                    "schedule (summary fixed point)",
        fn=_steady,
        needs_steady=True,
    ),
}


def objective_by_name(name: str) -> Objective:
    objective = OBJECTIVES.get(name)
    if objective is None:
        raise DataflowError(
            f"unknown schedule objective {name!r}; "
            f"available: {', '.join(sorted(OBJECTIVES))}"
        )
    return objective
