"""Exception hierarchy for the ``repro`` package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class IRError(ReproError):
    """Malformed intermediate representation (construction or mutation)."""


class ParseError(IRError):
    """The textual IR could not be parsed.

    Attributes
    ----------
    line:
        1-based line number where parsing failed, or ``None`` when the
        error is not attributable to a single line.
    """

    def __init__(self, message: str, line: int | None = None) -> None:
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class VerificationError(IRError):
    """The IR verifier found a structural violation."""


class DataflowError(ReproError):
    """A data flow analysis was invoked on unsupported input."""


class AllocationError(ReproError):
    """Register allocation failed (e.g. unsatisfiable pressure without spills)."""


class UnknownWorkloadError(ReproError, KeyError):
    """A workload name did not resolve against the built-in suite.

    Doubles as a :class:`KeyError` because the workload registry is a
    mapping and pre-1.2 callers caught ``KeyError``; new code should
    catch this class (or :class:`ReproError`) instead.

    Attributes
    ----------
    name:
        The unknown workload name.
    available:
        The valid names, in canonical suite order.
    """

    def __init__(self, name: str, available: list[str] | None = None) -> None:
        self.name = name
        self.available = list(available or [])
        message = f"unknown workload {name!r}"
        if self.available:
            message += f"; available: {', '.join(self.available)}"
        super().__init__(message)

    def __str__(self) -> str:
        # KeyError.__str__ would repr() the message; keep it readable.
        return self.args[0]


class ProtocolError(ReproError):
    """A wire-level message violated the service protocol.

    Raised when a line never becomes a request (malformed JSON, a
    non-object document), when a request names an unknown ``kind`` or
    carries unknown fields, and when an envelope declares a schema
    version this reader does not speak.  Distinct from *analysis*
    errors: the front-end reports it under ``error.type ==
    "ProtocolError"`` and ``repro serve`` exits 3 when any answered
    envelope carried one (0 ok / 1 error / 2 did-not-converge are
    untouched).
    """


class WorkerError(ReproError):
    """A remote worker failed to serve a request.

    Connection refused or dropped mid-request, an empty response line,
    or a response whose ``request_id`` echo does not match what was
    sent.  The backend converts it into an ``ok=False`` envelope — a
    coordinator must answer, not die.
    """


class WorkerConnectError(WorkerError):
    """The connection to a worker could not be *established*.

    Distinct from a mid-request loss (plain :class:`WorkerError`): a
    refused/failed connect means the worker never saw the request, so a
    retry policy may resubmit immediately and without idempotency
    concerns, while a mid-request loss means the work may have partially
    run.  Surfaced as ``error.type == "WorkerConnectError"``.
    """


class NoHealthyWorkersError(WorkerError):
    """Every registered worker is dead, draining, or excluded.

    Raised by the worker registry when a shard (or its resubmission)
    cannot be placed anywhere.  Carries the registry's failure
    accounting in its message so the resulting error envelope explains
    *why* the fleet is empty.
    """


class UnknownJobError(ReproError):
    """A job-queue request (`poll`/`events`/`cancel`) named a job this
    service does not know — never submitted here, or already evicted
    from the bounded registry.  An application-level error, not a
    protocol violation: ``repro serve`` answers it with a normal error
    envelope and does not exit 3.
    """


class JobCancelledError(ReproError):
    """``JobHandle.result()`` was called on a cancelled job.

    A job cancelled while queued never ran; one cancelled while running
    finished but had its result discarded.  Either way there is no
    envelope to return.
    """


class ThermalModelError(ReproError):
    """Invalid thermal model construction or use."""


class SimulationError(ReproError):
    """The IR interpreter hit a runtime fault (bad memory access, div by zero...)."""


class ConvergenceError(ReproError):
    """An iterative analysis failed to converge within its iteration budget.

    The thermal data flow analysis of the paper explicitly treats
    non-convergence as a meaningful outcome; this exception carries the
    partial result so that callers may still inspect it.
    """

    def __init__(self, message: str, partial_result=None, iterations: int | None = None) -> None:
        super().__init__(message)
        self.partial_result = partial_result
        self.iterations = iterations
