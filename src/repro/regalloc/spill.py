"""Spill code insertion.

Demoting a virtual register to a stack slot replaces each definition
with a short-lived temporary followed by a ``spill``, and each use with
a ``reload`` into a fresh temporary.  The inserted temporaries have
single-instruction lifetimes, so repeated spill rounds strictly reduce
register pressure and allocation terminates.

Spilling is also the paper's first-choice *thermal* optimization ("the
greatest benefit will be achieved by spilling these critical variables
to memory", §4): stack-slot traffic heats the cache, not the RF.
"""

from __future__ import annotations

from ..errors import AllocationError
from ..ir import instructions as ins
from ..ir.function import Function
from ..ir.values import StackSlot, Value, VirtualRegister


def insert_spill_code(
    function: Function, to_spill: set[VirtualRegister]
) -> Function:
    """Return a copy of *function* with *to_spill* demoted to stack slots."""
    if not to_spill:
        return function.copy()
    for reg in to_spill:
        if not isinstance(reg, VirtualRegister):
            raise AllocationError(f"can only spill virtual registers, got {reg}")

    clone = function.copy()
    slots: dict[VirtualRegister, StackSlot] = {
        reg: clone.new_slot(f"sp_{reg.name}") for reg in sorted(to_spill, key=str)
    }

    # Parameters that spill are stored to their slot on entry.
    spilled_params = [p for p in clone.params if p in slots]
    entry = clone.entry
    for offset, param in enumerate(spilled_params):
        entry.insert(offset, ins.spill(slots[param], param))

    for block in clone.blocks.values():
        new_instructions = []
        start_index = 0
        if block is entry:
            # Keep the parameter stores we just inserted at the top.
            new_instructions.extend(block.instructions[: len(spilled_params)])
            start_index = len(spilled_params)
        for inst in block.instructions[start_index:]:
            use_map: dict[Value, Value] = {}
            for op in inst.uses():
                if isinstance(op, VirtualRegister) and op in slots and op not in use_map:
                    temp = clone.new_vreg(f"rl_{op.name}_")
                    new_instructions.append(ins.reload(temp, slots[op]))
                    use_map[op] = temp
            if use_map:
                inst.replace_uses(use_map)
            dest = inst.dest
            if isinstance(dest, VirtualRegister) and dest in slots:
                temp = clone.new_vreg(f"st_{dest.name}_")
                inst.replace_defs({dest: temp})
                new_instructions.append(inst)
                new_instructions.append(ins.spill(slots[dest], temp))
            else:
                new_instructions.append(inst)
        block.instructions = new_instructions

    # Parameters stay in the signature even when spilled; their register
    # lifetime is now just the entry stores.
    return clone


def spill_cost(
    weighted_accesses: float, interval_length: int, degree: int
) -> float:
    """Chaitin-style spill metric: cheap to spill = low cost / high degree.

    Cost grows with expected dynamic accesses (each becomes a memory op)
    and shrinks with interference degree (spilling frees more colours).
    """
    return (weighted_accesses + 1.0) / (degree + 1.0) / (interval_length + 1.0)
