"""Allocation results and the virtual→physical rewriter."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import AllocationError
from ..ir.function import Function
from ..ir.values import PhysicalRegister, Value, VirtualRegister


@dataclass
class Allocation:
    """Outcome of register allocation.

    Attributes
    ----------
    function:
        The rewritten function: every virtual register replaced by its
        physical register; spill code included.
    original:
        The input function (untouched).
    mapping:
        Final virtual→physical index assignment (covers spill temps).
    spilled:
        Virtual registers of the *original* function that were demoted
        to stack slots across all spill rounds.
    policy / allocator:
        Names for bench tables.
    rounds:
        Spill-and-retry iterations needed (1 = no spilling).
    """

    function: Function
    original: Function
    mapping: dict[VirtualRegister, int]
    spilled: set[VirtualRegister] = field(default_factory=set)
    policy: str = ""
    allocator: str = ""
    rounds: int = 1

    @property
    def spill_count(self) -> int:
        return len(self.spilled)

    def registers_used(self) -> set[int]:
        """Distinct physical registers actually assigned."""
        return set(self.mapping.values())

    def assignment_of(self, reg: VirtualRegister) -> int:
        try:
            return self.mapping[reg]
        except KeyError:
            raise AllocationError(f"{reg} was not assigned (spilled?)") from None


def rewrite_with_assignment(
    function: Function, mapping: dict[VirtualRegister, int]
) -> Function:
    """Return a copy of *function* with virtual registers made physical.

    Every virtual register appearing in the function must be mapped.
    """
    clone = function.copy()
    substitution: dict[Value, Value] = {}
    for reg in clone.virtual_registers():
        if reg not in mapping:
            raise AllocationError(f"no assignment for {reg}")
        substitution[reg] = PhysicalRegister(mapping[reg])
    for block in clone.blocks.values():
        for inst in block.instructions:
            inst.replace_all(substitution)
    clone.params = [substitution.get(p, p) for p in clone.params]  # type: ignore[misc]
    return clone


def assignment_distance_stats(
    allocation: Allocation,
) -> dict[str, float]:
    """Mean/min pairwise Manhattan distance between used registers.

    A cheap spatial-spreading score: the chessboard and farthest-first
    policies should score high, first-free low.
    """
    from ..arch.presets import DEFAULT_MACHINE

    used = sorted(allocation.registers_used())
    if len(used) < 2:
        return {"mean_distance": 0.0, "min_distance": 0.0}
    geometry = DEFAULT_MACHINE.geometry
    distances = [
        geometry.manhattan_distance(a, b)
        for i, a in enumerate(used)
        for b in used[i + 1:]
    ]
    return {
        "mean_distance": sum(distances) / len(distances),
        "min_distance": float(min(distances)),
    }
