"""Register assignment policies — the subject of the paper's Fig. 1.

A policy answers one question: *given the set of currently-free physical
registers, which one should this variable get?*  The paper's motivating
example contrasts three answers:

* :class:`FirstFreePolicy` — "the compiler maintains an ordered list of
  registers and selects the first one that is free.  As the list is
  always traversed in order, the same small set of registers is chosen
  again and again" → hot spots (Fig. 1(a)).
* :class:`RandomPolicy` — uniformly random among the free registers;
  still produces hot spots because early/central registers recycle
  faster under short lifetimes (Fig. 1(b)).
* :class:`ChessboardPolicy` — one colour class of a chessboard over the
  RF grid, maximizing pairwise distance; homogenizes the map but only
  while register pressure stays ≤ half the RF (Fig. 1(c) + the §2
  caveat: under pressure it falls back to the other colour and the
  advantage collapses).

Beyond the figure, two policies embody the paper's §4 optimization
sketches: :class:`FarthestFirstPolicy` assigns each variable as far as
possible from the registers currently in use ("registers in disparate
regions of the RF"), and :class:`CoolestFirstPolicy` balances the
*expected access load* (frequency-weighted) across cells, approximating
the compiler-driven re-assignment of Zhou et al. [3].
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from ..arch.machine import MachineDescription
from ..errors import AllocationError
from ..ir.values import Value


@dataclass
class AssignmentContext:
    """What a policy may inspect when choosing a register.

    ``weighted_accesses`` is the variable's expected dynamic access
    count (static accesses × block frequency), the quantity that turns
    into power density once the variable is pinned to a cell.
    ``live_assignments`` maps registers currently live at the decision
    point to their physical indices.
    """

    vreg: Value
    weighted_accesses: float
    machine: MachineDescription
    live_assignments: dict[Value, int] = field(default_factory=dict)


class AssignmentPolicy:
    """Base class; subclasses implement :meth:`choose`."""

    #: Short name used in bench tables.
    name: str = "abstract"

    def reset(self, machine: MachineDescription) -> None:
        """Clear internal state before an allocation run."""

    def choose(self, free: list[int], context: AssignmentContext) -> int:
        """Pick one index from *free* (non-empty, ascending)."""
        raise NotImplementedError

    def _check(self, free: list[int]) -> None:
        if not free:
            raise AllocationError(f"policy {self.name}: no free registers")


class FirstFreePolicy(AssignmentPolicy):
    """Deterministic ordered choice — Fig. 1(a)."""

    name = "first-free"

    def choose(self, free: list[int], context: AssignmentContext) -> int:
        self._check(free)
        return free[0]


class RandomPolicy(AssignmentPolicy):
    """Uniformly random choice among free registers — Fig. 1(b)."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    def reset(self, machine: MachineDescription) -> None:
        self._rng = random.Random(self.seed)

    def choose(self, free: list[int], context: AssignmentContext) -> int:
        self._check(free)
        return self._rng.choice(free)


class ChessboardPolicy(AssignmentPolicy):
    """Cycle through one chessboard colour class — Fig. 1(c).

    While any register of the preferred colour is free the policy stays
    on that colour, *cycling* through the class so that accesses are
    "distributed uniformly across a large surface" (§2), not clustered
    at the low indices.  Once pressure exceeds half the RF it must use
    the other colour — exactly the failure mode §2 warns about, measured
    by experiment E5.
    """

    name = "chessboard"

    def __init__(self, color: int = 0) -> None:
        if color not in (0, 1):
            raise AllocationError("chessboard color must be 0 or 1")
        self.color = color
        self._cursor = 0

    def reset(self, machine: MachineDescription) -> None:
        self._cursor = 0

    def choose(self, free: list[int], context: AssignmentContext) -> int:
        self._check(free)
        geometry = context.machine.geometry
        preferred = [r for r in free if geometry.chessboard_color(r) == self.color]
        pool = preferred if preferred else free
        n = context.machine.geometry.num_registers
        for offset in range(n):
            candidate = (self._cursor + offset) % n
            if candidate in pool:
                self._cursor = (candidate + 1) % n
                return candidate
        return pool[0]  # unreachable given _check, kept for safety


class RoundRobinPolicy(AssignmentPolicy):
    """Cycle through the register file, spreading assignments in time."""

    name = "round-robin"

    def __init__(self) -> None:
        self._cursor = 0

    def reset(self, machine: MachineDescription) -> None:
        self._cursor = 0

    def choose(self, free: list[int], context: AssignmentContext) -> int:
        self._check(free)
        n = context.machine.geometry.num_registers
        for offset in range(n):
            candidate = (self._cursor + offset) % n
            if candidate in free:
                self._cursor = (candidate + 1) % n
                return candidate
        return free[0]  # unreachable given _check, kept for safety


class FarthestFirstPolicy(AssignmentPolicy):
    """Maximize Manhattan distance to the registers currently live.

    Implements §4's "assigned to registers in disparate regions of the
    RF".  Ties break toward the lowest index for determinism.
    """

    name = "farthest"

    def choose(self, free: list[int], context: AssignmentContext) -> int:
        self._check(free)
        geometry = context.machine.geometry
        occupied = sorted(set(context.live_assignments.values()))
        if not occupied:
            # Start from the centre: maximizes future spreading room.
            centre = geometry.index(geometry.rows // 2, geometry.cols // 2)
            return min(free, key=lambda r: (geometry.manhattan_distance(r, centre), r))
        return max(
            free,
            key=lambda r: (
                min(geometry.manhattan_distance(r, o) for o in occupied),
                -r,
            ),
        )


class CoolestFirstPolicy(AssignmentPolicy):
    """Balance expected access load over the RF with spatial smoothing.

    Maintains an accumulated load map (expected accesses assigned to each
    cell so far, diffused over neighbours with an exponential kernel) and
    picks the free register with the lowest local load — a static proxy
    for "assign to the coolest register".  This approximates the
    temperature/power-density-driven re-assignment of Zhou et al. (DAC
    2008), the paper's reference [3], and serves as the informed baseline
    in the optimization experiments.
    """

    name = "coolest"

    def __init__(self, kernel_radius: float = 1.5) -> None:
        self.kernel_radius = kernel_radius
        self._load: np.ndarray | None = None
        self._kernel: np.ndarray | None = None

    def reset(self, machine: MachineDescription) -> None:
        n = machine.geometry.num_registers
        self._load = np.zeros(n)
        geometry = machine.geometry
        kernel = np.zeros((n, n))
        for a in range(n):
            for b in range(n):
                d = geometry.manhattan_distance(a, b)
                kernel[a, b] = np.exp(-d / self.kernel_radius)
        self._kernel = kernel

    def choose(self, free: list[int], context: AssignmentContext) -> int:
        self._check(free)
        if self._load is None or self._kernel is None:
            self.reset(context.machine)
        assert self._load is not None and self._kernel is not None
        local_heat = self._kernel @ self._load
        chosen = min(free, key=lambda r: (local_heat[r], r))
        self._load[chosen] += max(context.weighted_accesses, 1.0)
        return chosen


def default_policies(seed: int = 0) -> list[AssignmentPolicy]:
    """The policy set every comparative bench sweeps (Fig. 1 + §4)."""
    return [
        FirstFreePolicy(),
        RandomPolicy(seed=seed),
        ChessboardPolicy(),
        RoundRobinPolicy(),
        FarthestFirstPolicy(),
        CoolestFirstPolicy(),
    ]


def policy_by_name(name: str, seed: int = 0) -> AssignmentPolicy:
    """Look up a policy by its bench-table name."""
    for policy in default_policies(seed=seed):
        if policy.name == name:
            return policy
    raise AllocationError(f"unknown policy {name!r}")
