"""Linear-scan register allocation (Poletto & Sarkar) with policy hooks.

The classic algorithm walks live intervals in start order, expiring dead
intervals and assigning each new interval a free register.  *Which* free
register is chosen is the policy hook — the single decision the paper's
Fig. 1 is about.  When no register is free, the interval ending last is
spilled, spill code is inserted, and allocation reruns (spill temps have
single-instruction lifetimes, so the loop terminates).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.machine import MachineDescription
from ..dataflow.freq import static_profile
from ..dataflow.intervals import LiveInterval, linear_order, live_intervals
from ..errors import AllocationError
from ..ir.function import Function
from ..ir.values import VirtualRegister
from .assignment import Allocation, rewrite_with_assignment
from .policies import AssignmentContext, AssignmentPolicy, FirstFreePolicy
from .spill import insert_spill_code


@dataclass
class _Active:
    interval: LiveInterval
    register: int


def _weighted_accesses(function: Function) -> dict[VirtualRegister, float]:
    """Expected dynamic access count per virtual register."""
    order = linear_order(function)
    profile = static_profile(function)
    intervals = live_intervals(function, order)
    block_of_index = [name for name, _ in order.positions]
    weights: dict[VirtualRegister, float] = {}
    for reg, interval in intervals.items():
        if not isinstance(reg, VirtualRegister):
            continue
        total = 0.0
        for idx in interval.accesses:
            total += profile.block_freq.get(block_of_index[idx], 0.0)
        weights[reg] = total
    return weights


def _scan_once(
    function: Function,
    machine: MachineDescription,
    policy: AssignmentPolicy,
) -> tuple[dict[VirtualRegister, int], set[VirtualRegister]]:
    """One linear-scan pass: returns (assignment, vregs needing a spill)."""
    order = linear_order(function)
    intervals = live_intervals(function, order)
    vreg_intervals = sorted(
        (iv for reg, iv in intervals.items() if isinstance(reg, VirtualRegister)),
        key=lambda iv: (iv.start, iv.end, str(iv.reg)),
    )
    weights = _weighted_accesses(function)

    free = set(machine.allocatable_registers())
    active: list[_Active] = []
    assignment: dict[VirtualRegister, int] = {}
    to_spill: set[VirtualRegister] = set()

    for interval in vreg_intervals:
        # Expire intervals that ended before this one starts.
        still_active = []
        for entry in active:
            if entry.interval.end <= interval.start:
                free.add(entry.register)
            else:
                still_active.append(entry)
        active = still_active

        if free:
            context = AssignmentContext(
                vreg=interval.reg,
                weighted_accesses=weights.get(interval.reg, 0.0),  # type: ignore[arg-type]
                machine=machine,
                live_assignments={
                    e.interval.reg: e.register for e in active
                },
            )
            chosen = policy.choose(sorted(free), context)
            if chosen not in free:
                raise AllocationError(
                    f"policy {policy.name} returned non-free register {chosen}"
                )
            free.discard(chosen)
            assignment[interval.reg] = chosen  # type: ignore[index]
            active.append(_Active(interval=interval, register=chosen))
        else:
            # Spill the interval with the furthest end (classic heuristic).
            candidates = active + [_Active(interval=interval, register=-1)]
            victim = max(
                candidates, key=lambda e: (e.interval.end, str(e.interval.reg))
            )
            if victim.interval is interval:
                to_spill.add(interval.reg)  # type: ignore[arg-type]
            else:
                to_spill.add(victim.interval.reg)  # type: ignore[arg-type]
                assignment.pop(victim.interval.reg, None)  # type: ignore[arg-type]
                active.remove(victim)
                assignment[interval.reg] = victim.register  # type: ignore[index]
                active.append(_Active(interval=interval, register=victim.register))

    return assignment, to_spill


def allocate_linear_scan(
    function: Function,
    machine: MachineDescription,
    policy: AssignmentPolicy | None = None,
    max_rounds: int = 32,
) -> Allocation:
    """Allocate *function* with linear scan under *policy*.

    Raises
    ------
    AllocationError
        If spilling fails to converge within *max_rounds* (indicates a
        pathological input; cannot happen with ≥ 4 allocatable registers
        because spill temps live for a single instruction).
    """
    policy = policy or FirstFreePolicy()
    policy.reset(machine)
    current = function.copy()
    all_spilled: set[VirtualRegister] = set()

    for round_number in range(1, max_rounds + 1):
        assignment, to_spill = _scan_once(current, machine, policy)
        if not to_spill:
            rewritten = rewrite_with_assignment(current, assignment)
            return Allocation(
                function=rewritten,
                original=function,
                mapping=assignment,
                spilled=all_spilled,
                policy=policy.name,
                allocator="linear-scan",
                rounds=round_number,
            )
        # Only original registers count in the report; temps are internal.
        all_spilled.update(to_spill)
        current = insert_spill_code(current, to_spill)
        policy.reset(machine)

    raise AllocationError(
        f"linear scan did not converge after {max_rounds} spill rounds"
    )
