"""Interference graph construction.

Two variables interfere when their lifetimes overlap (paper §2, first
sentence).  Edges are computed precisely from per-instruction liveness:
at every definition the defined register interferes with everything live
after the instruction (minus itself), with the usual special case that a
``copy``'s source and destination do not interfere through the copy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from ..dataflow.liveness import LivenessInfo, liveness
from ..ir.function import Function
from ..ir.instructions import Opcode
from ..ir.values import Value


@dataclass
class InterferenceGraph:
    """Undirected interference relation over a function's registers."""

    function: Function
    adjacency: dict[Value, set[Value]] = field(default_factory=dict)

    def add_node(self, reg: Value) -> None:
        self.adjacency.setdefault(reg, set())

    def add_edge(self, a: Value, b: Value) -> None:
        if a == b:
            return
        self.adjacency.setdefault(a, set()).add(b)
        self.adjacency.setdefault(b, set()).add(a)

    def interferes(self, a: Value, b: Value) -> bool:
        return b in self.adjacency.get(a, ())

    def neighbors(self, reg: Value) -> set[Value]:
        return set(self.adjacency.get(reg, ()))

    def degree(self, reg: Value) -> int:
        return len(self.adjacency.get(reg, ()))

    @property
    def nodes(self) -> list[Value]:
        return sorted(self.adjacency, key=str)

    def max_clique_lower_bound(self) -> int:
        """A cheap lower bound on chromatic number (greedy clique)."""
        best = 0
        for reg in self.nodes:
            clique = {reg}
            for cand in sorted(self.neighbors(reg), key=str):
                if all(self.interferes(cand, member) for member in clique):
                    clique.add(cand)
            best = max(best, len(clique))
        return best

    def to_networkx(self) -> nx.Graph:
        """Export for visualization / cross-checking in property tests."""
        graph = nx.Graph()
        graph.add_nodes_from(self.adjacency)
        for a, neighbors in self.adjacency.items():
            for b in neighbors:
                graph.add_edge(a, b)
        return graph


def build_interference_graph(
    function: Function, info: LivenessInfo | None = None
) -> InterferenceGraph:
    """Build the precise interference graph of *function*."""
    info = info or liveness(function)
    graph = InterferenceGraph(function=function)
    for reg in function.registers():
        graph.add_node(reg)

    # Parameters are all live on entry: they mutually interfere.
    params = list(function.params)
    for i, a in enumerate(params):
        for b in params[i + 1:]:
            graph.add_edge(a, b)

    for name, block in function.blocks.items():
        live_after = info.live_after(name)
        for i, inst in enumerate(block.instructions):
            defs = inst.defs()
            if not defs:
                continue
            live = set(live_after[i])
            for d in defs:
                for other in live:
                    if other == d:
                        continue
                    if inst.opcode is Opcode.COPY and other == inst.operands[0]:
                        # copy dest and src may share a register.
                        continue
                    graph.add_edge(d, other)
    return graph
