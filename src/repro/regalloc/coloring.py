"""Chaitin–Briggs graph-coloring register allocation with policy hooks.

Simplify/select with optimistic colouring: nodes of insignificant degree
are pushed first; when none exists, the cheapest node by Chaitin's spill
metric is pushed optimistically.  In the select phase the *policy*
chooses among the permitted colours — the same hook the linear-scan
allocator exposes, so every Fig. 1 policy runs under both allocators.
"""

from __future__ import annotations

from ..arch.machine import MachineDescription
from ..dataflow.freq import static_profile
from ..dataflow.intervals import linear_order, live_intervals
from ..errors import AllocationError
from ..ir.function import Function
from ..ir.values import VirtualRegister
from .assignment import Allocation, rewrite_with_assignment
from .interference import build_interference_graph
from .policies import AssignmentContext, AssignmentPolicy, FirstFreePolicy
from .spill import insert_spill_code, spill_cost


def _color_once(
    function: Function,
    machine: MachineDescription,
    policy: AssignmentPolicy,
) -> tuple[dict[VirtualRegister, int], set[VirtualRegister]]:
    """One simplify/select round: returns (assignment, actual spills)."""
    graph = build_interference_graph(function)
    vregs = [r for r in graph.nodes if isinstance(r, VirtualRegister)]
    k = len(machine.allocatable_registers())
    allocatable = machine.allocatable_registers()

    order = linear_order(function)
    intervals = live_intervals(function, order)
    profile = static_profile(function)
    block_of_index = [name for name, _ in order.positions]

    def weight(reg: VirtualRegister) -> float:
        interval = intervals.get(reg)
        if interval is None:
            return 0.0
        return sum(
            profile.block_freq.get(block_of_index[i], 0.0) for i in interval.accesses
        )

    def length(reg: VirtualRegister) -> int:
        interval = intervals.get(reg)
        return interval.length if interval is not None else 0

    # Simplify phase on a mutable degree map.
    degrees = {r: sum(1 for n in graph.neighbors(r) if isinstance(n, VirtualRegister))
               for r in vregs}
    removed: set[VirtualRegister] = set()
    stack: list[VirtualRegister] = []

    def remove(reg: VirtualRegister) -> None:
        removed.add(reg)
        stack.append(reg)
        for n in graph.neighbors(reg):
            if isinstance(n, VirtualRegister) and n not in removed:
                degrees[n] -= 1

    remaining = set(vregs)
    while remaining:
        simplifiable = sorted(
            (r for r in remaining if degrees[r] < k), key=str
        )
        if simplifiable:
            remove(simplifiable[0])
            remaining.discard(simplifiable[0])
            continue
        # Optimistic push of the cheapest spill candidate.
        victim = min(
            sorted(remaining, key=str),
            key=lambda r: (spill_cost(weight(r), length(r), degrees[r]), str(r)),
        )
        remove(victim)
        remaining.discard(victim)

    # Select phase.
    assignment: dict[VirtualRegister, int] = {}
    spills: set[VirtualRegister] = set()
    while stack:
        reg = stack.pop()
        taken = {
            assignment[n]
            for n in graph.neighbors(reg)
            if isinstance(n, VirtualRegister) and n in assignment
        }
        permitted = [c for c in allocatable if c not in taken]
        if not permitted:
            spills.add(reg)
            continue
        context = AssignmentContext(
            vreg=reg,
            weighted_accesses=weight(reg),
            machine=machine,
            live_assignments={
                n: assignment[n]
                for n in graph.neighbors(reg)
                if isinstance(n, VirtualRegister) and n in assignment
            },
        )
        chosen = policy.choose(sorted(permitted), context)
        if chosen not in permitted:
            raise AllocationError(
                f"policy {policy.name} returned forbidden colour {chosen}"
            )
        assignment[reg] = chosen

    return assignment, spills


def allocate_graph_coloring(
    function: Function,
    machine: MachineDescription,
    policy: AssignmentPolicy | None = None,
    max_rounds: int = 32,
) -> Allocation:
    """Allocate *function* by iterated graph coloring under *policy*."""
    policy = policy or FirstFreePolicy()
    policy.reset(machine)
    current = function.copy()
    all_spilled: set[VirtualRegister] = set()

    for round_number in range(1, max_rounds + 1):
        assignment, spills = _color_once(current, machine, policy)
        if not spills:
            rewritten = rewrite_with_assignment(current, assignment)
            return Allocation(
                function=rewritten,
                original=function,
                mapping=assignment,
                spilled=all_spilled,
                policy=policy.name,
                allocator="graph-coloring",
                rounds=round_number,
            )
        all_spilled.update(spills)
        current = insert_spill_code(current, spills)
        policy.reset(machine)

    raise AllocationError(
        f"graph coloring did not converge after {max_rounds} spill rounds"
    )
