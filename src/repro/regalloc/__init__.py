"""Register allocation: interference, allocators, assignment policies."""

from .assignment import Allocation, assignment_distance_stats, rewrite_with_assignment
from .coloring import allocate_graph_coloring
from .interference import InterferenceGraph, build_interference_graph
from .linearscan import allocate_linear_scan
from .policies import (
    AssignmentContext,
    AssignmentPolicy,
    ChessboardPolicy,
    CoolestFirstPolicy,
    FarthestFirstPolicy,
    FirstFreePolicy,
    RandomPolicy,
    RoundRobinPolicy,
    default_policies,
    policy_by_name,
)
from .spill import insert_spill_code, spill_cost

__all__ = [
    "Allocation",
    "rewrite_with_assignment",
    "assignment_distance_stats",
    "InterferenceGraph",
    "build_interference_graph",
    "allocate_linear_scan",
    "allocate_graph_coloring",
    "AssignmentContext",
    "AssignmentPolicy",
    "FirstFreePolicy",
    "RandomPolicy",
    "ChessboardPolicy",
    "RoundRobinPolicy",
    "FarthestFirstPolicy",
    "CoolestFirstPolicy",
    "default_policies",
    "policy_by_name",
    "insert_spill_code",
    "spill_cost",
]
