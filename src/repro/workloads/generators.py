"""Synthetic workload generators.

Two families:

* :func:`pressure_program` — a loop keeping exactly *k* accumulators
  simultaneously live, the knob for the chessboard-caveat sweep (E5:
  "if register pressure is high ... thermal gradients may still appear
  even trying to apply the chessboard pattern").
* :func:`random_program` — seeded random arithmetic over a configurable
  CFG skeleton (straight-line chains, diamonds, loops), used by the
  property-based tests as a source of arbitrary-but-valid IR and by the
  robustness benches.
* :func:`random_pipeline` — a seeded random *pipeline* of kernels (the
  multi-kernel scenario axis): an ordered mix of suite kernels and
  seeded random loops, with repeats, for exercising the cross-function
  pipeline analysis (:mod:`repro.core.pipeline_runner`).

All generators are deterministic in their arguments.
"""

from __future__ import annotations

import random

from ..ir.builder import FunctionBuilder
from ..ir.function import Function
from ..ir.values import Constant
from .kernels import Workload, w32


def pressure_program(
    live_count: int, iterations: int = 50, hot_every: int = 4, hot_extra: int = 3
) -> Workload:
    """A loop with exactly *live_count* accumulators live throughout.

    Every accumulator is touched each iteration (so all stay live across
    the back edge: pressure ≈ live_count + loop bookkeeping), but every
    ``hot_every``-th accumulator receives ``hot_extra`` additional update
    operations per iteration.  This skew — "certain registers are
    accessed more than others" (§2) — is what makes thermal gradients
    reappear under high pressure even for the chessboard policy, the
    exact failure mode experiment E5 measures.
    """
    if live_count < 1:
        raise ValueError("live_count must be at least 1")
    hot = [j % max(1, hot_every) == 0 for j in range(live_count)]

    # Python reference.
    accs = [w32(i * 3 + 1) for i in range(live_count)]
    for it in range(iterations):
        carry = accs[-1]
        for j in range(live_count):
            prev = accs[j]
            accs[j] = w32(accs[j] + w32(carry ^ (it + j)))
            if hot[j]:
                for extra in range(hot_extra):
                    accs[j] = w32(accs[j] ^ w32(accs[j] + (it + extra)))
            carry = prev
    expected = 0
    for v in accs:
        expected = w32(expected ^ v)

    bld = FunctionBuilder(f"pressure{live_count}")
    bld.block("entry")
    acc_regs = [bld.li(w32(i * 3 + 1), bld.fresh(f"acc{i}_")) for i in range(live_count)]
    limit = bld.li(iterations)
    it, _body, _exit = bld.counted_loop("it", 0, limit)
    carry = bld.copy(acc_regs[-1])
    for j, acc in enumerate(acc_regs):
        prev = bld.copy(acc)
        ij = bld.add(it, Constant(j)) if j else bld.copy(it)
        mixed = bld.xor(carry, ij)
        bld.add(acc, mixed, dest=acc)
        if hot[j]:
            for extra in range(hot_extra):
                bump = bld.add(acc, bld.add(it, Constant(extra)) if extra else it)
                bld.xor(acc, bump, dest=acc)
        carry = prev
    bld.close_loop()
    result = acc_regs[0]
    for acc in acc_regs[1:]:
        result = bld.xor(result, acc)
    bld.ret(result)

    return Workload(
        name=f"pressure{live_count}",
        description=f"synthetic loop holding {live_count} accumulators live "
        f"({sum(hot)} hot)",
        function=bld.build(),
        expected_return=expected,
    )


def random_program(
    seed: int = 0,
    num_blocks: int = 4,
    ops_per_block: int = 6,
    num_seeds: int = 3,
    with_diamond: bool = True,
) -> Function:
    """A seeded random (but always valid) virtual-register function.

    The CFG is a chain of *num_blocks* blocks holding random binary
    operations over previously defined registers, optionally with one
    branch diamond in the middle.  Operations avoid ``div``/``rem`` so
    any input executes safely.

    The result is *valid IR* (verified), but makes no promise of useful
    computation — its role is fuzzing and robustness benches; loops with
    oracles come from :func:`random_loop_program`.
    """
    rng = random.Random(seed)
    bld = FunctionBuilder(f"rand{seed}")
    bld.block("entry")
    pool = [bld.li(rng.randrange(1, 50)) for _ in range(max(1, num_seeds))]
    ops = ["add", "sub", "mul", "and_", "or_", "xor"]

    def emit_ops(count: int) -> None:
        for _ in range(count):
            op = rng.choice(ops)
            lhs = rng.choice(pool)
            rhs = rng.choice(pool + [Constant(rng.randrange(1, 16))])
            pool.append(getattr(bld, op)(lhs, rhs))
            if len(pool) > 12:
                pool.pop(0)

    diamond_at = num_blocks // 2 if with_diamond and num_blocks >= 3 else -1
    for b in range(num_blocks):
        if b > 0:
            bld.jump(f"b{b}")
            bld.block(f"b{b}")
        emit_ops(ops_per_block)
        if b == diamond_at:
            cond = bld.cmplt(pool[-1], pool[-2])
            bld.br(cond, f"then{b}", f"else{b}")
            # Registers defined inside one arm are not defined on the other
            # path, so the arms must not leak values into the shared pool.
            saved_pool = list(pool)
            bld.block(f"then{b}")
            emit_ops(max(1, ops_per_block // 2))
            bld.jump(f"join{b}")
            pool[:] = saved_pool
            bld.block(f"else{b}")
            emit_ops(max(1, ops_per_block // 2))
            bld.jump(f"join{b}")
            pool[:] = saved_pool
            bld.block(f"join{b}")
            emit_ops(1)

    bld.ret(pool[-1])
    return bld.build()


def random_loop_program(
    seed: int = 0,
    body_ops: int = 8,
    iterations: int = 20,
    live_vars: int = 4,
) -> Workload:
    """A seeded random loop kernel with a Python-computed oracle.

    Unlike :func:`random_program`, this generator mirrors the generated
    IR in Python so the interpreter's output can be asserted; used by
    the integration tests as a second kernel family.
    """
    rng = random.Random(seed)
    n_vars = max(2, live_vars)
    init = [rng.randrange(1, 40) for _ in range(n_vars)]
    steps: list[tuple[str, int, int, int]] = []  # (op, dst, src_a, src_b)
    op_choices = ["add", "sub", "xor", "and", "or"]
    for _ in range(body_ops):
        steps.append(
            (
                rng.choice(op_choices),
                rng.randrange(n_vars),
                rng.randrange(n_vars),
                rng.randrange(n_vars),
            )
        )

    # Python reference.
    vals = [w32(v) for v in init]
    py_ops = {
        "add": lambda a, b: w32(a + b),
        "sub": lambda a, b: w32(a - b),
        "xor": lambda a, b: w32(a ^ b),
        "and": lambda a, b: w32(a & b),
        "or": lambda a, b: w32(a | b),
    }
    for it in range(iterations):
        for op, dst, sa, sb in steps:
            vals[dst] = py_ops[op](vals[sa], w32(vals[sb] + it))
    expected = 0
    for v in vals:
        expected = w32(expected ^ v)

    bld = FunctionBuilder(f"randloop{seed}")
    bld.block("entry")
    regs = [bld.li(v, bld.fresh(f"v{i}_")) for i, v in enumerate(init)]
    limit = bld.li(iterations)
    it, _body, _exit = bld.counted_loop("it", 0, limit)
    ir_ops = {
        "add": bld.add,
        "sub": bld.sub,
        "xor": bld.xor,
        "and": bld.and_,
        "or": bld.or_,
    }
    for op, dst, sa, sb in steps:
        shifted = bld.add(regs[sb], it)
        ir_ops[op](regs[sa], shifted, dest=regs[dst])
    bld.close_loop()
    result = regs[0]
    for reg in regs[1:]:
        result = bld.xor(result, reg)
    bld.ret(result)

    return Workload(
        name=f"randloop{seed}",
        description=f"seeded random loop (seed={seed}, {body_ops} ops, "
        f"{n_vars} live vars)",
        function=bld.build(),
        expected_return=expected,
    )


def random_pipeline(
    seed: int = 0,
    length: int = 5,
    generated_fraction: float = 0.25,
) -> list[Workload]:
    """A seeded random pipeline of kernels, in execution order.

    Each stage is drawn from the named kernel suite (probability
    ``1 − generated_fraction``) or is a seeded random loop kernel.
    Stages repeat — real schedules re-run kernels — and repeated stages
    share **one** :class:`Workload` object, so the identity-keyed
    transfer/summary caches of the pipeline analysis compile each
    distinct kernel exactly once.  Deterministic in its arguments.
    """
    from .suite import load, workload_names

    if length < 1:
        raise ValueError("length must be at least 1")
    rng = random.Random(seed)
    names = workload_names()
    distinct: dict[object, Workload] = {}
    stages: list[Workload] = []
    for _ in range(length):
        if rng.random() < generated_fraction:
            key = ("randloop", rng.randrange(16))
            if key not in distinct:
                distinct[key] = random_loop_program(seed=key[1])
        else:
            key = ("kernel", rng.choice(names))
            if key not in distinct:
                distinct[key] = load(key[1])
        stages.append(distinct[key])
    return stages
