"""Benchmark kernels and synthetic workload generators."""

from .generators import (
    pressure_program,
    random_loop_program,
    random_pipeline,
    random_program,
)
from .kernels import Workload, w32
from .suite import (
    full_suite,
    load,
    pressure_sweep,
    random_suite,
    small_suite,
    small_suite_names,
    workload_names,
)

__all__ = [
    "Workload",
    "w32",
    "load",
    "workload_names",
    "full_suite",
    "small_suite",
    "small_suite_names",
    "pressure_sweep",
    "random_suite",
    "pressure_program",
    "random_program",
    "random_loop_program",
    "random_pipeline",
]
