"""The named workload suite every bench sweeps."""

from __future__ import annotations

from typing import Callable

from ..errors import UnknownWorkloadError
from . import kernels
from .generators import pressure_program, random_loop_program
from .kernels import Workload

#: Factory registry: name -> zero-argument builder of the default variant.
_FACTORIES: dict[str, Callable[[], Workload]] = {
    "dot": kernels.dot,
    "saxpy": kernels.saxpy,
    "fir": kernels.fir,
    "iir": kernels.iir,
    "matmul": kernels.matmul,
    "dct8": kernels.dct8,
    "conv3x3": kernels.conv3x3,
    "crc32": kernels.crc32,
    "histogram": kernels.histogram,
    "viterbi": kernels.viterbi,
    "sort": kernels.sort,
    "strsearch": kernels.strsearch,
    "fft_stage": kernels.fft_stage,
    "fib": kernels.fib,
}


def workload_names() -> list[str]:
    """Names of all kernels in the suite, in canonical order."""
    return list(_FACTORIES)


def load(name: str) -> Workload:
    """Build the default variant of the named workload."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise UnknownWorkloadError(name, workload_names()) from None
    return factory()


def full_suite() -> list[Workload]:
    """Every kernel at its default size."""
    return [factory() for factory in _FACTORIES.values()]


#: The fast five-kernel subset, by name (canonical order).
_SMALL_SUITE = ("fir", "iir", "crc32", "fib", "dct8")


def small_suite_names() -> list[str]:
    """Names of the small-suite kernels, without building any IR."""
    return list(_SMALL_SUITE)


def small_suite() -> list[Workload]:
    """A fast five-kernel subset used by the quicker benches and tests."""
    return [load(name) for name in _SMALL_SUITE]


def pressure_sweep(levels: list[int] | None = None, iterations: int = 50) -> list[Workload]:
    """The E5 pressure sweep: one synthetic workload per live-count level."""
    levels = levels or [4, 8, 16, 24, 32, 40, 48]
    return [pressure_program(k, iterations=iterations) for k in levels]


def random_suite(count: int = 5, **kwargs) -> list[Workload]:
    """Seeded random-loop kernels with oracles."""
    return [random_loop_program(seed=s, **kwargs) for s in range(count)]
