"""Workload kernels: the benchmark programs of the evaluation.

The paper motivates RF thermal stress with loop-dominated embedded/media
code; this suite provides exactly that, each kernel built with the
:class:`~repro.ir.builder.FunctionBuilder` and paired with a plain
Python reference implementation so the interpreter's result can be
asserted bit-exactly (32-bit wrapped semantics).

Kernels and what they stress:

========== ==========================================================
dot        streaming loads, one hot accumulator
saxpy      streaming loads/stores, two hot registers
fir        unrolled taps: many simultaneously-live coefficient regs
iir        loop-carried filter state: a fixed set of very hot registers
matmul     triple nested loop, medium pressure
dct8       straight-line butterflies: high ILP, scheduler playground
conv3x3    2-D stencil: nested loops + 9 hot coefficient registers
crc32      bit loop: two registers hammered every cycle
histogram  data-dependent addressing, load-modify-store
viterbi    add-compare-select on branch-free selects, hot state regs
sort       bubble sort: control-heavy, data-dependent branches
fib        two registers ping-ponging every iteration (tiny, hottest)
========== ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.builder import FunctionBuilder
from ..ir.function import Function
from ..ir.values import Constant

_MASK = 0xFFFFFFFF


def w32(value: int) -> int:
    """Wrap to signed 32-bit (the interpreter's arithmetic)."""
    value &= _MASK
    return value - (1 << 32) if value & (1 << 31) else value


@dataclass
class Workload:
    """A runnable benchmark program with its input data and oracle."""

    name: str
    description: str
    function: Function
    args: list[int] = field(default_factory=list)
    memory: dict[int, int] = field(default_factory=dict)
    expected_return: int | None = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Workload {self.name}: {self.function.instruction_count()} insts>"


# ----------------------------------------------------------------------
# Input data generators (deterministic, no RNG needed)
# ----------------------------------------------------------------------
def _data(n: int, base: int, mult: int = 7, add: int = 3, mod: int = 97) -> list[int]:
    return [(i * mult + add) % mod for i in range(n)]


# ----------------------------------------------------------------------
# dot product
# ----------------------------------------------------------------------
def dot(n: int = 64) -> Workload:
    """Dot product of two n-vectors (A at 0, B at 1000)."""
    a = _data(n, 0)
    b = _data(n, 0, mult=5, add=11, mod=89)
    expected = 0
    for i in range(n):
        expected = w32(expected + w32(a[i] * b[i]))

    bld = FunctionBuilder("dot")
    bld.block("entry")
    acc = bld.li(0)
    limit = bld.li(n)
    base_b = bld.li(1000)
    i, _body, _exit = bld.counted_loop("i", 0, limit)
    av = bld.load(i)
    baddr = bld.add(base_b, i)
    bv = bld.load(baddr)
    prod = bld.mul(av, bv)
    bld.add(acc, prod, dest=acc)
    bld.close_loop()
    bld.ret(acc)

    memory = {addr: v for addr, v in enumerate(a)}
    memory.update({1000 + addr: v for addr, v in enumerate(b)})
    return Workload(
        name="dot",
        description="dot product: streaming loads, one hot accumulator",
        function=bld.build(),
        memory=memory,
        expected_return=expected,
    )


# ----------------------------------------------------------------------
# saxpy
# ----------------------------------------------------------------------
def saxpy(n: int = 64, a_scalar: int = 13) -> Workload:
    """Y = a·X + Y (X at 0, Y at 1000); returns Σ Y."""
    x = _data(n, 0)
    y = _data(n, 0, mult=3, add=1, mod=53)
    expected = 0
    out = list(y)
    for i in range(n):
        out[i] = w32(w32(a_scalar * x[i]) + y[i])
        expected = w32(expected + out[i])

    bld = FunctionBuilder("saxpy")
    bld.block("entry")
    acc = bld.li(0)
    limit = bld.li(n)
    scalar = bld.li(a_scalar)
    base_y = bld.li(1000)
    i, _body, _exit = bld.counted_loop("i", 0, limit)
    xv = bld.load(i)
    yaddr = bld.add(base_y, i)
    yv = bld.load(yaddr)
    ax = bld.mul(scalar, xv)
    newy = bld.add(ax, yv)
    bld.store(yaddr, newy)
    bld.add(acc, newy, dest=acc)
    bld.close_loop()
    bld.ret(acc)

    memory = {addr: v for addr, v in enumerate(x)}
    memory.update({1000 + addr: v for addr, v in enumerate(y)})
    return Workload(
        name="saxpy",
        description="saxpy: streaming loads/stores, two hot registers",
        function=bld.build(),
        memory=memory,
        expected_return=expected,
    )


# ----------------------------------------------------------------------
# FIR filter (taps unrolled)
# ----------------------------------------------------------------------
def fir(n: int = 48, taps: tuple[int, ...] = (3, -5, 7, 11, -2, 4, 9, -1)) -> Workload:
    """FIR with unrolled taps held in registers; returns an XOR checksum."""
    k = len(taps)
    x = _data(n + k, 0, mult=11, add=5, mod=71)
    expected = 0
    for i in range(n):
        acc = 0
        for j, c in enumerate(taps):
            acc = w32(acc + w32(c * x[i + j]))
        expected = w32(expected ^ acc)

    bld = FunctionBuilder("fir")
    bld.block("entry")
    checksum = bld.li(0)
    limit = bld.li(n)
    coeff_regs = [bld.li(c) for c in taps]
    i, _body, _exit = bld.counted_loop("i", 0, limit)
    acc = bld.li(0)
    for j, creg in enumerate(coeff_regs):
        addr = bld.add(i, Constant(j)) if j else i
        xv = bld.load(addr)
        term = bld.mul(creg, xv)
        acc = bld.add(acc, term, dest=acc)
    bld.xor(checksum, acc, dest=checksum)
    bld.close_loop()
    bld.ret(checksum)

    memory = {addr: v for addr, v in enumerate(x)}
    return Workload(
        name="fir",
        description=f"{k}-tap FIR, taps unrolled into {k} live coefficient registers",
        function=bld.build(),
        memory=memory,
        expected_return=expected,
    )


# ----------------------------------------------------------------------
# IIR biquad (integer, shift-scaled)
# ----------------------------------------------------------------------
def iir(n: int = 64) -> Workload:
    """Direct-form-I biquad with loop-carried state registers."""
    b0, b1, b2, a1, a2 = 5, 3, 2, 1, 1
    x = _data(n, 0, mult=13, add=7, mod=61)
    expected = 0
    x1 = x2 = y1 = y2 = 0
    for i in range(n):
        acc = w32(
            w32(b0 * x[i]) + w32(b1 * x1) + w32(b2 * x2)
            - w32(a1 * y1) - w32(a2 * y2)
        )
        y = w32((acc & _MASK) >> 4)
        x2, x1 = x1, x[i]
        y2, y1 = y1, y
        expected = w32(expected ^ y)

    bld = FunctionBuilder("iir")
    bld.block("entry")
    checksum = bld.li(0)
    limit = bld.li(n)
    rb0, rb1, rb2, ra1, ra2 = (bld.li(c) for c in (b0, b1, b2, a1, a2))
    x1r = bld.li(0)
    x2r = bld.li(0)
    y1r = bld.li(0)
    y2r = bld.li(0)
    four = bld.li(4)
    i, _body, _exit = bld.counted_loop("i", 0, limit)
    xv = bld.load(i)
    t0 = bld.mul(rb0, xv)
    t1 = bld.mul(rb1, x1r)
    t2 = bld.mul(rb2, x2r)
    t3 = bld.mul(ra1, y1r)
    t4 = bld.mul(ra2, y2r)
    s0 = bld.add(t0, t1)
    s1 = bld.add(s0, t2)
    s2 = bld.sub(s1, t3)
    acc = bld.sub(s2, t4)
    y = bld.shr(acc, four)
    bld.copy(x1r, dest=x2r)
    bld.copy(xv, dest=x1r)
    bld.copy(y1r, dest=y2r)
    bld.copy(y, dest=y1r)
    bld.xor(checksum, y, dest=checksum)
    bld.close_loop()
    bld.ret(checksum)

    memory = {addr: v for addr, v in enumerate(x)}
    return Workload(
        name="iir",
        description="biquad IIR: four loop-carried state registers stay hot",
        function=bld.build(),
        memory=memory,
        expected_return=expected,
    )


# ----------------------------------------------------------------------
# matrix multiply
# ----------------------------------------------------------------------
def matmul(n: int = 8) -> Workload:
    """C = A·B for n×n matrices (A@0, B@10000, C@20000); returns Σ C."""
    a = [[(i * n + j + 1) % 17 for j in range(n)] for i in range(n)]
    b = [[(i * 3 + j * 5 + 2) % 19 for j in range(n)] for i in range(n)]
    expected = 0
    for i in range(n):
        for j in range(n):
            acc = 0
            for kk in range(n):
                acc = w32(acc + w32(a[i][kk] * b[kk][j]))
            expected = w32(expected + acc)

    bld = FunctionBuilder("matmul")
    bld.block("entry")
    total = bld.li(0)
    limit = bld.li(n)
    base_b = bld.li(10000)
    base_c = bld.li(20000)
    nreg = bld.li(n)
    i, _ib, _ie = bld.counted_loop("i", 0, limit)
    row_a = bld.mul(i, nreg)
    j, _jb, _je = bld.counted_loop("j", 0, limit)
    acc = bld.li(0)
    k, _kb, _ke = bld.counted_loop("k", 0, limit)
    a_addr = bld.add(row_a, k)
    av = bld.load(a_addr)
    row_b = bld.mul(k, nreg)
    b_off = bld.add(row_b, j)
    b_addr = bld.add(base_b, b_off)
    bv = bld.load(b_addr)
    prod = bld.mul(av, bv)
    acc = bld.add(acc, prod, dest=acc)
    bld.close_loop()  # k
    c_off = bld.add(row_a, j)
    c_addr = bld.add(base_c, c_off)
    bld.store(c_addr, acc)
    total = bld.add(total, acc, dest=total)
    bld.close_loop()  # j
    bld.close_loop()  # i
    bld.ret(total)

    memory: dict[int, int] = {}
    for i_ in range(n):
        for j_ in range(n):
            memory[i_ * n + j_] = a[i_][j_]
            memory[10000 + i_ * n + j_] = b[i_][j_]
    return Workload(
        name="matmul",
        description=f"{n}x{n} matrix multiply, triple nested loop",
        function=bld.build(),
        memory=memory,
        expected_return=expected,
    )


# ----------------------------------------------------------------------
# 8-point DCT-like butterfly (straight-line, repeated over blocks)
# ----------------------------------------------------------------------
def dct8(blocks: int = 12) -> Workload:
    """Butterfly transform on 8-sample blocks; returns an XOR checksum.

    Straight-line body with high instruction-level parallelism — the
    thermal scheduler's best case.
    """
    n = blocks * 8
    x = _data(n, 0, mult=9, add=2, mod=101)
    expected = 0
    for b in range(blocks):
        s = x[b * 8:(b + 1) * 8]
        a0, a1 = w32(s[0] + s[7]), w32(s[0] - s[7])
        a2, a3 = w32(s[1] + s[6]), w32(s[1] - s[6])
        a4, a5 = w32(s[2] + s[5]), w32(s[2] - s[5])
        a6, a7 = w32(s[3] + s[4]), w32(s[3] - s[4])
        b0, b1 = w32(a0 + a6), w32(a0 - a6)
        b2, b3 = w32(a2 + a4), w32(a2 - a4)
        c0 = w32(b0 + b2)
        c1 = w32(b1 + b3)
        c2 = w32(a1 + a3)
        c3 = w32(a5 + a7)
        out = w32(w32(c0 ^ c1) + w32(c2 ^ c3))
        expected = w32(expected ^ out)

    bld = FunctionBuilder("dct8")
    bld.block("entry")
    checksum = bld.li(0)
    limit = bld.li(blocks)
    eight = bld.li(8)
    b, _body, _exit = bld.counted_loop("b", 0, limit)
    base = bld.mul(b, eight)
    s = []
    for j in range(8):
        addr = bld.add(base, Constant(j)) if j else base
        s.append(bld.load(addr))
    a0 = bld.add(s[0], s[7]); a1 = bld.sub(s[0], s[7])  # noqa: E702
    a2 = bld.add(s[1], s[6]); a3 = bld.sub(s[1], s[6])  # noqa: E702
    a4 = bld.add(s[2], s[5]); a5 = bld.sub(s[2], s[5])  # noqa: E702
    a6 = bld.add(s[3], s[4]); a7 = bld.sub(s[3], s[4])  # noqa: E702
    b0 = bld.add(a0, a6); b1 = bld.sub(a0, a6)  # noqa: E702
    b2 = bld.add(a2, a4); b3 = bld.sub(a2, a4)  # noqa: E702
    c0 = bld.add(b0, b2)
    c1 = bld.add(b1, b3)
    c2 = bld.add(a1, a3)
    c3 = bld.add(a5, a7)
    x0 = bld.xor(c0, c1)
    x1 = bld.xor(c2, c3)
    out = bld.add(x0, x1)
    bld.xor(checksum, out, dest=checksum)
    bld.close_loop()
    bld.ret(checksum)

    memory = {addr: v for addr, v in enumerate(x)}
    return Workload(
        name="dct8",
        description="8-point butterfly blocks: straight-line, high ILP",
        function=bld.build(),
        memory=memory,
        expected_return=expected,
    )


# ----------------------------------------------------------------------
# 3x3 convolution
# ----------------------------------------------------------------------
def conv3x3(width: int = 10, height: int = 10) -> Workload:
    """3×3 stencil over a width×height image; returns Σ outputs."""
    kernel = (1, 2, 1, 2, 4, 2, 1, 2, 1)
    img = [
        [(i * 5 + j * 3 + 1) % 31 for j in range(width)] for i in range(height)
    ]
    expected = 0
    for i in range(height - 2):
        for j in range(width - 2):
            acc = 0
            for ki in range(3):
                for kj in range(3):
                    acc = w32(acc + w32(kernel[ki * 3 + kj] * img[i + ki][j + kj]))
            expected = w32(expected + acc)

    bld = FunctionBuilder("conv3x3")
    bld.block("entry")
    total = bld.li(0)
    h_limit = bld.li(height - 2)
    w_limit = bld.li(width - 2)
    wreg = bld.li(width)
    kregs = [bld.li(c) for c in kernel]
    i, _ib, _ie = bld.counted_loop("i", 0, h_limit)
    row = bld.mul(i, wreg)
    j, _jb, _je = bld.counted_loop("j", 0, w_limit)
    acc = bld.li(0)
    for ki in range(3):
        for kj in range(3):
            roff = bld.add(row, Constant(ki * width + kj)) if (ki or kj) else row
            addr = bld.add(roff, j)
            pixel = bld.load(addr)
            term = bld.mul(kregs[ki * 3 + kj], pixel)
            acc = bld.add(acc, term, dest=acc)
    total = bld.add(total, acc, dest=total)
    bld.close_loop()
    bld.close_loop()
    bld.ret(total)

    memory = {
        i_ * width + j_: img[i_][j_]
        for i_ in range(height)
        for j_ in range(width)
    }
    return Workload(
        name="conv3x3",
        description="3x3 stencil: nested loops, nine hot coefficient registers",
        function=bld.build(),
        memory=memory,
        expected_return=expected,
    )


# ----------------------------------------------------------------------
# CRC-32
# ----------------------------------------------------------------------
def crc32(n: int = 24) -> Workload:
    """Bitwise CRC-32 (poly 0xEDB88320) over n bytes; two registers hammered."""
    poly = 0xEDB88320
    data = [(i * 17 + 9) % 256 for i in range(n)]
    crc = 0xFFFFFFFF
    for byte in data:
        crc ^= byte
        for _ in range(8):
            mask = -(crc & 1) & _MASK
            crc = ((crc >> 1) ^ (poly & mask)) & _MASK
    expected = w32(crc)

    bld = FunctionBuilder("crc32")
    bld.block("entry")
    crc_reg = bld.li(w32(0xFFFFFFFF))
    limit = bld.li(n)
    poly_reg = bld.li(w32(poly))
    one = bld.li(1)
    eight = bld.li(8)
    i, _ib, _ie = bld.counted_loop("i", 0, limit)
    byte = bld.load(i)
    crc_reg = bld.xor(crc_reg, byte, dest=crc_reg)
    k, _kb, _ke = bld.counted_loop("k", 0, eight)
    bit = bld.and_(crc_reg, one)
    mask = bld.neg(bit)
    masked = bld.and_(poly_reg, mask)
    shifted = bld.shr(crc_reg, one)
    crc_reg = bld.xor(shifted, masked, dest=crc_reg)
    bld.close_loop()
    bld.close_loop()
    bld.ret(crc_reg)

    memory = {addr: v for addr, v in enumerate(data)}
    return Workload(
        name="crc32",
        description="bitwise CRC-32: crc register touched every cycle",
        function=bld.build(),
        memory=memory,
        expected_return=expected,
    )


# ----------------------------------------------------------------------
# histogram
# ----------------------------------------------------------------------
def histogram(n: int = 64, bins: int = 8) -> Workload:
    """Bin n samples (data@0, bins@50000); returns Σ bin·count."""
    data = _data(n, 0, mult=23, add=5, mod=103)
    counts = [0] * bins
    for v in data:
        counts[v % bins] += 1
    expected = 0
    for b, c in enumerate(counts):
        expected = w32(expected + w32(b * c))

    bld = FunctionBuilder("histogram")
    bld.block("entry")
    limit = bld.li(n)
    bins_reg = bld.li(bins)
    base = bld.li(50000)
    one = bld.li(1)
    i, _ib, _ie = bld.counted_loop("i", 0, limit)
    v = bld.load(i)
    b = bld.rem(v, bins_reg)
    addr = bld.add(base, b)
    count = bld.load(addr)
    bumped = bld.add(count, one)
    bld.store(addr, bumped)
    bld.close_loop()
    # Reduce: sum b * count[b].
    total = bld.li(0)
    blim = bld.li(bins)
    b2, _bb, _be = bld.counted_loop("b", 0, blim)
    addr2 = bld.add(base, b2)
    c2 = bld.load(addr2)
    term = bld.mul(b2, c2)
    total = bld.add(total, term, dest=total)
    bld.close_loop()
    bld.ret(total)

    memory = {addr: v for addr, v in enumerate(data)}
    memory.update({50000 + b_: 0 for b_ in range(bins)})
    return Workload(
        name="histogram",
        description="histogram: data-dependent addressing, load-modify-store",
        function=bld.build(),
        memory=memory,
        expected_return=expected,
    )


# ----------------------------------------------------------------------
# Viterbi add-compare-select
# ----------------------------------------------------------------------
def viterbi(n: int = 32) -> Workload:
    """Two-state ACS recursion with branch-free selects; returns final metric."""
    bm = _data(2 * n, 0, mult=19, add=3, mod=47)
    m0, m1 = 0, 8
    for t in range(n):
        c00 = w32(m0 + bm[2 * t])
        c10 = w32(m1 + bm[2 * t + 1])
        c01 = w32(m0 + bm[2 * t + 1])
        c11 = w32(m1 + bm[2 * t])
        n0 = min(c00, c10)
        n1 = min(c01, c11)
        m0, m1 = n0, n1
    expected = w32(min(m0, m1))

    def emit_min(bld: FunctionBuilder, a, b):
        lt = bld.cmplt(a, b)
        diff = bld.sub(b, a)
        scaled = bld.mul(lt, diff)
        return bld.sub(b, scaled)

    bld = FunctionBuilder("viterbi")
    bld.block("entry")
    limit = bld.li(n)
    two = bld.li(2)
    m0r = bld.li(0)
    m1r = bld.li(8)
    t, _tb, _te = bld.counted_loop("t", 0, limit)
    off = bld.mul(t, two)
    bm0 = bld.load(off)
    addr1 = bld.add(off, Constant(1))
    bm1 = bld.load(addr1)
    c00 = bld.add(m0r, bm0)
    c10 = bld.add(m1r, bm1)
    c01 = bld.add(m0r, bm1)
    c11 = bld.add(m1r, bm0)
    n0 = emit_min(bld, c00, c10)
    n1 = emit_min(bld, c01, c11)
    bld.copy(n0, dest=m0r)
    bld.copy(n1, dest=m1r)
    bld.close_loop()
    result = emit_min(bld, m0r, m1r)
    bld.ret(result)

    memory = {addr: v for addr, v in enumerate(bm)}
    return Workload(
        name="viterbi",
        description="Viterbi ACS: hot path-metric registers, branch-free selects",
        function=bld.build(),
        memory=memory,
        expected_return=expected,
    )


# ----------------------------------------------------------------------
# bubble sort
# ----------------------------------------------------------------------
def sort(n: int = 16) -> Workload:
    """Bubble sort of n words in memory; returns Σ i·A[i] of the result."""
    data = [((i * 29 + 13) % 83) for i in range(n)]
    ref = sorted(data)
    expected = 0
    for i, v in enumerate(ref):
        expected = w32(expected + w32(i * v))

    bld = FunctionBuilder("sort")
    bld.block("entry")
    n1 = bld.li(n - 1)
    i, _ib, _ie = bld.counted_loop("i", 0, n1)
    bound = bld.sub(n1, i)
    j, _jb, _je = bld.counted_loop("j", 0, bound)
    a = bld.load(j)
    j1 = bld.add(j, Constant(1))
    b = bld.load(j1)
    swap = bld.cmpgt(a, b)
    bld.br(swap, "do_swap", "no_swap")
    bld.block("do_swap")
    bld.store(j, b)
    bld.store(j1, a)
    bld.jump("no_swap")
    bld.block("no_swap")
    bld.close_loop()
    bld.close_loop()
    # Checksum.
    total = bld.li(0)
    limit = bld.li(n)
    k, _kb, _ke = bld.counted_loop("k", 0, limit)
    v = bld.load(k)
    term = bld.mul(k, v)
    total = bld.add(total, term, dest=total)
    bld.close_loop()
    bld.ret(total)

    memory = {addr: v for addr, v in enumerate(data)}
    return Workload(
        name="sort",
        description="bubble sort: control-heavy, data-dependent branches",
        function=bld.build(),
        memory=memory,
        expected_return=expected,
    )


# ----------------------------------------------------------------------
# naive string search
# ----------------------------------------------------------------------
def strsearch(text_len: int = 64, pattern: str = "abcab") -> Workload:
    """Count occurrences of a short pattern in a byte string (text@0, pat@5000).

    Stresses data-dependent inner-loop exits: the match loop aborts on
    the first mismatch, so block frequencies are genuinely input-shaped.
    """
    # Deterministic text over a 3-letter alphabet seeded with the pattern.
    alphabet = "abc"
    text = "".join(alphabet[(i * 7 + i // 5) % 3] for i in range(text_len))
    expected = 0
    m = len(pattern)
    for i in range(text_len - m + 1):
        if text[i:i + m] == pattern:
            expected += 1
    expected = w32(expected)

    bld = FunctionBuilder("strsearch")
    bld.block("entry")
    count = bld.li(0)
    limit = bld.li(text_len - m + 1)
    pat_base = bld.li(5000)
    mreg = bld.li(m)
    one = bld.li(1)
    i, _ib, _ie = bld.counted_loop("i", 0, limit)
    # Inner comparison loop with early exit on mismatch.
    j = bld.li(0, bld.fresh("j"))
    bld.jump("cmp_head")
    bld.block("cmp_head")
    more = bld.cmplt(j, mreg)
    bld.br(more, "cmp_body", "matched")
    bld.block("cmp_body")
    taddr = bld.add(i, j)
    tchar = bld.load(taddr)
    paddr = bld.add(pat_base, j)
    pchar = bld.load(paddr)
    same = bld.cmpeq(tchar, pchar)
    bld.br(same, "advance", "mismatch")
    bld.block("advance")
    bld.add(j, one, dest=j)
    bld.jump("cmp_head")
    bld.block("matched")
    count = bld.add(count, one, dest=count)
    bld.jump("next")
    bld.block("mismatch")
    bld.jump("next")
    bld.block("next")
    bld.close_loop()
    bld.ret(count)

    memory = {addr: ord(ch) for addr, ch in enumerate(text)}
    memory.update({5000 + addr: ord(ch) for addr, ch in enumerate(pattern)})
    return Workload(
        name="strsearch",
        description="naive string search: data-dependent early-exit loops",
        function=bld.build(),
        memory=memory,
        expected_return=expected,
    )


# ----------------------------------------------------------------------
# FFT radix-2 butterfly stage (integer, scaled)
# ----------------------------------------------------------------------
def fft_stage(pairs: int = 24) -> Workload:
    """One radix-2 butterfly stage over interleaved re/im pairs.

    a' = a + w·b, b' = a − w·b with integer twiddles scaled by 2⁴;
    returns an XOR checksum.  Four loads, two multiplies, and shared
    sub-expressions per iteration — a dense, ILP-rich loop body.
    """
    w_re, w_im = 11, 13  # scaled twiddle factor
    data = _data(4 * pairs, 0, mult=29, add=7, mod=57)
    expected = 0
    for p in range(pairs):
        ar, ai = data[4 * p], data[4 * p + 1]
        br, bi = data[4 * p + 2], data[4 * p + 3]
        tr = w32(w32(w_re * br) - w32(w_im * bi))
        ti = w32(w32(w_re * bi) + w32(w_im * br))
        tr = w32((tr & 0xFFFFFFFF) >> 4)
        ti = w32((ti & 0xFFFFFFFF) >> 4)
        out = w32(w32(ar + tr) ^ w32(ai + ti)) ^ w32(w32(ar - tr) + w32(ai - ti))
        expected = w32(expected ^ w32(out))

    bld = FunctionBuilder("fft_stage")
    bld.block("entry")
    checksum = bld.li(0)
    limit = bld.li(pairs)
    wre = bld.li(w_re)
    wim = bld.li(w_im)
    four = bld.li(4)
    shift = bld.li(4)
    p, _pb, _pe = bld.counted_loop("p", 0, limit)
    base = bld.mul(p, four)
    ar = bld.load(base)
    a1 = bld.add(base, Constant(1))
    ai = bld.load(a1)
    a2 = bld.add(base, Constant(2))
    br = bld.load(a2)
    a3 = bld.add(base, Constant(3))
    bi = bld.load(a3)
    m0 = bld.mul(wre, br)
    m1 = bld.mul(wim, bi)
    m2 = bld.mul(wre, bi)
    m3 = bld.mul(wim, br)
    tr0 = bld.sub(m0, m1)
    ti0 = bld.add(m2, m3)
    tr = bld.shr(tr0, shift)
    ti = bld.shr(ti0, shift)
    s0 = bld.add(ar, tr)
    s1 = bld.add(ai, ti)
    s2 = bld.sub(ar, tr)
    s3 = bld.sub(ai, ti)
    x0 = bld.xor(s0, s1)
    x1 = bld.add(s2, s3)
    out = bld.xor(x0, x1)
    bld.xor(checksum, out, dest=checksum)
    bld.close_loop()
    bld.ret(checksum)

    memory = {addr: v for addr, v in enumerate(data)}
    return Workload(
        name="fft_stage",
        description="radix-2 FFT butterfly stage: dense ILP-rich loop body",
        function=bld.build(),
        memory=memory,
        expected_return=expected,
    )


# ----------------------------------------------------------------------
# fibonacci
# ----------------------------------------------------------------------
def fib(n: int = 40) -> Workload:
    """Iterative Fibonacci: two registers ping-pong every iteration."""
    a, b = 0, 1
    for _ in range(n):
        a, b = b, w32(a + b)
    expected = a

    bld = FunctionBuilder("fib")
    bld.block("entry")
    a_reg = bld.li(0)
    b_reg = bld.li(1)
    limit = bld.li(n)
    _i, _body, _exit = bld.counted_loop("i", 0, limit)
    t = bld.add(a_reg, b_reg)
    bld.copy(b_reg, dest=a_reg)
    bld.copy(t, dest=b_reg)
    bld.close_loop()
    bld.ret(a_reg)

    return Workload(
        name="fib",
        description="iterative Fibonacci: the minimal two-hot-register loop",
        function=bld.build(),
        expected_return=expected,
    )
