"""Three-address instructions.

The instruction set is a small RISC-like core: integer arithmetic and
logic, comparisons producing 0/1, loads/stores against a flat memory,
explicit stack-slot spill/reload, and structured control flow (``jump``,
``br``, ``ret``).  ``nop`` exists because the paper's last-resort
optimization inserts NOPs so the register file can cool down between
accesses.

Every instruction knows which registers it *uses* (reads) and *defines*
(writes); those two sets drive liveness, interference, the interpreter's
access trace and — centrally for this reproduction — the per-instruction
power injection of the thermal data flow analysis.
"""

from __future__ import annotations

import enum
from typing import Iterable, Sequence

from ..errors import IRError
from .values import Constant, StackSlot, Value


class Opcode(enum.Enum):
    """Operation codes of the IR.

    The ``value`` of each member is its textual mnemonic, used by the
    parser and printer.
    """

    # Arithmetic / logic (dest, lhs, rhs) or (dest, src) for unary.
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    REM = "rem"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    NEG = "neg"
    NOT = "not"
    # Comparisons produce 0/1 in dest.
    CMPEQ = "cmpeq"
    CMPNE = "cmpne"
    CMPLT = "cmplt"
    CMPLE = "cmple"
    CMPGT = "cmpgt"
    CMPGE = "cmpge"
    # Data movement.
    LI = "li"          # dest = immediate
    COPY = "copy"      # dest = src (register-register move)
    LOAD = "load"      # dest = mem[addr]
    STORE = "store"    # mem[addr] = value
    SPILL = "spill"    # slot = register          (store to stack slot)
    RELOAD = "reload"  # register = slot          (load from stack slot)
    # Control flow.
    JUMP = "jump"      # unconditional, one target
    BR = "br"          # conditional on operand, two targets (taken, fallthrough)
    RET = "ret"        # optional operand
    # Misc.
    NOP = "nop"        # cool-down filler; no uses, no defs
    HALT = "halt"      # stop the interpreter (used by whole-program workloads)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Opcodes that terminate a basic block.
TERMINATORS = frozenset({Opcode.JUMP, Opcode.BR, Opcode.RET, Opcode.HALT})

#: Binary arithmetic/logic opcodes (dest, lhs, rhs).
BINARY_OPS = frozenset(
    {
        Opcode.ADD,
        Opcode.SUB,
        Opcode.MUL,
        Opcode.DIV,
        Opcode.REM,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
        Opcode.SHL,
        Opcode.SHR,
    }
)

#: Unary opcodes (dest, src).
UNARY_OPS = frozenset({Opcode.NEG, Opcode.NOT})

#: Comparison opcodes (dest, lhs, rhs) -> 0/1.
COMPARE_OPS = frozenset(
    {Opcode.CMPEQ, Opcode.CMPNE, Opcode.CMPLT, Opcode.CMPLE, Opcode.CMPGT, Opcode.CMPGE}
)

#: Opcodes with commutative operands (used by the scheduler and CSE).
COMMUTATIVE_OPS = frozenset(
    {Opcode.ADD, Opcode.MUL, Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.CMPEQ, Opcode.CMPNE}
)

#: Opcodes that touch memory (for scheduling dependence construction).
MEMORY_OPS = frozenset({Opcode.LOAD, Opcode.STORE, Opcode.SPILL, Opcode.RELOAD})


def _expected_operand_count(opcode: Opcode) -> tuple[int, int]:
    """Return the (min, max) operand count for *opcode*."""
    if opcode in BINARY_OPS or opcode in COMPARE_OPS:
        return (2, 2)
    if opcode in UNARY_OPS or opcode is Opcode.COPY or opcode is Opcode.LOAD:
        return (1, 1)
    if opcode is Opcode.LI:
        return (1, 1)
    if opcode is Opcode.STORE:
        return (2, 2)
    if opcode is Opcode.SPILL:
        return (2, 2)  # (slot, register)
    if opcode is Opcode.RELOAD:
        return (1, 1)  # (slot,)
    if opcode is Opcode.BR:
        return (1, 1)
    if opcode is Opcode.RET:
        return (0, 1)
    if opcode in (Opcode.JUMP, Opcode.NOP, Opcode.HALT):
        return (0, 0)
    raise IRError(f"unknown opcode {opcode!r}")


class Instruction:
    """A single three-address instruction.

    Parameters
    ----------
    opcode:
        The operation.
    dest:
        The defined register, or ``None`` for instructions without a
        result (stores, branches, ``nop``...).
    operands:
        The source operands, in positional order.  For ``store`` the
        order is ``(address, value)``; for ``spill`` it is
        ``(slot, register)``; for ``br`` it is ``(condition,)``.
    targets:
        Names of successor basic blocks for control-flow opcodes:
        ``jump`` has one, ``br`` has two ``(taken, not_taken)``.

    Instructions are mutable — optimization passes replace operands and
    the register allocator's rewriter replaces virtual with physical
    registers in place — but the *shape* (opcode arity) is validated at
    construction and again by the verifier.
    """

    __slots__ = ("opcode", "dest", "operands", "targets")

    def __init__(
        self,
        opcode: Opcode,
        dest: Value | None = None,
        operands: Sequence[Value] = (),
        targets: Sequence[str] = (),
    ) -> None:
        lo, hi = _expected_operand_count(opcode)
        if not (lo <= len(operands) <= hi):
            raise IRError(
                f"{opcode.value}: expected between {lo} and {hi} operands, "
                f"got {len(operands)}"
            )
        if opcode is Opcode.JUMP and len(targets) != 1:
            raise IRError("jump requires exactly one target")
        if opcode is Opcode.BR and len(targets) != 2:
            raise IRError("br requires exactly two targets (taken, not_taken)")
        if opcode not in (Opcode.JUMP, Opcode.BR) and targets:
            raise IRError(f"{opcode.value} takes no targets")
        if opcode is Opcode.LI and not isinstance(operands[0], Constant):
            raise IRError("li requires a constant operand")
        if opcode is Opcode.SPILL and not isinstance(operands[0], StackSlot):
            raise IRError("spill requires a stack-slot first operand")
        if opcode is Opcode.RELOAD and not isinstance(operands[0], StackSlot):
            raise IRError("reload requires a stack-slot operand")
        needs_dest = (
            opcode in BINARY_OPS
            or opcode in UNARY_OPS
            or opcode in COMPARE_OPS
            or opcode in (Opcode.LI, Opcode.COPY, Opcode.LOAD, Opcode.RELOAD)
        )
        if needs_dest and dest is None:
            raise IRError(f"{opcode.value} requires a destination register")
        if not needs_dest and dest is not None:
            raise IRError(f"{opcode.value} does not produce a result")
        if dest is not None and not dest.is_register:
            raise IRError(f"{opcode.value}: destination must be a register")
        self.opcode = opcode
        self.dest = dest
        self.operands: list[Value] = list(operands)
        self.targets: list[str] = list(targets)

    # ------------------------------------------------------------------
    # Register access sets
    # ------------------------------------------------------------------
    def uses(self) -> list[Value]:
        """Registers read by this instruction, in operand order."""
        return [op for op in self.operands if op.is_register]

    def defs(self) -> list[Value]:
        """Registers written by this instruction (zero or one)."""
        return [self.dest] if self.dest is not None else []

    def registers(self) -> list[Value]:
        """All registers accessed (uses then defs); duplicates preserved.

        The thermal model charges one access worth of energy per entry,
        so an instruction such as ``add %a, %a, %a`` heats register
        ``%a``'s cell three times in one cycle — matching the power
        density argument of the paper's §1.
        """
        return self.uses() + self.defs()

    # ------------------------------------------------------------------
    # Classification helpers
    # ------------------------------------------------------------------
    @property
    def is_terminator(self) -> bool:
        return self.opcode in TERMINATORS

    @property
    def touches_memory(self) -> bool:
        return self.opcode in MEMORY_OPS

    # ------------------------------------------------------------------
    # Mutation helpers used by rewriters and optimization passes
    # ------------------------------------------------------------------
    def replace_uses(self, mapping: dict[Value, Value]) -> None:
        """Replace operand registers according to *mapping* (in place)."""
        self.operands = [mapping.get(op, op) for op in self.operands]

    def replace_defs(self, mapping: dict[Value, Value]) -> None:
        """Replace the destination register according to *mapping* (in place)."""
        if self.dest is not None:
            self.dest = mapping.get(self.dest, self.dest)

    def replace_all(self, mapping: dict[Value, Value]) -> None:
        """Replace both uses and defs according to *mapping* (in place)."""
        self.replace_uses(mapping)
        self.replace_defs(mapping)

    def retarget(self, old: str, new: str) -> None:
        """Replace control-flow target *old* with *new* (in place)."""
        self.targets = [new if t == old else t for t in self.targets]

    def copy(self) -> "Instruction":
        """Return a structural copy of this instruction."""
        return Instruction(self.opcode, self.dest, list(self.operands), list(self.targets))

    # ------------------------------------------------------------------
    # Formatting
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        head = (
            f"{self.dest} = {self.opcode.value}"
            if self.dest is not None
            else self.opcode.value
        )
        tail = ", ".join([str(op) for op in self.operands] + list(self.targets))
        return f"{head} {tail}" if tail else head

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Instruction {self}>"


# ----------------------------------------------------------------------
# Convenience constructors (used heavily by the builder and by tests)
# ----------------------------------------------------------------------
def binary(opcode: Opcode, dest: Value, lhs: Value, rhs: Value) -> Instruction:
    """Build a binary arithmetic/logic/compare instruction."""
    if opcode not in BINARY_OPS and opcode not in COMPARE_OPS:
        raise IRError(f"{opcode.value} is not a binary opcode")
    return Instruction(opcode, dest, (lhs, rhs))


def unary(opcode: Opcode, dest: Value, src: Value) -> Instruction:
    """Build a unary instruction (``neg``/``not``)."""
    if opcode not in UNARY_OPS:
        raise IRError(f"{opcode.value} is not a unary opcode")
    return Instruction(opcode, dest, (src,))


def li(dest: Value, imm: int) -> Instruction:
    """Build a load-immediate instruction."""
    return Instruction(Opcode.LI, dest, (Constant(imm),))


def copy_of(dest: Value, src: Value) -> Instruction:
    """Build a register-register copy."""
    return Instruction(Opcode.COPY, dest, (src,))


def load(dest: Value, addr: Value) -> Instruction:
    """Build a memory load ``dest = mem[addr]``."""
    return Instruction(Opcode.LOAD, dest, (addr,))


def store(addr: Value, value: Value) -> Instruction:
    """Build a memory store ``mem[addr] = value``."""
    return Instruction(Opcode.STORE, None, (addr, value))


def spill(slot: StackSlot, src: Value) -> Instruction:
    """Build a spill of register *src* to *slot*."""
    return Instruction(Opcode.SPILL, None, (slot, src))


def reload(dest: Value, slot: StackSlot) -> Instruction:
    """Build a reload of *slot* into register *dest*."""
    return Instruction(Opcode.RELOAD, dest, (slot,))


def jump(target: str) -> Instruction:
    """Build an unconditional jump."""
    return Instruction(Opcode.JUMP, targets=(target,))


def br(cond: Value, taken: str, not_taken: str) -> Instruction:
    """Build a conditional branch on *cond* (non-zero = taken)."""
    return Instruction(Opcode.BR, None, (cond,), (taken, not_taken))


def ret(value: Value | None = None) -> Instruction:
    """Build a return, optionally with a value."""
    return Instruction(Opcode.RET, None, (value,) if value is not None else ())


def nop() -> Instruction:
    """Build a ``nop`` (the paper's cool-down filler)."""
    return Instruction(Opcode.NOP)


def halt() -> Instruction:
    """Build a ``halt`` terminator."""
    return Instruction(Opcode.HALT)


def iter_register_accesses(instructions: Iterable[Instruction]) -> Iterable[Value]:
    """Yield every register access (reads and writes) across *instructions*."""
    for inst in instructions:
        yield from inst.registers()
