"""Natural loop discovery and loop nesting information.

Loop structure matters twice in this reproduction: the static profile
estimator weights loop bodies by expected trip count (which concentrates
predicted power exactly where the paper says hot spots form), and the
thermal-aware scheduler prioritizes loop blocks when spreading accesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cfg import back_edges
from .function import Function


@dataclass
class Loop:
    """A natural loop: a header plus the body blocks of its back edges."""

    header: str
    body: set[str] = field(default_factory=set)  # includes the header
    latches: set[str] = field(default_factory=set)
    parent: "Loop | None" = None

    @property
    def depth(self) -> int:
        """Nesting depth: 1 for an outermost loop, 2 for its children, ..."""
        depth = 1
        walk = self.parent
        while walk is not None:
            depth += 1
            walk = walk.parent
        return depth

    def contains(self, block: str) -> bool:
        return block in self.body

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Loop header={self.header} blocks={len(self.body)} depth={self.depth}>"


class LoopInfo:
    """Loop forest of a function with per-block depth lookup."""

    def __init__(self, function: Function) -> None:
        self.function = function
        self.loops: list[Loop] = _find_loops(function)
        _build_nesting(self.loops)
        self._depth: dict[str, int] = {}
        for loop in self.loops:
            for name in loop.body:
                self._depth[name] = max(self._depth.get(name, 0), loop.depth)

    def depth(self, block: str) -> int:
        """Loop nesting depth of *block* (0 when not in any loop)."""
        return self._depth.get(block, 0)

    def innermost(self, block: str) -> Loop | None:
        """The innermost loop containing *block*, or ``None``."""
        best: Loop | None = None
        for loop in self.loops:
            if loop.contains(block) and (best is None or loop.depth > best.depth):
                best = loop
        return best

    def headers(self) -> set[str]:
        return {loop.header for loop in self.loops}


def _find_loops(function: Function) -> list[Loop]:
    """Discover natural loops from dominance back edges.

    Back edges sharing a header are merged into a single loop, per the
    classical definition.
    """
    preds = function.predecessors_map()
    by_header: dict[str, Loop] = {}
    for latch, header in sorted(back_edges(function)):
        loop = by_header.setdefault(header, Loop(header=header, body={header}))
        loop.latches.add(latch)
        # Walk backwards from the latch collecting the body.
        stack = [latch]
        while stack:
            name = stack.pop()
            if name in loop.body:
                continue
            loop.body.add(name)
            stack.extend(p for p in preds.get(name, []) if p not in loop.body)
    return sorted(by_header.values(), key=lambda l: l.header)


def _build_nesting(loops: list[Loop]) -> None:
    """Assign each loop the smallest strictly-containing loop as parent."""
    for loop in loops:
        best: Loop | None = None
        for candidate in loops:
            if candidate is loop:
                continue
            if loop.header in candidate.body and loop.body < candidate.body:
                if best is None or len(candidate.body) < len(best.body):
                    best = candidate
        loop.parent = best
