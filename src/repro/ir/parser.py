"""Parser for the textual IR.

Grammar (one construct per line; ``#`` starts a comment):

.. code-block:: text

    module    := function*
    function  := "func" "@" NAME "(" params? ")" "{" block+ "}"
    params    := vreg ("," vreg)*
    block     := LABEL ":" instruction*
    vreg      := "%" NAME
    preg      := "r" INT
    slot      := "@" NAME
    const     := "-"? INT

Instructions follow the printer's canonical form, e.g.::

    %t1 = add %a, %b
    %c = li 42
    store %addr, %t1
    br %cond, then_block, else_block
    jump exit
    ret %t1
"""

from __future__ import annotations

import re

from ..errors import ParseError
from .block import BasicBlock
from .function import Function, Module
from .instructions import Instruction, Opcode
from .values import Constant, PhysicalRegister, StackSlot, Value, VirtualRegister

_OPCODES = {op.value: op for op in Opcode}

_TOKEN_VREG = re.compile(r"^%([A-Za-z_][A-Za-z0-9_.]*)$")
_TOKEN_PREG = re.compile(r"^r(\d+)$")
_TOKEN_SLOT = re.compile(r"^@([A-Za-z_][A-Za-z0-9_.]*)$")
_TOKEN_CONST = re.compile(r"^-?\d+$")
_TOKEN_LABEL = re.compile(r"^([A-Za-z_][A-Za-z0-9_.]*):$")
_FUNC_HEADER = re.compile(r"^func\s+@([A-Za-z_][A-Za-z0-9_.]*)\s*\(([^)]*)\)\s*\{$")


def _parse_value(token: str, line: int) -> Value:
    """Parse one operand token into a :class:`Value`."""
    token = token.strip()
    if match := _TOKEN_VREG.match(token):
        return VirtualRegister(match.group(1))
    if match := _TOKEN_PREG.match(token):
        return PhysicalRegister(int(match.group(1)))
    if match := _TOKEN_SLOT.match(token):
        return StackSlot(match.group(1))
    if _TOKEN_CONST.match(token):
        return Constant(int(token))
    raise ParseError(f"cannot parse operand {token!r}", line)


def _is_target_token(token: str) -> bool:
    """True when *token* looks like a block name rather than a value."""
    token = token.strip()
    return bool(re.match(r"^[A-Za-z_][A-Za-z0-9_.]*$", token)) and not _TOKEN_PREG.match(token)


def parse_instruction(text: str, line: int = 0) -> Instruction:
    """Parse one instruction from its canonical textual form."""
    text = text.strip()
    dest: Value | None = None
    if "=" in text:
        dest_text, _, rest = text.partition("=")
        dest = _parse_value(dest_text.strip(), line)
        text = rest.strip()
    mnemonic, _, tail = text.partition(" ")
    opcode = _OPCODES.get(mnemonic.strip())
    if opcode is None:
        raise ParseError(f"unknown opcode {mnemonic.strip()!r}", line)
    tokens = [t.strip() for t in tail.split(",") if t.strip()] if tail.strip() else []

    if opcode is Opcode.JUMP:
        if len(tokens) != 1 or not _is_target_token(tokens[0]):
            raise ParseError("jump expects one block target", line)
        return Instruction(opcode, targets=(tokens[0],))
    if opcode is Opcode.BR:
        if len(tokens) != 3:
            raise ParseError("br expects: br %cond, taken, not_taken", line)
        cond = _parse_value(tokens[0], line)
        if not (_is_target_token(tokens[1]) and _is_target_token(tokens[2])):
            raise ParseError("br targets must be block names", line)
        return Instruction(opcode, None, (cond,), (tokens[1], tokens[2]))

    operands = tuple(_parse_value(t, line) for t in tokens)
    try:
        return Instruction(opcode, dest, operands)
    except Exception as exc:  # re-raise with position info
        raise ParseError(str(exc), line) from exc


def parse_function(text: str) -> Function:
    """Parse a single function from text (must contain exactly one)."""
    module = parse_module(text)
    functions = list(module)
    if len(functions) != 1:
        raise ParseError(f"expected exactly one function, found {len(functions)}")
    return functions[0]


def parse_module(text: str) -> Module:
    """Parse a module containing zero or more functions."""
    module = Module()
    function: Function | None = None
    block: BasicBlock | None = None

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if header := _FUNC_HEADER.match(line):
            if function is not None:
                raise ParseError("nested 'func' — missing closing '}'", line_no)
            name, params_text = header.group(1), header.group(2)
            params = []
            for token in (t.strip() for t in params_text.split(",") if t.strip()):
                value = _parse_value(token, line_no)
                if not isinstance(value, VirtualRegister):
                    raise ParseError("parameters must be virtual registers", line_no)
                params.append(value)
            function = Function(name, params)
            block = None
            continue
        if line == "}":
            if function is None:
                raise ParseError("'}' outside a function", line_no)
            if not function.blocks:
                raise ParseError(f"function @{function.name} has no blocks", line_no)
            module.add_function(function)
            function = None
            block = None
            continue
        if function is None:
            raise ParseError(f"statement outside a function: {line!r}", line_no)
        if label := _TOKEN_LABEL.match(line):
            block = function.add_block(BasicBlock(label.group(1)))
            continue
        if block is None:
            raise ParseError("instruction before the first block label", line_no)
        block.append(parse_instruction(line, line_no))

    if function is not None:
        raise ParseError("unexpected end of input — missing '}'")
    return module
