"""Dominance analysis (iterative Cooper–Harvey–Kennedy algorithm)."""

from __future__ import annotations

from .cfg import reverse_postorder
from .function import Function


def immediate_dominators(function: Function) -> dict[str, str | None]:
    """Map each reachable block to its immediate dominator.

    The entry block maps to ``None``.  Implements the "engineered"
    iterative algorithm of Cooper, Harvey and Kennedy — fitting, since
    the paper cites Cooper & Torczon for its data-flow background.
    """
    rpo = reverse_postorder(function)
    index = {name: i for i, name in enumerate(rpo)}
    preds = function.predecessors_map()
    entry = function.entry.name

    idom: dict[str, str | None] = {entry: entry}

    def intersect(a: str, b: str) -> str:
        while a != b:
            while index[a] > index[b]:
                a = idom[a]  # type: ignore[assignment]
            while index[b] > index[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for name in rpo:
            if name == entry:
                continue
            candidates = [p for p in preds[name] if p in idom and p in index]
            if not candidates:
                continue
            new_idom = candidates[0]
            for other in candidates[1:]:
                new_idom = intersect(new_idom, other)
            if idom.get(name) != new_idom:
                idom[name] = new_idom
                changed = True

    result: dict[str, str | None] = {entry: None}
    for name in rpo:
        if name != entry:
            result[name] = idom.get(name)
    return result


def dominators(function: Function) -> dict[str, set[str]]:
    """Map each reachable block to its full dominator set (including itself)."""
    idom = immediate_dominators(function)
    result: dict[str, set[str]] = {}
    for name in idom:
        doms = {name}
        walk = idom[name]
        while walk is not None:
            doms.add(walk)
            walk = idom[walk]
        result[name] = doms
    return result


def dominator_tree_children(function: Function) -> dict[str, list[str]]:
    """Map each block to the blocks it immediately dominates."""
    idom = immediate_dominators(function)
    children: dict[str, list[str]] = {name: [] for name in idom}
    for name, parent in idom.items():
        if parent is not None:
            children[parent].append(name)
    return children


def dominance_frontier(function: Function) -> dict[str, set[str]]:
    """The dominance frontier of each reachable block (Cytron et al.)."""
    idom = immediate_dominators(function)
    preds = function.predecessors_map()
    frontier: dict[str, set[str]] = {name: set() for name in idom}
    for name in idom:
        block_preds = [p for p in preds[name] if p in idom]
        if len(block_preds) >= 2:
            for pred in block_preds:
                runner = pred
                while runner != idom[name] and runner is not None:
                    frontier[runner].add(name)
                    runner = idom[runner]  # type: ignore[assignment]
    return frontier
