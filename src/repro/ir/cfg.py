"""Control-flow-graph traversals and queries.

These helpers are pure functions over :class:`~repro.ir.function.Function`
so that analyses never need to maintain a separate graph datastructure;
``networkx`` export is provided for visualization and for property tests
that cross-check our traversals against a reference implementation.
"""

from __future__ import annotations

import networkx as nx

from .function import Function


def postorder(function: Function) -> list[str]:
    """Block names in postorder of a DFS from the entry block.

    Unreachable blocks are excluded (they are also rejected by the
    verifier, but analyses should be robust to them mid-transformation).
    """
    visited: set[str] = set()
    order: list[str] = []

    def visit(name: str) -> None:
        # Iterative DFS to survive very deep synthetic CFGs.
        stack: list[tuple[str, int]] = [(name, 0)]
        visited.add(name)
        while stack:
            current, idx = stack[-1]
            succs = function.block(current).successors()
            if idx < len(succs):
                stack[-1] = (current, idx + 1)
                nxt = succs[idx]
                if nxt not in visited:
                    visited.add(nxt)
                    stack.append((nxt, 0))
            else:
                order.append(current)
                stack.pop()

    visit(function.entry.name)
    return order


def reverse_postorder(function: Function) -> list[str]:
    """Block names in reverse postorder (the canonical forward-analysis order)."""
    return list(reversed(postorder(function)))


def reachable_blocks(function: Function) -> set[str]:
    """Names of blocks reachable from the entry."""
    return set(postorder(function))


def linearize(function: Function) -> list[str]:
    """A deterministic linear layout of the reachable blocks.

    Reverse postorder is used; it keeps loop bodies contiguous for the
    common reducible CFGs our workloads produce, which makes live
    intervals computed on the linear order tight.
    """
    return reverse_postorder(function)


def edges(function: Function) -> list[tuple[str, str]]:
    """All CFG edges as (source, target) block-name pairs."""
    result = []
    for block in function.blocks.values():
        for succ in block.successors():
            result.append((block.name, succ))
    return result


def back_edges(function: Function) -> set[tuple[str, str]]:
    """Edges (u, v) where v dominates u — the loop back edges.

    Requires a reducible CFG for the classical natural-loop
    interpretation; irreducible graphs still return dominance-based back
    edges (possibly empty).
    """
    from .dominance import dominators

    dom = dominators(function)
    result: set[tuple[str, str]] = set()
    for src, dst in edges(function):
        if dst in dom[src]:
            result.add((src, dst))
    return result


def to_networkx(function: Function) -> nx.DiGraph:
    """Export the CFG as a :class:`networkx.DiGraph` over block names."""
    graph = nx.DiGraph()
    graph.add_nodes_from(function.blocks)
    graph.add_edges_from(edges(function))
    return graph
