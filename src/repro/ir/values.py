"""Value classes for the three-address intermediate representation.

The IR distinguishes four kinds of operand values:

* :class:`Constant` — an integer immediate.
* :class:`VirtualRegister` — an unbounded compiler temporary (``%v0``);
  the unit of liveness, interference and register allocation.
* :class:`PhysicalRegister` — an architectural register (``r3``) with a
  fixed position in the register file floorplan; produced by the
  register allocator's rewriter.
* :class:`StackSlot` — an abstract spill/home location in memory
  (``@slot0``); accesses to stack slots do not heat the register file.

Values are immutable and hashable; identity of a register is its name,
so two ``VirtualRegister("v1")`` instances compare equal.  This makes
sets and dictionaries of registers behave naturally across IR clones.
"""

from __future__ import annotations

from dataclasses import dataclass


class Value:
    """Abstract base class for IR operand values."""

    __slots__ = ()

    @property
    def is_register(self) -> bool:
        """True for virtual and physical registers (the things that heat the RF)."""
        return False


@dataclass(frozen=True, slots=True)
class Constant(Value):
    """An integer immediate operand."""

    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True, slots=True)
class VirtualRegister(Value):
    """A compiler temporary, unbounded in number, subject to allocation."""

    name: str

    @property
    def is_register(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"%{self.name}"


@dataclass(frozen=True, slots=True)
class PhysicalRegister(Value):
    """An architectural register identified by its index in the register file."""

    index: int

    @property
    def is_register(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"r{self.index}"


@dataclass(frozen=True, slots=True)
class StackSlot(Value):
    """An abstract memory home used for spilled values.

    Stack slots deliberately carry no floorplan position: loads/stores to
    them cost cycles and energy in the memory hierarchy but inject no power
    into the register file thermal model, which is exactly the trade the
    paper's "spill critical variables" optimization exploits.
    """

    name: str

    def __str__(self) -> str:
        return f"@{self.name}"


def vreg(name: str) -> VirtualRegister:
    """Shorthand constructor for a :class:`VirtualRegister`."""
    return VirtualRegister(name)


def preg(index: int) -> PhysicalRegister:
    """Shorthand constructor for a :class:`PhysicalRegister`."""
    return PhysicalRegister(index)


def const(value: int) -> Constant:
    """Shorthand constructor for a :class:`Constant`."""
    return Constant(value)
