"""Textual IR printer — the inverse of :mod:`repro.ir.parser`.

Round-trip fidelity (`parse(print(f))` structurally equals `f`) is a
property test in the test suite.
"""

from __future__ import annotations

from .block import BasicBlock
from .function import Function, Module
from .instructions import Instruction


def print_instruction(inst: Instruction) -> str:
    """Render a single instruction in canonical textual form."""
    operands = [str(op) for op in inst.operands]
    parts = operands + list(inst.targets)
    tail = ", ".join(parts)
    if inst.dest is not None:
        if tail:
            return f"{inst.dest} = {inst.opcode.value} {tail}"
        return f"{inst.dest} = {inst.opcode.value}"
    if tail:
        return f"{inst.opcode.value} {tail}"
    return inst.opcode.value


def print_block(block: BasicBlock) -> str:
    """Render a basic block with its label and indented instructions."""
    lines = [f"{block.name}:"]
    lines.extend(f"  {print_instruction(inst)}" for inst in block.instructions)
    return "\n".join(lines)


def print_function(function: Function) -> str:
    """Render a whole function, entry block first."""
    params = ", ".join(str(p) for p in function.params)
    lines = [f"func @{function.name}({params}) {{"]
    names = list(function.blocks)
    # Entry block is printed first regardless of insertion order so that
    # the parser's "first block is the entry" convention round-trips.
    entry = function.entry.name
    ordered = [entry] + [n for n in names if n != entry]
    for name in ordered:
        lines.append(print_block(function.blocks[name]))
    lines.append("}")
    return "\n".join(lines)


def print_module(module: Module) -> str:
    """Render every function in the module, separated by blank lines."""
    return "\n\n".join(print_function(f) for f in module)


def format_trace_line(index: int, block: str, inst: Instruction) -> str:
    """One line of an annotated listing: ``[i] block: instruction``."""
    return f"[{index:4d}] {block}: {print_instruction(inst)}"
