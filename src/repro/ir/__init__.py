"""Intermediate representation: values, instructions, blocks, functions, CFG.

This package is the compiler substrate for the thermal data flow
analysis.  The public surface re-exported here is everything a library
user needs to construct, parse, print, verify and traverse programs.
"""

from .block import BasicBlock
from .builder import FunctionBuilder
from .cfg import (
    back_edges,
    edges,
    linearize,
    postorder,
    reachable_blocks,
    reverse_postorder,
    to_networkx,
)
from .dominance import (
    dominance_frontier,
    dominator_tree_children,
    dominators,
    immediate_dominators,
)
from .function import Function, Module
from .instructions import (
    BINARY_OPS,
    COMMUTATIVE_OPS,
    COMPARE_OPS,
    MEMORY_OPS,
    TERMINATORS,
    UNARY_OPS,
    Instruction,
    Opcode,
)
from .loops import Loop, LoopInfo
from .parser import parse_function, parse_instruction, parse_module
from .printer import print_block, print_function, print_instruction, print_module
from .values import (
    Constant,
    PhysicalRegister,
    StackSlot,
    Value,
    VirtualRegister,
    const,
    preg,
    vreg,
)
from .verifier import verify_function, verify_module

__all__ = [
    "BasicBlock",
    "FunctionBuilder",
    "Function",
    "Module",
    "Instruction",
    "Opcode",
    "Loop",
    "LoopInfo",
    "Constant",
    "PhysicalRegister",
    "StackSlot",
    "Value",
    "VirtualRegister",
    "const",
    "preg",
    "vreg",
    "parse_function",
    "parse_instruction",
    "parse_module",
    "print_block",
    "print_function",
    "print_instruction",
    "print_module",
    "verify_function",
    "verify_module",
    "postorder",
    "reverse_postorder",
    "reachable_blocks",
    "linearize",
    "edges",
    "back_edges",
    "to_networkx",
    "immediate_dominators",
    "dominators",
    "dominator_tree_children",
    "dominance_frontier",
    "BINARY_OPS",
    "UNARY_OPS",
    "COMPARE_OPS",
    "COMMUTATIVE_OPS",
    "MEMORY_OPS",
    "TERMINATORS",
]
