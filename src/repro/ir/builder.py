"""Fluent builder for constructing IR functions programmatically.

The workload kernels (:mod:`repro.workloads.kernels`) are written with
this API; it keeps them readable while guaranteeing well-formed IR.

Example
-------
>>> from repro.ir.builder import FunctionBuilder
>>> b = FunctionBuilder("axpy", params=["n", "a"])
>>> entry = b.block("entry")
>>> i = b.li(0)
>>> b.jump("loop")
>>> b.block("loop")
>>> cond = b.cmplt(i, b.param("n"))
>>> b.br(cond, "body", "exit")
>>> # ... (body elided)
"""

from __future__ import annotations

from ..errors import IRError
from . import instructions as ins
from .block import BasicBlock
from .function import Function
from .instructions import Instruction, Opcode
from .values import Constant, StackSlot, Value, VirtualRegister


class FunctionBuilder:
    """Builds a :class:`~repro.ir.function.Function` one instruction at a time.

    The builder tracks a *current block*; instruction-emitting methods
    append to it and return the destination register (when one exists),
    so expressions compose naturally.
    """

    def __init__(self, name: str, params: list[str] | None = None) -> None:
        self.function = Function(
            name, [VirtualRegister(p) for p in (params or [])]
        )
        self._current: BasicBlock | None = None

    # ------------------------------------------------------------------
    # Blocks and parameters
    # ------------------------------------------------------------------
    def block(self, name: str) -> BasicBlock:
        """Create (or switch to) the block called *name* and make it current."""
        if name in self.function.blocks:
            self._current = self.function.block(name)
        else:
            self._current = self.function.add_block(BasicBlock(name))
        return self._current

    def param(self, name: str) -> VirtualRegister:
        """Look up a declared parameter register."""
        for p in self.function.params:
            if p.name == name:
                return p
        raise IRError(f"no parameter named {name!r}")

    def fresh(self, hint: str = "t") -> VirtualRegister:
        """A fresh virtual register."""
        return self.function.new_vreg(hint)

    def slot(self, hint: str = "slot") -> StackSlot:
        """A fresh stack slot."""
        return self.function.new_slot(hint)

    # ------------------------------------------------------------------
    # Emission primitives
    # ------------------------------------------------------------------
    def emit(self, inst: Instruction) -> Instruction:
        """Append *inst* to the current block."""
        if self._current is None:
            raise IRError("no current block — call .block() first")
        return self._current.append(inst)

    def _binary(self, opcode: Opcode, lhs: Value, rhs: Value,
                dest: VirtualRegister | None = None) -> VirtualRegister:
        dest = dest or self.fresh()
        self.emit(ins.binary(opcode, dest, lhs, rhs))
        return dest

    # Arithmetic -------------------------------------------------------
    def add(self, lhs: Value, rhs: Value, dest: VirtualRegister | None = None) -> VirtualRegister:
        return self._binary(Opcode.ADD, lhs, rhs, dest)

    def sub(self, lhs: Value, rhs: Value, dest: VirtualRegister | None = None) -> VirtualRegister:
        return self._binary(Opcode.SUB, lhs, rhs, dest)

    def mul(self, lhs: Value, rhs: Value, dest: VirtualRegister | None = None) -> VirtualRegister:
        return self._binary(Opcode.MUL, lhs, rhs, dest)

    def div(self, lhs: Value, rhs: Value, dest: VirtualRegister | None = None) -> VirtualRegister:
        return self._binary(Opcode.DIV, lhs, rhs, dest)

    def rem(self, lhs: Value, rhs: Value, dest: VirtualRegister | None = None) -> VirtualRegister:
        return self._binary(Opcode.REM, lhs, rhs, dest)

    def and_(self, lhs: Value, rhs: Value, dest: VirtualRegister | None = None) -> VirtualRegister:
        return self._binary(Opcode.AND, lhs, rhs, dest)

    def or_(self, lhs: Value, rhs: Value, dest: VirtualRegister | None = None) -> VirtualRegister:
        return self._binary(Opcode.OR, lhs, rhs, dest)

    def xor(self, lhs: Value, rhs: Value, dest: VirtualRegister | None = None) -> VirtualRegister:
        return self._binary(Opcode.XOR, lhs, rhs, dest)

    def shl(self, lhs: Value, rhs: Value, dest: VirtualRegister | None = None) -> VirtualRegister:
        return self._binary(Opcode.SHL, lhs, rhs, dest)

    def shr(self, lhs: Value, rhs: Value, dest: VirtualRegister | None = None) -> VirtualRegister:
        return self._binary(Opcode.SHR, lhs, rhs, dest)

    def neg(self, src: Value, dest: VirtualRegister | None = None) -> VirtualRegister:
        dest = dest or self.fresh()
        self.emit(ins.unary(Opcode.NEG, dest, src))
        return dest

    def not_(self, src: Value, dest: VirtualRegister | None = None) -> VirtualRegister:
        dest = dest or self.fresh()
        self.emit(ins.unary(Opcode.NOT, dest, src))
        return dest

    # Comparisons ------------------------------------------------------
    def cmpeq(self, lhs: Value, rhs: Value, dest: VirtualRegister | None = None) -> VirtualRegister:
        return self._binary(Opcode.CMPEQ, lhs, rhs, dest)

    def cmpne(self, lhs: Value, rhs: Value, dest: VirtualRegister | None = None) -> VirtualRegister:
        return self._binary(Opcode.CMPNE, lhs, rhs, dest)

    def cmplt(self, lhs: Value, rhs: Value, dest: VirtualRegister | None = None) -> VirtualRegister:
        return self._binary(Opcode.CMPLT, lhs, rhs, dest)

    def cmple(self, lhs: Value, rhs: Value, dest: VirtualRegister | None = None) -> VirtualRegister:
        return self._binary(Opcode.CMPLE, lhs, rhs, dest)

    def cmpgt(self, lhs: Value, rhs: Value, dest: VirtualRegister | None = None) -> VirtualRegister:
        return self._binary(Opcode.CMPGT, lhs, rhs, dest)

    def cmpge(self, lhs: Value, rhs: Value, dest: VirtualRegister | None = None) -> VirtualRegister:
        return self._binary(Opcode.CMPGE, lhs, rhs, dest)

    # Data movement ----------------------------------------------------
    def li(self, imm: int, dest: VirtualRegister | None = None) -> VirtualRegister:
        dest = dest or self.fresh()
        self.emit(ins.li(dest, imm))
        return dest

    def copy(self, src: Value, dest: VirtualRegister | None = None) -> VirtualRegister:
        dest = dest or self.fresh()
        self.emit(ins.copy_of(dest, src))
        return dest

    def load(self, addr: Value, dest: VirtualRegister | None = None) -> VirtualRegister:
        dest = dest or self.fresh()
        self.emit(ins.load(dest, addr))
        return dest

    def store(self, addr: Value, value: Value) -> None:
        self.emit(ins.store(addr, value))

    def spill(self, slot: StackSlot, src: Value) -> None:
        self.emit(ins.spill(slot, src))

    def reload(self, slot: StackSlot, dest: VirtualRegister | None = None) -> VirtualRegister:
        dest = dest or self.fresh()
        self.emit(ins.reload(dest, slot))
        return dest

    # Control flow -----------------------------------------------------
    def jump(self, target: str) -> None:
        self.emit(ins.jump(target))

    def br(self, cond: Value, taken: str, not_taken: str) -> None:
        self.emit(ins.br(cond, taken, not_taken))

    def ret(self, value: Value | None = None) -> None:
        self.emit(ins.ret(value))

    def nop(self) -> None:
        self.emit(ins.nop())

    def halt(self) -> None:
        self.emit(ins.halt())

    # ------------------------------------------------------------------
    # Structured helpers
    # ------------------------------------------------------------------
    def counted_loop(self, name: str, start: int, stop_reg: Value,
                     step: int = 1) -> tuple[VirtualRegister, str, str]:
        """Open a counted loop; returns ``(induction_var, body_label, exit_label)``.

        The caller must emit the body into ``body_label`` and finish it by
        calling :meth:`close_loop`.  The current block must be open
        (unterminated) when calling.
        """
        head = self.function.new_block_name(f"{name}_head")
        body = self.function.new_block_name(f"{name}_body")
        exit_ = self.function.new_block_name(f"{name}_exit")
        ivar = self.li(start, self.fresh(f"{name}_i"))
        self.jump(head)
        self.block(head)
        cond = self.cmplt(ivar, stop_reg)
        self.br(cond, body, exit_)
        self.block(body)
        self._loop_stack = getattr(self, "_loop_stack", [])
        self._loop_stack.append((ivar, step, head, exit_))
        return ivar, body, exit_

    def close_loop(self) -> str:
        """Close the innermost loop opened by :meth:`counted_loop`.

        Emits the induction-variable increment and the back edge, then
        switches to the exit block.  Returns the exit label.
        """
        stack = getattr(self, "_loop_stack", None)
        if not stack:
            raise IRError("close_loop() without a matching counted_loop()")
        ivar, step, head, exit_ = stack.pop()
        bump = self.add(ivar, Constant(step), dest=ivar)
        assert bump == ivar
        self.jump(head)
        self.block(exit_)
        return exit_

    def build(self, verify: bool = True) -> Function:
        """Finish and return the function (verified by default)."""
        if verify:
            from .verifier import verify_function

            verify_function(self.function)
        return self.function
