"""Basic blocks: maximal straight-line instruction sequences."""

from __future__ import annotations

from typing import Iterator

from ..errors import IRError
from .instructions import Instruction


class BasicBlock:
    """A named, ordered sequence of instructions ending in a terminator.

    Blocks own their instruction list; optimization passes mutate it
    through the helpers below so that the "exactly one terminator, last"
    invariant is easy to preserve (the verifier re-checks it anyway).
    """

    __slots__ = ("name", "instructions")

    def __init__(self, name: str, instructions: list[Instruction] | None = None) -> None:
        if not name or not name.replace("_", "").replace(".", "").isalnum():
            raise IRError(f"invalid block name {name!r}")
        self.name = name
        self.instructions: list[Instruction] = list(instructions or [])

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def terminator(self) -> Instruction | None:
        """The block's terminator, or ``None`` if the block is unterminated."""
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    @property
    def body(self) -> list[Instruction]:
        """Instructions excluding the terminator (the schedulable region)."""
        if self.terminator is not None:
            return self.instructions[:-1]
        return list(self.instructions)

    def successors(self) -> list[str]:
        """Names of successor blocks (empty for ``ret``/``halt`` blocks)."""
        term = self.terminator
        if term is None:
            return []
        return list(term.targets)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def append(self, inst: Instruction) -> Instruction:
        """Append *inst*; refuses to append past an existing terminator."""
        if self.terminator is not None:
            raise IRError(f"block {self.name!r} is already terminated")
        self.instructions.append(inst)
        return inst

    def insert(self, index: int, inst: Instruction) -> Instruction:
        """Insert *inst* at *index* (may not displace the terminator to non-last)."""
        if inst.is_terminator and index != len(self.instructions):
            raise IRError("terminators may only be appended")
        self.instructions.insert(index, inst)
        return inst

    def insert_before_terminator(self, inst: Instruction) -> Instruction:
        """Insert *inst* immediately before the terminator (or append)."""
        if self.terminator is not None:
            self.instructions.insert(len(self.instructions) - 1, inst)
        else:
            self.instructions.append(inst)
        return inst

    def remove(self, inst: Instruction) -> None:
        """Remove *inst* (identity match) from the block."""
        for i, existing in enumerate(self.instructions):
            if existing is inst:
                del self.instructions[i]
                return
        raise IRError(f"instruction {inst} not in block {self.name!r}")

    def replace_body(self, new_body: list[Instruction]) -> None:
        """Replace all non-terminator instructions (used by schedulers)."""
        term = self.terminator
        self.instructions = list(new_body)
        if term is not None:
            self.instructions.append(term)

    def copy(self) -> "BasicBlock":
        """Deep-copy this block (instructions are copied, values shared)."""
        return BasicBlock(self.name, [inst.copy() for inst in self.instructions])

    # ------------------------------------------------------------------
    # Protocols
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __str__(self) -> str:
        lines = [f"{self.name}:"]
        lines += [f"  {inst}" for inst in self.instructions]
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BasicBlock {self.name} ({len(self.instructions)} insts)>"
