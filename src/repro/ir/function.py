"""Functions and modules: containers for the control flow graph."""

from __future__ import annotations

from typing import Iterator

from ..errors import IRError
from .block import BasicBlock
from .instructions import Instruction
from .values import StackSlot, Value, VirtualRegister


class Function:
    """A single procedure: an entry block plus a dict of named blocks.

    Block order is insertion order, which the linearizer treats as layout
    order.  The paper describes its analysis "in the context of a single
    procedure" (§4), so the function is the unit all analyses operate on.
    """

    def __init__(self, name: str, params: list[VirtualRegister] | None = None) -> None:
        self.name = name
        self.params: list[VirtualRegister] = list(params or [])
        self.blocks: dict[str, BasicBlock] = {}
        self._entry: str | None = None
        self._next_temp = 0
        self._next_slot = 0
        # Lazily-built caches of names already in use, updated incrementally
        # as fresh names are minted.  Rebuilt on first use so that functions
        # assembled by the parser (bypassing new_vreg/new_slot) stay safe.
        self._minted_vregs: set[str] | None = None
        self._minted_slots: set[str] | None = None

    # ------------------------------------------------------------------
    # Block management
    # ------------------------------------------------------------------
    @property
    def entry(self) -> BasicBlock:
        """The entry block (the first block added unless overridden)."""
        if self._entry is None:
            raise IRError(f"function {self.name!r} has no blocks")
        return self.blocks[self._entry]

    def set_entry(self, name: str) -> None:
        """Declare the block called *name* as the entry block."""
        if name not in self.blocks:
            raise IRError(f"no block named {name!r}")
        self._entry = name

    def add_block(self, block: BasicBlock | str) -> BasicBlock:
        """Add *block* (or a new empty block with that name)."""
        if isinstance(block, str):
            block = BasicBlock(block)
        if block.name in self.blocks:
            raise IRError(f"duplicate block name {block.name!r}")
        self.blocks[block.name] = block
        if self._entry is None:
            self._entry = block.name
        return block

    def remove_block(self, name: str) -> None:
        """Remove the block called *name*; it must not be the entry."""
        if name == self._entry:
            raise IRError("cannot remove the entry block")
        if name not in self.blocks:
            raise IRError(f"no block named {name!r}")
        del self.blocks[name]

    def block(self, name: str) -> BasicBlock:
        """Look up a block by name."""
        try:
            return self.blocks[name]
        except KeyError:
            raise IRError(f"no block named {name!r} in function {self.name!r}") from None

    # ------------------------------------------------------------------
    # Fresh names
    # ------------------------------------------------------------------
    def new_vreg(self, hint: str = "t") -> VirtualRegister:
        """Return a virtual register with a fresh, unused name."""
        if self._minted_vregs is None:
            self._minted_vregs = {v.name for v in self.virtual_registers()}
            self._minted_vregs.update(p.name for p in self.params)
        while True:
            candidate = f"{hint}{self._next_temp}"
            self._next_temp += 1
            if candidate not in self._minted_vregs:
                self._minted_vregs.add(candidate)
                return VirtualRegister(candidate)

    def new_slot(self, hint: str = "slot") -> StackSlot:
        """Return a stack slot with a fresh, unused name."""
        if self._minted_slots is None:
            self._minted_slots = {
                op.name
                for inst in self.instructions()
                for op in inst.operands
                if isinstance(op, StackSlot)
            }
        while True:
            candidate = f"{hint}{self._next_slot}"
            self._next_slot += 1
            if candidate not in self._minted_slots:
                self._minted_slots.add(candidate)
                return StackSlot(candidate)

    def new_block_name(self, hint: str = "bb") -> str:
        """Return an unused block name derived from *hint*."""
        if hint not in self.blocks:
            return hint
        i = 0
        while f"{hint}{i}" in self.blocks:
            i += 1
        return f"{hint}{i}"

    # ------------------------------------------------------------------
    # Whole-function iteration
    # ------------------------------------------------------------------
    def instructions(self) -> Iterator[Instruction]:
        """Iterate every instruction in block-insertion order."""
        for block in self.blocks.values():
            yield from block.instructions

    def virtual_registers(self) -> set[VirtualRegister]:
        """All virtual registers referenced anywhere in the function."""
        regs: set[VirtualRegister] = set(self.params)
        for inst in self.instructions():
            for value in list(inst.operands) + ([inst.dest] if inst.dest else []):
                if isinstance(value, VirtualRegister):
                    regs.add(value)
        return regs

    def registers(self) -> set[Value]:
        """All registers (virtual or physical) referenced in the function."""
        regs: set[Value] = set(self.params)
        for inst in self.instructions():
            for value in list(inst.operands) + ([inst.dest] if inst.dest else []):
                if value.is_register:
                    regs.add(value)
        return regs

    def instruction_count(self) -> int:
        """Total static instruction count."""
        return sum(len(b) for b in self.blocks.values())

    # ------------------------------------------------------------------
    # CFG edges
    # ------------------------------------------------------------------
    def successors(self, block: BasicBlock | str) -> list[BasicBlock]:
        """Successor blocks of *block*."""
        if isinstance(block, str):
            block = self.block(block)
        return [self.block(name) for name in block.successors()]

    def predecessors_map(self) -> dict[str, list[str]]:
        """Map block name → list of predecessor block names (layout order)."""
        preds: dict[str, list[str]] = {name: [] for name in self.blocks}
        for block in self.blocks.values():
            for succ in block.successors():
                if succ not in preds:
                    raise IRError(
                        f"block {block.name!r} targets unknown block {succ!r}"
                    )
                preds[succ].append(block.name)
        return preds

    def copy(self) -> "Function":
        """Deep-copy the function (blocks and instructions are fresh)."""
        clone = Function(self.name, list(self.params))
        for block in self.blocks.values():
            clone.add_block(block.copy())
        clone._entry = self._entry
        clone._next_temp = self._next_temp
        clone._next_slot = self._next_slot
        return clone

    def __str__(self) -> str:
        from .printer import print_function

        return print_function(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Function {self.name} ({len(self.blocks)} blocks)>"


class Module:
    """A named collection of functions (the compilation unit)."""

    def __init__(self, name: str = "module") -> None:
        self.name = name
        self.functions: dict[str, Function] = {}

    def add_function(self, function: Function) -> Function:
        """Add *function*; names must be unique within the module."""
        if function.name in self.functions:
            raise IRError(f"duplicate function name {function.name!r}")
        self.functions[function.name] = function
        return function

    def function(self, name: str) -> Function:
        """Look up a function by name."""
        try:
            return self.functions[name]
        except KeyError:
            raise IRError(f"no function named {name!r}") from None

    def __iter__(self) -> Iterator[Function]:
        return iter(self.functions.values())

    def __str__(self) -> str:
        from .printer import print_module

        return print_module(self)
