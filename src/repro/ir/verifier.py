"""Structural IR verifier.

Checks the invariants the analyses and the interpreter rely on:

* every block is terminated, and only the last instruction is a terminator;
* every branch target names an existing block;
* every block is reachable from the entry;
* every register use is dominated by a definition (params define at entry) —
  a must-reach check via forward data flow over "definitely assigned" sets;
* no instruction mixes virtual and physical registers unless permitted
  (a fully rewritten function must use physical registers exclusively).
"""

from __future__ import annotations

from ..errors import VerificationError
from .cfg import reachable_blocks, reverse_postorder
from .function import Function, Module
from .values import PhysicalRegister, Value, VirtualRegister


def verify_function(function: Function, allow_mixed_registers: bool = True) -> None:
    """Raise :class:`VerificationError` on the first violated invariant."""
    if not function.blocks:
        raise VerificationError(f"@{function.name}: function has no blocks")

    for block in function.blocks.values():
        if block.terminator is None:
            raise VerificationError(
                f"@{function.name}/{block.name}: block is not terminated"
            )
        for inst in block.instructions[:-1]:
            if inst.is_terminator:
                raise VerificationError(
                    f"@{function.name}/{block.name}: terminator {inst} is not last"
                )
        for target in block.successors():
            if target not in function.blocks:
                raise VerificationError(
                    f"@{function.name}/{block.name}: unknown branch target {target!r}"
                )

    reachable = reachable_blocks(function)
    unreachable = set(function.blocks) - reachable
    if unreachable:
        raise VerificationError(
            f"@{function.name}: unreachable blocks {sorted(unreachable)!r}"
        )

    _check_definite_assignment(function)

    if not allow_mixed_registers:
        kinds = {type(r) for r in function.registers()}
        if VirtualRegister in kinds and PhysicalRegister in kinds:
            raise VerificationError(
                f"@{function.name}: mixes virtual and physical registers"
            )


def _check_definite_assignment(function: Function) -> None:
    """Every register use must be preceded by a def on *all* paths."""
    # Forward must-analysis: IN[b] = intersection of OUT[preds].
    preds = function.predecessors_map()
    rpo = reverse_postorder(function)
    all_regs: set[Value] = function.registers()
    entry = function.entry.name

    out_sets: dict[str, set[Value]] = {name: set(all_regs) for name in rpo}
    out_sets[entry] = _block_defs_check(function, entry, set(function.params))

    changed = True
    while changed:
        changed = False
        for name in rpo:
            if name == entry:
                continue
            incoming = [out_sets[p] for p in preds[name] if p in out_sets]
            in_set = set.intersection(*incoming) if incoming else set()
            new_out = _block_defs_check(function, name, in_set)
            if new_out != out_sets[name]:
                out_sets[name] = new_out
                changed = True

    # Final pass raises on the first genuinely unassigned use.
    final_in: dict[str, set[Value]] = {entry: set(function.params)}
    for name in rpo:
        if name == entry:
            continue
        incoming = [out_sets[p] for p in preds[name] if p in out_sets]
        final_in[name] = set.intersection(*incoming) if incoming else set()
    for name in rpo:
        assigned = set(final_in[name])
        for inst in function.block(name).instructions:
            for use in inst.uses():
                if use not in assigned:
                    raise VerificationError(
                        f"@{function.name}/{name}: {use} used before assignment "
                        f"in '{inst}'"
                    )
            assigned.update(inst.defs())


def _block_defs_check(function: Function, name: str, assigned: set[Value]) -> set[Value]:
    """Transfer 'definitely assigned' through a block, without raising."""
    current = set(assigned)
    for inst in function.block(name).instructions:
        current.update(inst.defs())
    return current


def verify_module(module: Module, allow_mixed_registers: bool = True) -> None:
    """Verify every function in *module*."""
    for function in module:
        verify_function(function, allow_mixed_registers=allow_mixed_registers)
