"""Critical-variable identification.

Paper §4: *"the goal would be to determine precisely which parts of the
program are likely to exacerbate power density and thermal problems in
the RFs, and to determine which variables are most likely to be
involved."*

A variable's criticality is the frequency-weighted sum, over its access
sites, of its (expected) cell temperature excess above the RF spatial
mean at that site.  Variables that repeatedly touch hot cells score
high; the top of the ranking feeds the spill/split optimizations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ir.values import Value
from .estimator import PlacementModel
from .tdfa import TDFAResult


@dataclass(frozen=True)
class CriticalVariable:
    """One entry of the criticality ranking."""

    reg: Value
    score: float          # Σ freq × max(0, T_cell − T_mean) over access sites
    accesses: int         # static access sites contributing
    mean_excess: float    # average per-access excess (K)
    peak_excess: float    # worst single-access excess (K)

    def __str__(self) -> str:
        return (
            f"{self.reg}: score={self.score:.3f} accesses={self.accesses} "
            f"mean_excess={self.mean_excess:.3f}K peak={self.peak_excess:.3f}K"
        )


def rank_critical_variables(
    result: TDFAResult,
    placement: PlacementModel,
    top_k: int | None = None,
    include_physical: bool = True,
) -> list[CriticalVariable]:
    """Rank the analyzed function's registers by thermal criticality.

    Parameters
    ----------
    result:
        Output of the thermal data flow analysis.
    placement:
        The placement model the analysis used (expected cell positions).
    top_k:
        Truncate the ranking (``None`` = everything with score ≥ 0).
    include_physical:
        When False, physical registers are skipped (useful when ranking
        a mixed function where only virtual registers are actionable).
    """
    scores: dict[Value, float] = {}
    counts: dict[Value, int] = {}
    peaks: dict[Value, float] = {}
    weight_sums: dict[Value, float] = {}

    function = result.function
    for (block_name, idx), state in result.after.items():
        inst = function.block(block_name).instructions[idx]
        regs = inst.registers()
        if not regs:
            continue
        reg_temps = state.register_temperatures()
        mean_temp = state.mean
        weight = result.profile.block_freq.get(block_name, 0.0)
        for reg in regs:
            if not include_physical and not str(reg).startswith("%"):
                continue
            dist = placement.distribution(reg)
            mass = dist.sum()
            if mass <= 0.0:
                continue  # memory-resident: no RF involvement
            expected_temp = float(dist @ reg_temps / mass)
            excess = max(0.0, expected_temp - mean_temp)
            scores[reg] = scores.get(reg, 0.0) + weight * excess
            counts[reg] = counts.get(reg, 0) + 1
            peaks[reg] = max(peaks.get(reg, 0.0), excess)
            weight_sums[reg] = weight_sums.get(reg, 0.0) + weight

    ranking = [
        CriticalVariable(
            reg=reg,
            score=score,
            accesses=counts[reg],
            mean_excess=score / max(1e-12, weight_sums[reg]),
            peak_excess=peaks[reg],
        )
        for reg, score in scores.items()
    ]
    ranking.sort(key=lambda cv: (-cv.score, str(cv.reg)))
    if top_k is not None:
        ranking = ranking[:top_k]
    return ranking


def hotspot_contribution_map(
    result: TDFAResult, placement: PlacementModel
) -> dict[Value, np.ndarray]:
    """Per-register expected power-weighted location map.

    For each register: its placement distribution scaled by its total
    frequency-weighted access count.  Summing these maps over registers
    approximates the RF power-density field — useful for explaining *why*
    a variable is critical (where its heat lands).
    """
    function = result.function
    contribution: dict[Value, np.ndarray] = {}
    for (block_name, idx), _state in result.after.items():
        inst = function.block(block_name).instructions[idx]
        weight = result.profile.block_freq.get(block_name, 0.0)
        for reg in inst.registers():
            dist = placement.distribution(reg)
            if dist.sum() <= 0:
                continue
            acc = contribution.setdefault(reg, np.zeros_like(dist))
            acc += weight * dist
    return contribution
