"""Shared analysis runtime: one context from block sweeps to suite runs.

PR 1 made the fixed-point engine affine-compiled, but every pipeline
stage and every CLI invocation still rebuilt its own thermal model,
factorized the same conductance matrix, re-exponentiated the same step
operator and recompiled the same block transfers.  The
:class:`AnalysisContext` is the fix: it owns, exactly once,

* the thermal model (whose Cholesky factorization and ``expm`` step
  operators are cached *inside* the model, so sharing the model shares
  the operator caches),
* one power model per placement (so per-instruction dynamic power is
  cached once per placement, not once per analysis), and
* one :class:`~repro.core.transfer.BlockTransferCache` per power model
  (so block transfers and composed sweeps compile once, ever).

Everything that analyzes — a single :func:`~repro.core.tdfa.analyze`
call, the before/after/rule-evaluation analyses inside
:class:`~repro.opt.pipeline.ThermalAwareCompiler`, or a whole suite run
(:mod:`repro.core.suite_runner`) — can go through one context and pay
model construction and compilation once.  Caches are identity-keyed
(see :mod:`repro.core.transfer`): a transformed function is a new
object and can never be served stale transfers, while analyzing the
same function object twice is all cache hits.  For in-place CFG edits
call :meth:`AnalysisContext.invalidate`.

Die-level analyses get the same treatment through
:meth:`AnalysisContext.for_chip`, which swaps in the
:class:`~repro.thermal.chip.ChipThermalModel` /
:class:`~repro.thermal.chip.ChipPowerModel` pair while reusing all the
shared-cache machinery unchanged.
"""

from __future__ import annotations

import threading
from dataclasses import replace
from typing import Callable

import numpy as np

from ..arch.machine import MachineDescription
from ..dataflow.freq import StaticProfile, static_profile
from ..ir.function import Function
from ..thermal.rcmodel import RFThermalModel
from ..thermal.state import ThermalState
from .estimator import ExactPlacement, InstructionPowerModel, PlacementModel
from .tdfa import TDFAConfig, TDFAResult, ThermalDataflowAnalysis
from .transfer import BlockTransferCache

#: A profile cache entry: the CFG signature it was computed from.
_ProfileKey = tuple[tuple[str, tuple[str, ...]], ...]


def _cfg_signature(function: Function) -> _ProfileKey:
    """Shape of the CFG (names + successors): all a static profile sees."""
    return tuple(
        (name, tuple(block.successors()))
        for name, block in function.blocks.items()
    )


class AnalysisContext:
    """Shared thermal model, operator caches and transfer caches.

    Parameters
    ----------
    machine:
        Target machine description.
    model:
        Thermal model to share (default: a fresh per-register
        :class:`~repro.thermal.rcmodel.RFThermalModel`).  Use
        :meth:`for_chip` for the die-level model.
    config:
        Default analysis configuration; per-call overrides go through
        :meth:`analyze`'s keyword arguments.
    power_model_factory:
        ``placement -> power model`` hook; defaults to
        :class:`~repro.core.estimator.InstructionPowerModel` over the
        shared model.  :meth:`for_chip` installs the chip equivalent.
    """

    def __init__(
        self,
        machine: MachineDescription,
        model: RFThermalModel | None = None,
        config: TDFAConfig | None = None,
        power_model_factory: Callable[[PlacementModel], object] | None = None,
        cache_capacity: int = 256,
    ) -> None:
        self.machine = machine
        self.model = model or RFThermalModel(
            machine.geometry, energy=machine.energy
        )
        self.config = config or TDFAConfig()
        if cache_capacity < 1:
            raise ValueError("cache_capacity must be at least 1")
        #: Per-function cache bound: each of the profile/summary/solution
        #: /warm-start stores holds at most this many entries, evicting
        #: oldest-inserted first (FIFO) so unbounded function churn
        #: cannot grow the context without bound.
        self.cache_capacity = cache_capacity
        self.exact_placement = ExactPlacement(machine.geometry.num_registers)
        self._power_model_factory = power_model_factory or (
            lambda placement: InstructionPowerModel(
                machine=self.machine, model=self.model, placement=placement
            )
        )
        self._power_models: dict[PlacementModel, object] = {}
        # Keyed by the power model object (identity hash, strong ref) —
        # never id(), whose values can be recycled after GC.
        self._caches: dict[tuple[object, bool], BlockTransferCache] = {}
        self._profiles: dict[Function, tuple[_ProfileKey, StaticProfile]] = {}
        # Exact affine summaries, keyed by (function object, merge,
        # include_leakage) and validated against the CFG signature
        # (names, instruction counts, successors) a summary bakes in.
        self._summaries: dict[
            tuple[Function, str, bool], tuple[object, object]
        ] = {}
        # Exact block-out solutions (the linear system behind summary
        # extraction and stacked-pipeline warm starts), same keying.
        # Entries keep the LU solver alongside the solution so a
        # single-instruction edit can correct the solution as a rank
        # update (one re-solve against the kept factorization) instead
        # of re-factorizing.
        self._solutions: dict[
            tuple[Function, str, bool],
            tuple[object, object, object, object, object],
        ] = {}
        # Previously converged stacked fixed points, keyed like
        # summaries/solutions and validated against the rpo they were
        # stacked over — what warm-starts an incremental re-analysis
        # after invalidate(function, blocks=...).
        self._warm_starts: dict[
            tuple[Function, str, bool], tuple[tuple[str, ...], object]
        ] = {}
        # Same idea one level up: previously converged *pipeline* fixed
        # points, keyed by (stage function tuple, merge, leakage) and
        # validated against every stage's rpo — what re-warm-starts the
        # stacked pipeline after one stage is edited in place.
        self._pipeline_warm_starts: dict[
            tuple[tuple[Function, ...], str, bool],
            tuple[tuple[tuple[str, ...], ...], object],
        ] = {}
        self._evictions = 0
        self._analyses_run = 0
        self._pipelines_run = 0
        self._summary_compiles = 0
        self._summary_hits = 0
        self._solve_compiles = 0
        self._solve_hits = 0
        # Guards every model/cache mutation when the context is shared
        # across threads (the AnalysisService submits concurrent
        # requests against one context).  Reentrant: a pipeline holding
        # the lock runs nested analyses through the same context.
        self.lock = threading.RLock()
        # Counters of caches dropped by a full invalidate(), so stats
        # stay monotone across resets.
        self._retired_stats = {
            "block_compiles": 0,
            "block_hits": 0,
            "sweep_compiles": 0,
            "sweep_hits": 0,
            "sweep_patches": 0,
            "pipeline_compiles": 0,
            "pipeline_hits": 0,
            "pipeline_sweep_patches": 0,
            "rank_updates": 0,
            "rank_update_fallbacks": 0,
        }

    @classmethod
    def for_chip(
        cls,
        machine: MachineDescription,
        layout=None,
        config: TDFAConfig | None = None,
    ) -> "AnalysisContext":
        """A context over the die-level chip model (RF + ALU + D-cache).

        The chip model is a bigger RC network over the same machinery,
        so the compiled engine, batched sweeps and all shared caches
        apply unchanged; leakage-feedback configurations still resolve
        to the stepped engine exactly as at RF level.
        """
        from ..thermal.chip import ChipPowerModel, ChipThermalModel

        model = ChipThermalModel(machine, layout=layout)
        return cls(
            machine,
            model=model,
            config=config,
            power_model_factory=lambda placement: ChipPowerModel(
                machine, model, placement=placement
            ),
        )

    # ------------------------------------------------------------------
    # Shared components
    # ------------------------------------------------------------------
    def power_model(self, placement: PlacementModel | None = None):
        """The shared power model for *placement* (default: exact)."""
        placement = placement or self.exact_placement
        cached = self._power_models.get(placement)
        if cached is None:
            cached = self._power_model_factory(placement)
            self._power_models[placement] = cached
        return cached

    def transfer_cache(
        self, power_model=None, include_leakage: bool = True
    ) -> BlockTransferCache:
        """The shared transfer cache serving *power_model*."""
        power_model = power_model or self.power_model()
        key = (power_model, include_leakage)
        cached = self._caches.get(key)
        if cached is None:
            cached = BlockTransferCache(
                self.model,
                power_model,
                self.machine.energy.cycle_time,
                include_leakage=include_leakage,
            )
            self._caches[key] = cached
        return cached

    def _bound(self, store: dict) -> None:
        """FIFO-evict *store* down to :attr:`cache_capacity` entries."""
        while len(store) > self.cache_capacity:
            store.pop(next(iter(store)))
            self._evictions += 1

    def static_profile(self, function: Function) -> StaticProfile:
        """The static execution profile of *function*, cached per object."""
        signature = _cfg_signature(function)
        cached = self._profiles.get(function)
        if cached is not None and cached[0] == signature:
            return cached[1]
        profile = static_profile(function)
        self._profiles[function] = (signature, profile)
        self._bound(self._profiles)
        return profile

    # ------------------------------------------------------------------
    # Analyses
    # ------------------------------------------------------------------
    def analysis(
        self,
        config: TDFAConfig | None = None,
        placement: PlacementModel | None = None,
        power_model=None,
    ) -> ThermalDataflowAnalysis:
        """A :class:`ThermalDataflowAnalysis` wired to the shared caches."""
        config = config or self.config
        power_model = power_model or self.power_model(placement)
        return ThermalDataflowAnalysis(
            machine=self.machine,
            model=self.model,
            placement=placement or self.exact_placement,
            config=config,
            power_model=power_model,
            transfer_cache=self.transfer_cache(
                power_model, include_leakage=config.include_leakage
            ),
            context=self,
        )

    def analyze(
        self,
        function: Function,
        entry_state: ThermalState | None = None,
        placement: PlacementModel | None = None,
        power_model=None,
        progress=None,
        **overrides,
    ) -> TDFAResult:
        """Analyze *function* through the shared context.

        Keyword *overrides* (``delta=…``, ``merge=…``, ``engine=…``,
        ``sweep=…``, …) are applied on top of the context's default
        :class:`TDFAConfig` for this call only.  *progress* receives
        one ``{"event": "sweep", ...}`` dict per completed sweep (see
        :meth:`ThermalDataflowAnalysis.run`).
        """
        config = replace(self.config, **overrides) if overrides else self.config
        analysis = self.analysis(config, placement, power_model)
        self._analyses_run += 1
        return analysis.run(function, entry_state=entry_state,
                            progress=progress)

    # ------------------------------------------------------------------
    # Interprocedural layer: summaries and whole-pipeline analyses
    # ------------------------------------------------------------------
    def block_solution(
        self,
        function: Function,
        merge: str | None = None,
        include_leakage: bool | None = None,
    ):
        """The exact affine block-out maps of *function*, solved once.

        Returns ``(solution, rpo, index)`` as produced by the linear
        system behind exact summary extraction (rows ``i·n:(i+1)·n`` of
        *solution* hold block ``rpo[i]``'s ``[A | b]`` over the entry
        state).  Cached per (function object, merge, include_leakage)
        and validated against the CFG signature — this is the one
        linear solve per distinct kernel that both summary extraction
        and the stacked pipeline's warm start amortize.
        """
        from ..ir.cfg import reverse_postorder
        from .summaries import _solve_block_system
        from .transfer import sweep_signature

        merge = merge or self.config.merge
        if include_leakage is None:
            include_leakage = self.config.include_leakage
        signature = sweep_signature(function, reverse_postorder(function))
        key = (function, merge, include_leakage)
        cached = self._solutions.get(key)
        if cached is not None and cached[0] == signature:
            self._solve_hits += 1
            return cached[1], cached[2], cached[3]
        solution, rpo, index, solve = _solve_block_system(
            function,
            self.model,
            self.transfer_cache(
                self.power_model(), include_leakage=include_leakage
            ),
            merge,
            self.static_profile(function),
        )
        self._solutions[key] = (signature, solution, rpo, index, solve)
        self._bound(self._solutions)
        self._solve_compiles += 1
        return solution, rpo, index

    def warm_start(
        self,
        function: Function,
        merge: str,
        include_leakage: bool,
        rpo: list[str],
    ):
        """The previously converged stacked fixed point, if still usable.

        Returns the stored ``(m·n,)`` block-exit vector when one exists
        for this (function, merge, leakage) and was stacked over the
        same rpo; ``None`` otherwise.  The vector is only an *initial
        guess* — the sweep map is a contraction, so a stale guess costs
        iterations, never correctness — but rpo must match for the
        stacking to line up at all.
        """
        cached = self._warm_starts.get((function, merge, include_leakage))
        if cached is not None and cached[0] == tuple(rpo):
            return cached[1]
        return None

    def store_warm_start(
        self,
        function: Function,
        merge: str,
        include_leakage: bool,
        rpo: list[str],
        stacked,
    ) -> None:
        """Remember a converged stacked fixed point for future warm starts.

        Kept across ``invalidate(function, ...)`` on purpose: after a
        block edit the old fixed point is the best available guess —
        that is the incremental re-analysis path.  A full
        ``invalidate()`` clears it.
        """
        key = (function, merge, include_leakage)
        self._warm_starts[key] = (tuple(rpo), stacked)
        self._bound(self._warm_starts)

    def pipeline_warm_start(
        self,
        functions: list[Function],
        merge: str,
        include_leakage: bool,
        rpos,
    ):
        """A previously converged pipeline fixed point, if still usable.

        Returns the stored stacked block-exit vector over *all* stages
        when one exists for this (stage tuple, merge, leakage) and every
        stage was stacked over the same rpo; ``None`` otherwise.  Like
        the per-function store, the vector is only an initial guess —
        the pipeline sweep is a contraction, so a post-edit stale guess
        costs iterations, never correctness — but the per-stage rpos
        must match for the stacking to line up.
        """
        key = (tuple(functions), merge, include_leakage)
        cached = self._pipeline_warm_starts.get(key)
        if cached is not None and cached[0] == tuple(
            tuple(rpo) for rpo in rpos
        ):
            return cached[1]
        return None

    def store_pipeline_warm_start(
        self,
        functions: list[Function],
        merge: str,
        include_leakage: bool,
        rpos,
        stacked,
    ) -> None:
        """Remember a converged pipeline fixed point for future warm starts.

        Kept across ``invalidate(function, blocks=...)`` on purpose —
        re-warm-starting the pipeline from the pre-edit solution is the
        incremental path — and dropped when any member stage is fully
        invalidated or on a full reset.
        """
        key = (tuple(functions), merge, include_leakage)
        self._pipeline_warm_starts[key] = (
            tuple(tuple(rpo) for rpo in rpos), stacked,
        )
        self._bound(self._pipeline_warm_starts)

    def update_instruction(
        self, function: Function, block: str, index: int
    ) -> bool:
        """Absorb an in-place edit of one instruction as a rank update.

        The factored fast path over :meth:`invalidate`: after replacing
        instruction *index* of *block* in place (same instruction
        count), every shared transfer cache corrects the block's
        compiled transfer and its cached sweeps' offset vectors
        (:meth:`~repro.core.transfer.BlockTransferCache.update_instruction`),
        and every cached exact block-out solution of *function* is
        corrected through its kept LU factorization — the
        Sherman–Morrison–Woodbury step on ``(I − M)·X = E·T_entry + c``,
        degenerate because ``(I − M)`` is untouched by an in-place edit,
        so only the offset column's RHS moves.  Returns ``True`` when
        the edit was absorbed everywhere; on any structural mismatch
        (CFG change, count change, stale caches) nothing is patched,
        the edit is routed through ``invalidate(function,
        blocks=[block])`` instead, and ``False`` is returned — the
        result is correct either way, only the cost differs.
        """
        if block not in function.blocks:
            from ..errors import DataflowError

            raise DataflowError(
                f"update_instruction: unknown block {block!r}"
            )
        deltas = {}
        for (power_model, leak), cache in self._caches.items():
            delta = cache.update_instruction(function, block, index)
            if delta is None:
                self.invalidate(function, blocks=[block])
                return False
            deltas[(power_model, leak)] = delta

        # Correct the cached block-out solutions through their kept
        # factorizations: the RHS offset column shifted by Δb_B at the
        # edited block's rows, so the solution's offset column shifts by
        # (I − M)⁻¹ · (e_B ⊗ Δb_B).
        n = self.model.grid.num_nodes
        default_power = self._power_models.get(self.exact_placement)
        for key in list(self._solutions):
            solved_function, _merge, leak = key
            if solved_function is not function:
                continue
            entry = self._solutions[key]
            signature, solution, rpo, index_map, solve = entry
            delta = deltas.get((default_power, leak))
            if delta is None or block not in index_map:
                # Solved against a power model the edit did not reach
                # (or a sub-CFG without the block): drop, recompute lazily.
                del self._solutions[key]
                continue
            rhs = np.zeros(solution.shape[0])
            rows = slice(index_map[block] * n, (index_map[block] + 1) * n)
            rhs[rows] = delta
            correction = solve(rhs.reshape(-1, 1))[:, 0]
            patched = np.array(solution)
            patched[:, n] += correction
            self._solutions[key] = (signature, patched, rpo, index_map, solve)
        # Summaries bake the solved offsets in; they rebuild cheaply
        # from the patched solutions on next use.
        for key in [k for k in self._summaries if k[0] is function]:
            del self._summaries[key]
        return True

    def summary(
        self,
        function: Function,
        merge: str | None = None,
        include_leakage: bool | None = None,
    ):
        """The exact affine exit map of *function*, extracted once.

        Cached per (function object, merge, include_leakage) and
        validated against the CFG signature, so repeated pipeline stages
        cost one linear solve for the first occurrence and O(1)
        afterwards.  See
        :func:`repro.core.summaries.summarize_in_context`.
        """
        from ..ir.cfg import reverse_postorder
        from .summaries import summarize_in_context
        from .transfer import sweep_signature

        merge = merge or self.config.merge
        if include_leakage is None:
            include_leakage = self.config.include_leakage
        signature = sweep_signature(function, reverse_postorder(function))
        key = (function, merge, include_leakage)
        cached = self._summaries.get(key)
        if cached is not None and cached[0] == signature:
            self._summary_hits += 1
            return cached[1]
        summary = summarize_in_context(
            function, self, merge=merge, include_leakage=include_leakage
        )
        self._summaries[key] = (signature, summary)
        self._bound(self._summaries)
        self._summary_compiles += 1
        return summary

    def analyze_pipeline(
        self,
        functions: list[Function],
        strategy: str = "stacked",
        entry_state: ThermalState | None = None,
        progress=None,
        **overrides,
    ):
        """Analyze *functions* as one thermal pipeline.

        The entry state of stage ``k+1`` is the exit state of stage
        ``k``.  *strategy* selects how: ``"stacked"`` (one pipeline-wide
        stacked affine fixed point), ``"composed"`` (exact summary
        composition, one linear solve per distinct kernel) or
        ``"sequential"`` (per-kernel carry-through — the reference, and
        the only strategy for non-affine configurations).  Returns a
        :class:`repro.core.pipeline_runner.PipelineAnalysis`.
        """
        from .pipeline_runner import analyze_pipeline as _impl

        self._pipelines_run += 1
        return _impl(
            self, functions, strategy=strategy, entry_state=entry_state,
            progress=progress, **overrides,
        )

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    @property
    def stats(self) -> dict[str, int]:
        """Aggregate counters: analyses run, compiles paid, hits served.

        The ``*_nbytes`` entries are the memory footprints of the held
        matrices — compiled transfers and sweeps (``transfer_nbytes``),
        cached exit summaries (``summary_nbytes``), exact block-out
        solutions (``solution_nbytes``) and stored warm-start vectors
        (``warm_start_nbytes``) — which is where a sparse sweep's win
        over the dense form is observable in service responses.
        """
        totals = {
            "analyses": self._analyses_run,
            "pipelines": self._pipelines_run,
            "summary_compiles": self._summary_compiles,
            "summary_hits": self._summary_hits,
            "solve_compiles": self._solve_compiles,
            "solve_hits": self._solve_hits,
            "evictions": self._evictions,
            "power_models": len(self._power_models),
            "transfer_caches": len(self._caches),
            "operator_builds": self.model.operator_builds,
            "operator_hits": self.model.operator_hits,
            **self._retired_stats,
        }
        for cache in self._caches.values():
            for key, value in cache.stats.as_dict().items():
                totals[key] += value
        totals["transfer_nbytes"] = sum(
            cache.nbytes() for cache in self._caches.values()
        )
        totals["summary_nbytes"] = sum(
            int(entry[1].matrix.nbytes) + int(entry[1].offset.nbytes)
            for entry in self._summaries.values()
        )
        totals["solution_nbytes"] = sum(
            int(entry[1].nbytes) for entry in self._solutions.values()
        )
        totals["warm_start_nbytes"] = sum(
            int(entry[1].nbytes) for entry in self._warm_starts.values()
        )
        totals["pipeline_nbytes"] = sum(
            cache.pipeline_nbytes() for cache in self._caches.values()
        )
        totals["pipeline_warm_start_nbytes"] = sum(
            int(entry[1].nbytes)
            for entry in self._pipeline_warm_starts.values()
        )
        return totals

    def invalidate(
        self, function: Function | None = None, blocks=None
    ) -> None:
        """Drop cached artifacts (of *blocks*, *function*, or everything).

        With a *function*: drop its compiled blocks, sweeps, profile,
        summaries and solutions — needed only after *in-place* CFG
        edits (transformed functions are new objects and miss the
        identity-keyed caches naturally).  Artifacts keyed on *other*
        functions survive untouched.

        With *blocks* (an iterable of block names of *function*): the
        incremental path — only those blocks' compiled transfers are
        dropped and the function's cached sweeps are marked dirty, so
        the next analysis recompiles the touched blocks, patches the
        affected rows of the stacked sweep in place, and (with
        ``warm_start=True``) restarts the fixed point from the previous
        converged solution.  Stale summaries and solutions for the
        function are still dropped (they bake the edited transfers in);
        the warm-start vector is deliberately kept.

        With no argument: full reset — power models, transfer caches
        and warm starts included.  The per-function stores are FIFO-
        bounded at :attr:`cache_capacity` entries, so periodic resets
        are no longer required under function churn; counters in
        :attr:`stats` survive a reset.
        """
        if function is None:
            if blocks is not None:
                raise ValueError("invalidate(blocks=...) requires a function")
            for cache in self._caches.values():
                for key, value in cache.stats.as_dict().items():
                    self._retired_stats[key] += value
            self._power_models.clear()
            self._caches.clear()
            self._profiles.clear()
            self._summaries.clear()
            self._solutions.clear()
            self._warm_starts.clear()
            self._pipeline_warm_starts.clear()
            return
        for cache in self._caches.values():
            cache.invalidate(function, blocks=blocks)
        if blocks is None:
            self._profiles.pop(function, None)
        for key in [k for k in self._summaries if k[0] is function]:
            del self._summaries[key]
        for key in [k for k in self._solutions if k[0] is function]:
            del self._solutions[key]
        if blocks is None:
            for key in [k for k in self._warm_starts if k[0] is function]:
                del self._warm_starts[key]
            for key in [
                k for k in self._pipeline_warm_starts
                if any(stage is function for stage in k[0])
            ]:
                del self._pipeline_warm_starts[key]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        stats = self.stats
        return (
            f"<AnalysisContext {self.machine.geometry.num_registers}r "
            f"model={type(self.model).__name__} "
            f"analyses={stats['analyses']} "
            f"block_compiles={stats['block_compiles']} "
            f"block_hits={stats['block_hits']}>"
        )
