"""Human-readable analysis reports (used by the examples and benches)."""

from __future__ import annotations

from io import StringIO

from ..thermal.maps import render_map
from ..thermal.metrics import summarize
from .critical import CriticalVariable
from .rules import ThermalPlan
from .tdfa import TDFAResult


def format_result(
    result: TDFAResult,
    criticals: list[CriticalVariable] | None = None,
    plan: ThermalPlan | None = None,
    show_map: bool = True,
) -> str:
    """Render one analysis run as a plain-text report."""
    out = StringIO()
    peak_state = result.peak_state()
    summary = summarize(peak_state)
    status = "converged" if result.converged else "DID NOT CONVERGE"
    out.write(
        f"thermal data flow analysis of @{result.function.name}: {status} "
        f"after {result.iterations} iteration(s), final δ={result.final_delta:.4g}K "
        f"[{result.engine} engine]\n"
    )
    out.write(
        f"  peak={summary.peak:.2f}K  spread={summary.spread:.2f}K  "
        f"gradient={summary.gradient:.2f}K  σ={summary.std:.3f}K\n"
    )
    if not result.converged:
        out.write(
            "  (paper §4: non-convergence suggests the thermal state is too\n"
            "   difficult to predict at compile time — re-optimize the program)\n"
        )
    out.write("hottest instructions:\n")
    for block, idx, peak in result.hottest_instructions(5):
        inst = result.function.block(block).instructions[idx]
        out.write(f"  {block}[{idx}] {inst}  -> {peak:.2f}K\n")
    if criticals:
        out.write("critical variables:\n")
        for cv in criticals:
            out.write(f"  {cv}\n")
    if plan is not None:
        out.write(str(plan) + "\n")
    if show_map:
        out.write("peak thermal map:\n")
        out.write(render_map(peak_state) + "\n")
    return out.getvalue()


def convergence_table(results: list[tuple[float, TDFAResult]]) -> str:
    """Format a δ-sweep (experiment F2) as an aligned text table."""
    lines = [f"{'delta (K)':>12} {'iterations':>10} {'converged':>9} {'final δ (K)':>12}"]
    for delta, result in results:
        lines.append(
            f"{delta:>12.4g} {result.iterations:>10d} "
            f"{str(result.converged):>9} {result.final_delta:>12.4g}"
        )
    return "\n".join(lines)
