"""The paper's contribution: thermal data flow analysis and its clients."""

from .context import AnalysisContext
from .pipeline_runner import (
    PIPELINE_STRATEGIES,
    PipelineAnalysis,
    PipelineReport,
    PipelineStageItem,
    analyze_pipeline,
    run_pipeline,
)
from .critical import (
    CriticalVariable,
    hotspot_contribution_map,
    rank_critical_variables,
)
from .estimator import ExactPlacement, InstructionPowerModel, PlacementModel
from .predictive import AllocationPlacement, PolicyPlacement, UniformPlacement
from .report import convergence_table, format_result
from .rules import Recommendation, RuleConfig, ThermalPlan, evaluate_rules
from .suite_runner import SuiteItem, SuiteReport, run_suite
from .summaries import (
    FunctionSummary,
    compose_pipeline,
    summarize_function,
    summarize_in_context,
)
from .tdfa import (
    ENGINE_MODES,
    MERGE_MODES,
    STOP_MODES,
    SWEEP_MODES,
    TDFAConfig,
    TDFAResult,
    ThermalDataflowAnalysis,
    analyze,
    converged_by,
)
from .transfer import (
    AffineTransfer,
    BlockTransferCache,
    CompiledBlock,
    CompiledPipelineSweep,
    CompiledSweep,
    compile_block,
    compile_pipeline_sweep,
    compile_sweep,
)

__all__ = [
    "ThermalDataflowAnalysis",
    "TDFAConfig",
    "TDFAResult",
    "MERGE_MODES",
    "ENGINE_MODES",
    "SWEEP_MODES",
    "STOP_MODES",
    "analyze",
    "converged_by",
    "AnalysisContext",
    "SuiteItem",
    "SuiteReport",
    "run_suite",
    "AffineTransfer",
    "BlockTransferCache",
    "CompiledBlock",
    "CompiledSweep",
    "CompiledPipelineSweep",
    "compile_block",
    "compile_sweep",
    "compile_pipeline_sweep",
    "PIPELINE_STRATEGIES",
    "PipelineAnalysis",
    "PipelineReport",
    "PipelineStageItem",
    "analyze_pipeline",
    "run_pipeline",
    "PlacementModel",
    "ExactPlacement",
    "InstructionPowerModel",
    "UniformPlacement",
    "PolicyPlacement",
    "AllocationPlacement",
    "CriticalVariable",
    "rank_critical_variables",
    "hotspot_contribution_map",
    "Recommendation",
    "RuleConfig",
    "ThermalPlan",
    "evaluate_rules",
    "format_result",
    "convergence_table",
    "FunctionSummary",
    "summarize_function",
    "summarize_in_context",
    "compose_pipeline",
]
