"""The paper's contribution: thermal data flow analysis and its clients."""

from .critical import (
    CriticalVariable,
    hotspot_contribution_map,
    rank_critical_variables,
)
from .estimator import ExactPlacement, InstructionPowerModel, PlacementModel
from .predictive import AllocationPlacement, PolicyPlacement, UniformPlacement
from .report import convergence_table, format_result
from .rules import Recommendation, RuleConfig, ThermalPlan, evaluate_rules
from .summaries import FunctionSummary, compose_pipeline, summarize_function
from .tdfa import (
    ENGINE_MODES,
    MERGE_MODES,
    TDFAConfig,
    TDFAResult,
    ThermalDataflowAnalysis,
    analyze,
)
from .transfer import (
    AffineTransfer,
    BlockTransferCache,
    CompiledBlock,
    compile_block,
)

__all__ = [
    "ThermalDataflowAnalysis",
    "TDFAConfig",
    "TDFAResult",
    "MERGE_MODES",
    "ENGINE_MODES",
    "analyze",
    "AffineTransfer",
    "BlockTransferCache",
    "CompiledBlock",
    "compile_block",
    "PlacementModel",
    "ExactPlacement",
    "InstructionPowerModel",
    "UniformPlacement",
    "PolicyPlacement",
    "AllocationPlacement",
    "CriticalVariable",
    "rank_critical_variables",
    "hotspot_contribution_map",
    "Recommendation",
    "RuleConfig",
    "ThermalPlan",
    "evaluate_rules",
    "format_result",
    "convergence_table",
    "FunctionSummary",
    "summarize_function",
    "compose_pipeline",
]
