"""Affine thermal summaries of whole functions.

The paper analyzes one procedure at a time ("For simplicity, we describe
it in the context of a single procedure", §4) and closes with the goal
of "comprehensive data flow thermal analyses".  This module is that
extension: because the per-instruction transfer is affine in the thermal
state and the ``freq``/``mean`` CFG joins are convex combinations, the
entire converged analysis is an *affine map* from the entry state to the
exit state,

    T_exit = A · T_in + b,

which can be extracted once per function and then **composed**: the
thermal effect of running kernel ``g`` after kernel ``f`` is
``summary(g) ∘ summary(f)``, evaluated in microseconds with two
mat-vecs instead of re-running the analysis.  This is the natural
building block for interprocedural / multi-kernel thermal reasoning
(media pipelines: conv → dct → crc ...).

Extraction is **exact**: the converged analysis satisfies a linear
system — per block, ``out_B = A_B·in_B + b_B`` with the compiled block
transfer of :mod:`repro.core.transfer`, and ``in_B`` a fixed convex
combination of predecessor outs (plus the entry state at the entry
block).  Solving that system symbolically for the block outs as affine
functions of the entry state, then combining the exit blocks under the
converged (static) merge weights, yields ``A`` and ``b`` in closed form
— one LU factorization instead of the (nodes + 1) full analysis runs
the original probe-based extraction performed.  The probe path is
retained (``method="probe"``) as an independent cross-check; a property
test asserts both extractions agree.

Restrictions (validated): linear thermal model (no leakage-temperature
feedback) and an affine merge mode (``freq`` or ``mean``) — with ``max``
joins or leakage feedback the exit map is not affine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.linalg
import scipy.sparse
import scipy.sparse.linalg

from ..arch.machine import MachineDescription
from ..dataflow.freq import static_profile
from ..errors import DataflowError
from ..ir.cfg import reverse_postorder
from ..ir.function import Function
from ..thermal.rcmodel import RFThermalModel
from ..thermal.state import ThermalState
from .estimator import ExactPlacement, InstructionPowerModel, PlacementModel
from .tdfa import TDFAConfig, ThermalDataflowAnalysis
from .transfer import (
    SPARSE_MIN_STACKED,
    BlockTransferCache,
    affine_merge_plan,
    normalized_weights,
)


@dataclass(frozen=True)
class FunctionSummary:
    """The affine exit map of one function: ``T_exit = A·T_in + b``."""

    function_name: str
    matrix: np.ndarray   # A, (nodes × nodes)
    offset: np.ndarray   # b, (nodes,)
    #: Peak node temperature observed anywhere when entered at ambient —
    #: a quick hot-spot severity indicator for the summarized function.
    ambient_peak: float
    grid_nodes: int

    def apply(self, state: ThermalState) -> ThermalState:
        """Exit state for the given entry state (two mat-vecs)."""
        if state.grid.num_nodes != self.grid_nodes:
            raise DataflowError("state lives on a different thermal grid")
        return ThermalState(
            state.grid, self.matrix @ state.temperatures + self.offset
        )

    def compose(self, inner: "FunctionSummary") -> "FunctionSummary":
        """The summary of running *inner* first, then this function.

        ``(self ∘ inner)(x) = A_self (A_inner x + b_inner) + b_self``.
        """
        if inner.grid_nodes != self.grid_nodes:
            raise DataflowError("summaries live on different thermal grids")
        return FunctionSummary(
            function_name=f"{inner.function_name};{self.function_name}",
            matrix=self.matrix @ inner.matrix,
            offset=self.matrix @ inner.offset + self.offset,
            ambient_peak=max(self.ambient_peak, inner.ambient_peak),
            grid_nodes=self.grid_nodes,
        )

    def contraction_factor(self) -> float:
        """Spectral norm of A.

        Strictly below 1 for any function with at least one instruction:
        the RC network always forgets some of the entry state.  This is
        the quantitative form of the convergence argument in DESIGN.md —
        compositions of summaries converge geometrically to a unique
        steady schedule no matter the initial temperature.
        """
        return float(np.linalg.norm(self.matrix, ord=2))

    def fixed_point(self) -> np.ndarray | None:
        """Node temperatures of the steady schedule ``x = A x + b``.

        This is the entry (= exit) state reached by running the function
        back-to-back forever; returns ``None`` when A has spectral norm
        ≥ 1 (cannot happen for the RC model, guarded anyway).  Wrap in a
        :class:`~repro.thermal.state.ThermalState` with the caller's
        grid for map rendering.
        """
        if self.contraction_factor() >= 1.0:
            return None
        return np.linalg.solve(
            np.eye(self.grid_nodes) - self.matrix, self.offset
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FunctionSummary {self.function_name} "
            f"contraction={self.contraction_factor():.4f} "
            f"ambient_peak={self.ambient_peak:.2f}K>"
        )


def exit_weight_plan(
    function: Function, rpo: list[str], profile
) -> list[tuple[str, float]]:
    """The freq-normalized exit-block weights of *function*.

    The ``(block name, weight)`` convex combination whose weighted sum
    of block-out states *is* the function's exit state — the same
    bookkeeping as :meth:`~repro.core.tdfa.TDFAResult.exit_state`,
    shared by exact summary extraction and the stacked pipeline sweep.
    """
    rpo_set = set(rpo)
    exits = [
        name
        for name, block in function.blocks.items()
        if not block.successors() and name in rpo_set
    ]
    if not exits:
        # Infinite loop: exit_state() falls back to every analyzed block.
        exits = list(rpo)
    weights = normalized_weights(
        [profile.block_freq.get(name, 0.0) for name in exits]
    )
    return list(zip(exits, weights))


def _solve_block_system(
    function: Function,
    model: RFThermalModel,
    cache: BlockTransferCache,
    merge: str,
    profile,
) -> tuple[np.ndarray, list[str], dict[str, int]]:
    """Solve the converged analysis symbolically for its block-out maps.

    Unknowns are the block-exit states, stacked; each satisfies
    ``out_B = A_B (Σ_P w_{P,B} out_P + e_B T_entry) + b_B`` with static
    merge weights, so ``(I − M)·X = E·T_entry + c`` is linear and every
    block's affine out-map follows from one factorization with
    (nodes + 1) right-hand sides.  Returns ``(solution, rpo, index,
    solve)`` where rows ``i·n:(i+1)·n`` of *solution* hold ``[A_i |
    b_i]`` for block ``rpo[i]`` and *solve* re-applies the kept LU
    factorization to fresh right-hand sides — what lets a
    single-instruction edit correct the solution as a rank update
    (``(I − M)`` depends only on ``op^k`` and the merge weights, both
    untouched by an in-place edit, so only the RHS moves).  *cache* is
    shared with any analysis run over the same configuration, so every
    block is compiled exactly once.
    """
    rpo = reverse_postorder(function)
    preds = function.predecessors_map()
    entry = function.entry.name
    n = model.grid.num_nodes
    m = len(rpo)
    index = {name: i for i, name in enumerate(rpo)}
    plan = affine_merge_plan(function, rpo, preds, profile, merge, entry)

    rhs = np.zeros((m * n, n + 1))  # [E | c]
    if m * n >= SPARSE_MIN_STACKED:
        # M only has nonzero (n, n) blocks at direct CFG edges — no
        # substitution chains here, unlike the composed sweep — so at
        # chip scale the sparse LU factors far fewer entries than the
        # dense solve touches.
        coupling: dict[tuple[int, int], np.ndarray] = {}
        for name in rpo:
            i = index[name]
            compiled = cache.block(function.block(name))
            a_block = compiled.transfer.matrix
            rows = slice(i * n, (i + 1) * n)
            rhs[rows, n] = compiled.transfer.offset
            coupling[(i, i)] = np.eye(n)
            for src, w in plan[name]:
                if src is None:
                    rhs[rows, :n] += w * a_block
                else:
                    j = index[src]
                    existing = coupling.get((i, j))
                    block_term = -w * a_block
                    coupling[(i, j)] = (
                        block_term if existing is None
                        else existing + block_term
                    )
        grid_blocks = [
            [coupling.get((i, j)) for j in range(m)] for i in range(m)
        ]
        big = scipy.sparse.bmat(grid_blocks, format="csc")
        lu = scipy.sparse.linalg.splu(big)
        solution = lu.solve(rhs)
        return solution, rpo, index, lu.solve

    big = np.eye(m * n)  # becomes I − M in place
    for name in rpo:
        i = index[name]
        compiled = cache.block(function.block(name))
        a_block = compiled.transfer.matrix
        rows = slice(i * n, (i + 1) * n)
        rhs[rows, n] = compiled.transfer.offset
        for src, w in plan[name]:
            if src is None:
                rhs[rows, :n] += w * a_block
            else:
                j = index[src]
                big[rows, j * n:(j + 1) * n] -= w * a_block

    factors = scipy.linalg.lu_factor(big)
    solution = scipy.linalg.lu_solve(factors, rhs)

    def solve(new_rhs: np.ndarray) -> np.ndarray:
        return scipy.linalg.lu_solve(factors, new_rhs)

    return solution, rpo, index, solve


def _exit_map_from_solution(
    solution: np.ndarray,
    rpo: list[str],
    index: dict[str, int],
    function: Function,
    profile,
    n: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Combine solved block-out maps into the function's exit map."""
    matrix = np.zeros((n, n))
    offset = np.zeros(n)
    for name, w in exit_weight_plan(function, rpo, profile):
        rows = slice(index[name] * n, (index[name] + 1) * n)
        matrix += w * solution[rows, :n]
        offset += w * solution[rows, n]
    return matrix, offset


def _extract_exact(
    function: Function,
    model: RFThermalModel,
    cache: BlockTransferCache,
    merge: str,
    profile=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Solve the converged analysis symbolically for its affine exit map."""
    profile = profile or static_profile(function)
    n = model.grid.num_nodes
    solution, rpo, index, _solve = _solve_block_system(
        function, model, cache, merge, profile
    )
    return _exit_map_from_solution(solution, rpo, index, function, profile, n)


def summarize_function(
    function: Function,
    machine: MachineDescription,
    model: RFThermalModel | None = None,
    placement: PlacementModel | None = None,
    delta: float = 0.005,
    merge: str = "freq",
    probe: float = 1.0,
    method: str = "exact",
) -> FunctionSummary:
    """Extract the affine exit map of *function*.

    ``method="exact"`` (default) composes the compiled block transfers
    along the converged merge weights and solves for the exit map in
    closed form — one analysis run (for convergence diagnostics and the
    ambient peak) plus one linear solve.  ``method="probe"`` is the
    original finite-probe extraction: one analysis from ambient and one
    per thermal node from ``ambient + probe·e_i``, (nodes + 1) runs in
    total — retained as an independent cross-check of the exact path.
    """
    if merge not in ("freq", "mean"):
        raise DataflowError(
            f"summaries require an affine merge ('freq'/'mean'), got {merge!r}"
        )
    if machine.energy.leakage_temp_coeff != 0.0:
        raise DataflowError(
            "summaries require a linear thermal model "
            "(leakage_temp_coeff must be 0)"
        )
    if method not in ("exact", "probe"):
        raise DataflowError(
            f"method must be 'exact' or 'probe', got {method!r}"
        )
    model = model or RFThermalModel(machine.geometry, energy=machine.energy)
    # One power model + transfer cache serves both the convergence-check
    # run and the exact extraction: blocks compile exactly once.
    power_model = InstructionPowerModel(
        machine=machine,
        model=model,
        placement=placement or ExactPlacement(machine.geometry.num_registers),
    )
    cache = BlockTransferCache(
        model, power_model, machine.energy.cycle_time, include_leakage=True
    )
    analysis = ThermalDataflowAnalysis(
        machine=machine,
        model=model,
        config=TDFAConfig(delta=delta, merge=merge),
        power_model=power_model,
        transfer_cache=cache,
    )

    ambient = model.ambient_state()
    base_result = analysis.run(function, entry_state=ambient)
    if not base_result.converged:
        raise DataflowError(
            f"analysis of @{function.name} did not converge; cannot summarize"
        )

    n = model.grid.num_nodes
    if method == "exact":
        matrix, offset = _extract_exact(function, model, cache, merge)
    else:
        base_exit = base_result.exit_state().temperatures
        matrix = np.zeros((n, n))
        for i in range(n):
            perturbed = ambient.temperatures.copy()
            perturbed[i] += probe
            entry = ThermalState(model.grid, perturbed)
            result = analysis.run(function, entry_state=entry)
            matrix[:, i] = (result.exit_state().temperatures - base_exit) / probe
        offset = base_exit - matrix @ ambient.temperatures

    return FunctionSummary(
        function_name=function.name,
        matrix=matrix,
        offset=offset,
        ambient_peak=base_result.peak_state().peak,
        grid_nodes=n,
    )


def summarize_in_context(
    function: Function,
    context,
    merge: str = "freq",
    include_leakage: bool = True,
) -> FunctionSummary:
    """Extract *function*'s exact affine exit map through a shared context.

    The batched-runtime variant of :func:`summarize_function`
    (``method="exact"``): block transfers come from the context's shared
    :class:`~repro.core.transfer.BlockTransferCache` (so a pipeline of
    repeated kernels compiles each distinct kernel once), and **no
    fixed-point run happens at all** — the cost per distinct kernel is
    the one linear solve, with the ambient-entry peak materialized from
    the solved block maps in a single reconstruction pass.  The affine
    contraction argument (see :mod:`repro.core.transfer`) guarantees the
    iterative analysis converges to exactly this map's fixed point, so
    skipping the convergence-check run loses no information for linear
    models.

    Restrictions match the exact method: an affine merge and a power
    model without leakage-temperature feedback.
    """
    if merge not in ("freq", "mean"):
        raise DataflowError(
            f"summaries require an affine merge ('freq'/'mean'), got {merge!r}"
        )
    power_model = context.power_model()
    if getattr(power_model, "has_leakage_feedback", False):
        raise DataflowError(
            "summaries require a linear thermal model "
            "(no leakage-temperature feedback)"
        )
    model = context.model
    cache = context.transfer_cache(power_model, include_leakage=include_leakage)
    profile = context.static_profile(function)
    n = model.grid.num_nodes

    # The one linear solve — shared (and cached) with the stacked
    # pipeline's warm start via the context's solution cache.
    solution, rpo, index = context.block_solution(
        function, merge, include_leakage=include_leakage
    )
    matrix, offset = _exit_map_from_solution(
        solution, rpo, index, function, profile, n
    )

    # Ambient-entry peak from the solved block maps: evaluate every
    # block's out at ambient, merge to block entries, and replay the
    # per-instruction interiors — one reconstruction pass, no sweeps.
    amb = model.ambient_state().temperatures
    outs = {
        name: solution[index[name] * n:(index[name] + 1) * n, :n] @ amb
        + solution[index[name] * n:(index[name] + 1) * n, n]
        for name in rpo
    }
    plan = affine_merge_plan(
        function, rpo, function.predecessors_map(), profile, merge,
        function.entry.name,
    )
    peak = float(amb.max())
    for name in rpo:
        entry_vec = sum(
            w * (outs[src] if src is not None else amb)
            for src, w in plan[name]
        )
        for temps in cache.block(function.block(name)).reconstruct(entry_vec):
            peak = max(peak, float(temps.max()))

    return FunctionSummary(
        function_name=function.name,
        matrix=matrix,
        offset=offset,
        ambient_peak=peak,
        grid_nodes=n,
    )


def compose_pipeline(summaries: list[FunctionSummary]) -> FunctionSummary:
    """Summary of running the given functions in sequence (first → last)."""
    if not summaries:
        raise DataflowError("cannot compose an empty pipeline")
    combined = summaries[0]
    for nxt in summaries[1:]:
        combined = nxt.compose(combined)
    return combined
