"""Affine thermal summaries of whole functions.

The paper analyzes one procedure at a time ("For simplicity, we describe
it in the context of a single procedure", §4) and closes with the goal
of "comprehensive data flow thermal analyses".  This module is that
extension: because the per-instruction transfer is affine in the thermal
state and the ``freq``/``mean`` CFG joins are convex combinations, the
entire converged analysis is an *affine map* from the entry state to the
exit state,

    T_exit = A · T_in + b,

which can be extracted once per function and then **composed**: the
thermal effect of running kernel ``g`` after kernel ``f`` is
``summary(g) ∘ summary(f)``, evaluated in microseconds with two
mat-vecs instead of re-running the analysis.  This is the natural
building block for interprocedural / multi-kernel thermal reasoning
(media pipelines: conv → dct → crc ...).

Extraction is exact, not a finite-difference approximation: the map is
affine, so probing it with the ambient state plus one unit perturbation
per thermal node reconstructs ``A`` and ``b`` precisely (up to the
analysis's own δ).

Restrictions (validated): linear thermal model (no leakage-temperature
feedback) and an affine merge mode (``freq`` or ``mean``) — with ``max``
joins or leakage feedback the exit map is not affine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..arch.machine import MachineDescription
from ..errors import DataflowError
from ..ir.function import Function
from ..thermal.rcmodel import RFThermalModel
from ..thermal.state import ThermalState
from .estimator import PlacementModel
from .tdfa import TDFAConfig, ThermalDataflowAnalysis


@dataclass(frozen=True)
class FunctionSummary:
    """The affine exit map of one function: ``T_exit = A·T_in + b``."""

    function_name: str
    matrix: np.ndarray   # A, (nodes × nodes)
    offset: np.ndarray   # b, (nodes,)
    #: Peak node temperature observed anywhere when entered at ambient —
    #: a quick hot-spot severity indicator for the summarized function.
    ambient_peak: float
    grid_nodes: int

    def apply(self, state: ThermalState) -> ThermalState:
        """Exit state for the given entry state (two mat-vecs)."""
        if state.grid.num_nodes != self.grid_nodes:
            raise DataflowError("state lives on a different thermal grid")
        return ThermalState(
            state.grid, self.matrix @ state.temperatures + self.offset
        )

    def compose(self, inner: "FunctionSummary") -> "FunctionSummary":
        """The summary of running *inner* first, then this function.

        ``(self ∘ inner)(x) = A_self (A_inner x + b_inner) + b_self``.
        """
        if inner.grid_nodes != self.grid_nodes:
            raise DataflowError("summaries live on different thermal grids")
        return FunctionSummary(
            function_name=f"{inner.function_name};{self.function_name}",
            matrix=self.matrix @ inner.matrix,
            offset=self.matrix @ inner.offset + self.offset,
            ambient_peak=max(self.ambient_peak, inner.ambient_peak),
            grid_nodes=self.grid_nodes,
        )

    def contraction_factor(self) -> float:
        """Spectral norm of A.

        Strictly below 1 for any function with at least one instruction:
        the RC network always forgets some of the entry state.  This is
        the quantitative form of the convergence argument in DESIGN.md —
        compositions of summaries converge geometrically to a unique
        steady schedule no matter the initial temperature.
        """
        return float(np.linalg.norm(self.matrix, ord=2))

    def fixed_point(self) -> np.ndarray | None:
        """Node temperatures of the steady schedule ``x = A x + b``.

        This is the entry (= exit) state reached by running the function
        back-to-back forever; returns ``None`` when A has spectral norm
        ≥ 1 (cannot happen for the RC model, guarded anyway).  Wrap in a
        :class:`~repro.thermal.state.ThermalState` with the caller's
        grid for map rendering.
        """
        if self.contraction_factor() >= 1.0:
            return None
        return np.linalg.solve(
            np.eye(self.grid_nodes) - self.matrix, self.offset
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FunctionSummary {self.function_name} "
            f"contraction={self.contraction_factor():.4f} "
            f"ambient_peak={self.ambient_peak:.2f}K>"
        )


def summarize_function(
    function: Function,
    machine: MachineDescription,
    model: RFThermalModel | None = None,
    placement: PlacementModel | None = None,
    delta: float = 0.005,
    merge: str = "freq",
    probe: float = 1.0,
) -> FunctionSummary:
    """Extract the affine exit map of *function*.

    Runs the analysis once from ambient and once per thermal node from
    ``ambient + probe·e_i``; column *i* of A is the scaled difference of
    exit states.  Cost: (nodes + 1) analysis runs — amortized by reusing
    the summary for every subsequent composition/application.
    """
    if merge not in ("freq", "mean"):
        raise DataflowError(
            f"summaries require an affine merge ('freq'/'mean'), got {merge!r}"
        )
    if machine.energy.leakage_temp_coeff != 0.0:
        raise DataflowError(
            "summaries require a linear thermal model "
            "(leakage_temp_coeff must be 0)"
        )
    model = model or RFThermalModel(machine.geometry, energy=machine.energy)
    analysis = ThermalDataflowAnalysis(
        machine=machine,
        model=model,
        placement=placement,
        config=TDFAConfig(delta=delta, merge=merge),
    )

    ambient = model.ambient_state()
    base_result = analysis.run(function, entry_state=ambient)
    if not base_result.converged:
        raise DataflowError(
            f"analysis of @{function.name} did not converge; cannot summarize"
        )
    base_exit = base_result.exit_state().temperatures

    n = model.grid.num_nodes
    matrix = np.zeros((n, n))
    for i in range(n):
        perturbed = ambient.temperatures.copy()
        perturbed[i] += probe
        entry = ThermalState(model.grid, perturbed)
        result = analysis.run(function, entry_state=entry)
        matrix[:, i] = (result.exit_state().temperatures - base_exit) / probe

    offset = base_exit - matrix @ ambient.temperatures
    return FunctionSummary(
        function_name=function.name,
        matrix=matrix,
        offset=offset,
        ambient_peak=base_result.peak_state().peak,
        grid_nodes=n,
    )


def compose_pipeline(summaries: list[FunctionSummary]) -> FunctionSummary:
    """Summary of running the given functions in sequence (first → last)."""
    if not summaries:
        raise DataflowError("cannot compose an empty pipeline")
    combined = summaries[0]
    for nxt in summaries[1:]:
        combined = nxt.compose(combined)
    return combined
