"""Thermal transformation rules.

Paper §4: *"the development of a set of rules that qualify the impact of
the compiler decisions on the thermal profile will allow the envisioning
of later thermal-aware compilation without the feedback of temperature
information."*

Each rule inspects the analysis result and, when its precondition holds,
emits a :class:`Recommendation` naming an optimization pass from
:mod:`repro.opt`, the registers it targets and the qualitative effect
the paper assigns to that transformation.  The rule priorities follow
§4's own ordering: spilling/splitting first ("the greatest benefit"),
then scheduling and promotion, with NOP insertion strictly last
("only if no other option ... is feasible").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..arch.machine import MachineDescription
from ..dataflow.liveness import liveness
from ..ir.function import Function
from ..ir.instructions import Opcode
from ..ir.values import Value
from .critical import CriticalVariable, rank_critical_variables
from .estimator import PlacementModel
from .tdfa import TDFAResult


@dataclass(frozen=True)
class Recommendation:
    """One rule firing: which pass to run, on what, and why."""

    pass_name: str                 # key into repro.opt's pass registry
    targets: tuple[Value, ...]     # registers the pass should act on
    priority: int                  # lower = apply earlier
    expected_effect: str           # the paper's qualitative claim
    rationale: str                 # why the rule fired on this program

    def __str__(self) -> str:
        regs = ", ".join(str(t) for t in self.targets) or "-"
        return f"[p{self.priority}] {self.pass_name}({regs}): {self.rationale}"


@dataclass
class ThermalPlan:
    """Ordered set of recommendations for one function."""

    function_name: str
    gradient: float
    peak: float
    pressure: int
    recommendations: list[Recommendation] = field(default_factory=list)

    def ordered(self) -> list[Recommendation]:
        return sorted(self.recommendations, key=lambda r: (r.priority, r.pass_name))

    def pass_names(self) -> list[str]:
        return [r.pass_name for r in self.ordered()]

    def __str__(self) -> str:
        lines = [
            f"thermal plan for @{self.function_name}: "
            f"peak={self.peak:.2f}K gradient={self.gradient:.2f}K pressure={self.pressure}"
        ]
        lines += [f"  {r}" for r in self.ordered()]
        return "\n".join(lines)


@dataclass(frozen=True)
class RuleConfig:
    """Thresholds for the rule engine.

    ``gradient_threshold`` (K) decides when the predicted map counts as
    having a reliability-relevant gradient; ``peak_threshold`` (K above
    ambient) gates the emergency NOP rule; ``critical_k`` bounds how many
    variables the spill/split rules target at once (§4: "if just two
    variables are involved, they can easily be assigned to registers in
    disparate regions ... when more variables are likely to create hot
    spots, it becomes increasingly difficult").
    """

    gradient_threshold: float = 1.0
    peak_threshold: float = 25.0
    critical_k: int = 4
    split_min_accesses: int = 4
    consecutive_window: int = 2


def evaluate_rules(
    result: TDFAResult,
    placement: PlacementModel,
    machine: MachineDescription,
    config: RuleConfig | None = None,
) -> ThermalPlan:
    """Run every rule against *result* and return the ordered plan."""
    config = config or RuleConfig()
    function = result.function
    peak_state = result.peak_state()
    gradient = peak_state.max_gradient()
    peak = peak_state.peak
    ambient = min(s.min for s in result.block_in.values())
    pressure = liveness(function).max_pressure()

    criticals = rank_critical_variables(result, placement, top_k=config.critical_k)
    hot = [cv for cv in criticals if cv.score > 0.0]

    plan = ThermalPlan(
        function_name=function.name,
        gradient=gradient,
        peak=peak,
        pressure=pressure,
    )

    _rule_spread_or_spill(plan, hot, gradient, pressure, machine, config)
    _rule_split(plan, hot, function, config)
    _rule_schedule(plan, result, function, config)
    _rule_promote(plan, function, pressure, machine)
    _rule_nop(plan, peak, ambient, config)
    _rule_chessboard_viability(plan, pressure, machine)
    return plan


# ----------------------------------------------------------------------
# Individual rules
# ----------------------------------------------------------------------
def _rule_spread_or_spill(plan, hot: list[CriticalVariable], gradient, pressure,
                          machine: MachineDescription, config: RuleConfig) -> None:
    """§4: few critical variables → spread; many + pressure → spill."""
    if gradient < config.gradient_threshold or not hot:
        return
    n_regs = machine.geometry.num_registers
    if len(hot) <= 2 and pressure <= n_regs // 2:
        plan.recommendations.append(
            Recommendation(
                pass_name="reassign",
                targets=tuple(cv.reg for cv in hot),
                priority=1,
                expected_effect="assign the few critical variables to "
                "disparate RF regions, flattening the gradient",
                rationale=f"only {len(hot)} critical variable(s) with "
                f"gradient {gradient:.2f}K and low pressure",
            )
        )
    else:
        plan.recommendations.append(
            Recommendation(
                pass_name="spill_critical",
                targets=tuple(cv.reg for cv in hot),
                priority=1,
                expected_effect="move the hottest variables' traffic to "
                "memory, removing their RF power density",
                rationale=f"{len(hot)} critical variables under "
                f"pressure {pressure}/{n_regs}",
            )
        )


def _rule_split(plan, hot: list[CriticalVariable], function: Function,
                config: RuleConfig) -> None:
    """§4: split critical variables via copy insertion."""
    candidates = tuple(
        cv.reg for cv in hot if cv.accesses >= config.split_min_accesses
    )
    if not candidates:
        return
    plan.recommendations.append(
        Recommendation(
            pass_name="split_live_ranges",
            targets=candidates,
            priority=2,
            expected_effect="spread each variable's accesses across a "
            "multitude of registers via copy insertion",
            rationale=f"{len(candidates)} critical variable(s) with ≥"
            f"{config.split_min_accesses} access sites",
        )
    )


def _rule_schedule(plan, result: TDFAResult, function: Function,
                   config: RuleConfig) -> None:
    """§4: spread accesses in time via instruction scheduling."""
    consecutive = 0
    for block in function.blocks.values():
        insts = block.instructions
        for i in range(len(insts) - 1):
            regs_a = set(map(str, insts[i].registers()))
            regs_b = set(map(str, insts[i + 1].registers()))
            if regs_a & regs_b:
                consecutive += 1
    if consecutive == 0:
        return
    plan.recommendations.append(
        Recommendation(
            pass_name="thermal_schedule",
            targets=(),
            priority=3,
            expected_effect="avoid consecutive accesses to already-hot "
            "registers by reordering independent instructions",
            rationale=f"{consecutive} adjacent instruction pair(s) share "
            "a register",
        )
    )


def _rule_promote(plan, function: Function, pressure: int,
                  machine: MachineDescription) -> None:
    """§4: promote memory-resident values to cold registers."""
    loads = sum(1 for inst in function.instructions() if inst.opcode is Opcode.LOAD)
    free_headroom = machine.geometry.num_registers - pressure
    if loads < 2 or free_headroom <= machine.geometry.num_registers // 4:
        return
    plan.recommendations.append(
        Recommendation(
            pass_name="promote",
            targets=(),
            priority=4,
            expected_effect="make register use more uniform in time by "
            "promoting repeatedly-loaded values into cold registers",
            rationale=f"{loads} loads with {free_headroom} registers of "
            "pressure headroom",
        )
    )


def _rule_nop(plan, peak: float, ambient: float, config: RuleConfig) -> None:
    """§4: NOP insertion strictly as a last resort."""
    if peak - ambient <= config.peak_threshold:
        return
    plan.recommendations.append(
        Recommendation(
            pass_name="insert_nops",
            targets=(),
            priority=9,  # always last, per the paper
            expected_effect="give the RF a chance to cool down between "
            "accesses, at a direct performance cost",
            rationale=f"predicted peak {peak - ambient:.1f}K above ambient "
            f"exceeds the {config.peak_threshold:.0f}K emergency threshold",
        )
    )


def _rule_chessboard_viability(plan, pressure: int,
                               machine: MachineDescription) -> None:
    """§2's caveat as a rule: is the chessboard policy applicable?"""
    half = machine.geometry.num_registers // 2
    if pressure <= half:
        plan.recommendations.append(
            Recommendation(
                pass_name="chessboard_assignment",
                targets=(),
                priority=5,
                expected_effect="homogenized temperature map via maximal "
                "pairwise register spacing",
                rationale=f"pressure {pressure} ≤ half the RF ({half}): "
                "chessboard pattern is viable",
            )
        )
