"""Compiled affine block transfers for the thermal data flow analysis.

Why block transfers compose
---------------------------
In the linear regime (no leakage-temperature feedback) one cycle of the
RC network under instruction *I*'s constant power is the affine map

    T' = op · T + (I − op) · T_ss(P_I),          op = e^{−C⁻¹G·dt},

(:meth:`~repro.thermal.rcmodel.RFThermalModel.affine_step`; the
compiler below evaluates the same map in batched form via
:meth:`~repro.thermal.rcmodel.RFThermalModel.steady_state_many`).
Affine maps are closed under composition, so an entire basic block B
with instructions I₁ … I_k collapses into a single pair

    T_out = A_B · T_in + b_B,        A_B = opᵏ,
    b_B   = Σ_j op^{k−j} (I − op) T_ss(P_{I_j}),

computed once per block.  The fixed-point sweep of
:class:`~repro.core.tdfa.ThermalDataflowAnalysis` then iterates **one
mat-vec per block** instead of one per instruction — the analysis cost
drops from O(sweeps × instructions × nodes²) to O(sweeps × blocks ×
nodes² + instructions × nodes³ / compile) — and the per-instruction
states required by the paper's Fig. 2 output are materialized in a
single reconstruction sweep after convergence.

Because ``op`` is non-negative with row sums strictly below 1 (the
network always leaks heat to ambient), every :class:`AffineTransfer`
built here is an ∞-norm contraction; block-level convergence of the
sweep therefore bounds per-instruction convergence, and compositions of
block maps along converged (static) merge weights yield the *exact*
whole-function affine summary (:mod:`repro.core.summaries`).

Cache keys are *stable*: a compiled block is keyed by ``(block name,
instruction count)`` and per-instruction data by position, never by
``id(inst)`` — object ids can be reused after garbage collection in
long-lived sessions, which made the previous id-keyed target cache
fragile.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DataflowError
from ..ir.block import BasicBlock
from ..thermal.rcmodel import RFThermalModel
from ..thermal.state import ThermalState

#: Stable identity of a compiled block: (block name, instruction count).
#: The count guards against in-place block edits between compilations.
BlockKey = tuple[str, int]


@dataclass(frozen=True)
class AffineTransfer:
    """An affine map ``T ↦ matrix · T + offset`` on node temperatures.

    The unit of composition for the compiled engine: one instruction,
    one basic block, or any chain thereof.  ``key`` is a stable,
    human-readable identity used for caching and diagnostics.
    """

    matrix: np.ndarray
    offset: np.ndarray
    key: str = ""

    @classmethod
    def identity(cls, num_nodes: int, key: str = "id") -> "AffineTransfer":
        return cls(np.eye(num_nodes), np.zeros(num_nodes), key=key)

    @classmethod
    def from_step(
        cls, op: np.ndarray, target: np.ndarray, key: str = ""
    ) -> "AffineTransfer":
        """One relaxation step toward *target*: ``T' = target + op(T − target)``."""
        return cls(op, target - op @ target, key=key)

    def apply(self, temperatures: np.ndarray) -> np.ndarray:
        """Map a raw temperature vector (one mat-vec plus an add)."""
        return self.matrix @ temperatures + self.offset

    def apply_state(self, state: ThermalState) -> ThermalState:
        """Map a :class:`ThermalState` (grid is preserved)."""
        return ThermalState(state.grid, self.apply(state.temperatures))

    def then(self, outer: "AffineTransfer") -> "AffineTransfer":
        """The composition *self first, then outer*."""
        return AffineTransfer(
            matrix=outer.matrix @ self.matrix,
            offset=outer.matrix @ self.offset + outer.offset,
            key=f"{self.key};{outer.key}",
        )

    def contraction_factor(self) -> float:
        """∞-norm of the linear part (< 1 for any RC-derived transfer)."""
        return float(np.abs(self.matrix).sum(axis=1).max())


@dataclass(frozen=True)
class CompiledBlock:
    """A basic block's pre-composed transfer plus reconstruction data.

    ``transfer`` maps the block-entry state straight to the block-exit
    state.  ``step_op`` and ``targets`` (the per-instruction steady
    states, in program order) replay the interior: given the converged
    block-entry state, one pass over ``targets`` materializes the
    after-state of every instruction — the single reconstruction sweep
    of the compiled engine.
    """

    key: BlockKey
    transfer: AffineTransfer
    step_op: np.ndarray
    targets: tuple[np.ndarray, ...]

    @property
    def num_instructions(self) -> int:
        return len(self.targets)

    def reconstruct(self, entry: np.ndarray) -> list[np.ndarray]:
        """Per-instruction after-states from the block-entry vector."""
        states: list[np.ndarray] = []
        temps = entry
        op = self.step_op
        for target in self.targets:
            temps = target + op @ (temps - target)
            states.append(temps)
        return states


def compile_block(
    block: BasicBlock,
    model: RFThermalModel,
    power_model,
    dt: float,
    include_leakage: bool = True,
) -> CompiledBlock:
    """Pre-compose *block*'s per-instruction affine steps into one map.

    Requires the linear regime: *power_model* must not have
    leakage-temperature feedback (the per-instruction power, and hence
    its steady-state target, must be state-independent).
    """
    if getattr(power_model, "has_leakage_feedback", False):
        raise DataflowError(
            "cannot compile block transfers with leakage-temperature "
            "feedback: the per-instruction step is not affine "
            "(use the stepped engine)"
        )
    n = model.grid.num_nodes
    op = model.step_operator(dt)
    # Reference state for power evaluation: with no feedback the power is
    # state-independent, so ambient is as good as any.
    ambient = model.ambient_state()
    insts = block.instructions
    offset = np.zeros(n)
    targets: tuple[np.ndarray, ...] = ()
    if insts:
        # One batched SPD solve for every instruction's steady state,
        # then one (n×n)@(n×k) product for all relaxation offsets.
        powers = np.stack(
            [
                power_model.total_power(
                    inst, ambient, include_leakage=include_leakage
                )
                for inst in insts
            ],
            axis=1,
        )
        target_cols = model.steady_state_many(powers)
        kicks = target_cols - op @ target_cols  # (I − op)·target, per column
        # Horner accumulation of b_B = Σ_j op^{k−j} (I − op) target_j.
        for j in range(len(insts)):
            offset = op @ offset + kicks[:, j]
        targets = tuple(target_cols.T)
    matrix = np.linalg.matrix_power(op, len(insts))
    key: BlockKey = (block.name, len(insts))
    return CompiledBlock(
        key=key,
        transfer=AffineTransfer(matrix, offset, key=f"block:{block.name}"),
        step_op=op,
        targets=targets,
    )


def normalized_weights(raw: list[float]) -> list[float]:
    """Normalize merge weights exactly like :meth:`ThermalState.weighted_mean`.

    A non-positive total falls back to the plain mean, matching the
    numeric merge's behaviour for degenerate static profiles.
    """
    total = sum(raw)
    if total <= 0:
        return [1.0 / len(raw)] * len(raw)
    return [w / total for w in raw]


#: One block's merge recipe: ``(source, weight)`` pairs where source
#: ``None`` denotes the function's entry state.
MergePlan = dict[str, list[tuple[str | None, float]]]


def affine_merge_plan(
    function, rpo: list[str], preds, profile, merge: str, entry: str
) -> MergePlan:
    """Static merge weights of the affine CFG joins (``freq``/``mean``).

    Because the static profile is fixed, the convex combination each
    block's in-state takes of its predecessors' out-states never changes
    across sweeps — so it can be computed once and replayed as plain
    weighted vector sums (the compiled engine) or solved against
    symbolically (exact summary extraction).  The weight bookkeeping
    mirrors :class:`~repro.core.tdfa.ThermalDataflowAnalysis`'s numeric
    merge, including the entry-state injection at the entry block and
    the degenerate-profile fallback.
    """
    if merge not in ("freq", "mean"):
        raise DataflowError(
            f"only the affine merges ('freq'/'mean') have a static plan, "
            f"got {merge!r}"
        )
    rpo_set = set(rpo)
    plan: MergePlan = {}
    for name in rpo:
        sources: list[str | None] = [p for p in preds[name] if p in rpo_set]
        if name == entry:
            sources = sources + [None]
        if not sources:
            # Unreachable for rpo blocks in practice; the numeric merge
            # would feed the entry state here.
            sources = [None]
        if len(sources) == 1:
            weights = [1.0]
        elif merge == "mean":
            weights = [1.0 / len(sources)] * len(sources)
        else:  # freq
            weights = normalized_weights([
                profile.edge_freq(src, name) if src is not None else 1.0
                for src in sources
            ])
        plan[name] = list(zip(sources, weights))
    return plan


class BlockTransferCache:
    """Lazily compiled block transfers for one analysis configuration.

    One cache serves one (model, power model, dt, leakage) combination —
    exactly the quantities a compiled transfer bakes in.  Entries are
    keyed by the stable :data:`BlockKey`, so a block whose instruction
    list changed length recompiles instead of serving stale data.
    """

    def __init__(
        self,
        model: RFThermalModel,
        power_model,
        dt: float,
        include_leakage: bool = True,
    ) -> None:
        self.model = model
        self.power_model = power_model
        self.dt = dt
        self.include_leakage = include_leakage
        self._compiled: dict[BlockKey, CompiledBlock] = {}

    def block(self, block: BasicBlock) -> CompiledBlock:
        """The compiled transfer of *block* (compiling on first use)."""
        key: BlockKey = (block.name, len(block.instructions))
        compiled = self._compiled.get(key)
        if compiled is None:
            compiled = compile_block(
                block,
                self.model,
                self.power_model,
                self.dt,
                include_leakage=self.include_leakage,
            )
            self._compiled[key] = compiled
        return compiled

    def compile_function(self, function) -> dict[str, CompiledBlock]:
        """Compiled transfers for every block of *function*, by name."""
        return {name: self.block(block) for name, block in function.blocks.items()}

    def __len__(self) -> int:
        return len(self._compiled)
