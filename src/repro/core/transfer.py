"""Compiled affine block transfers for the thermal data flow analysis.

Why block transfers compose
---------------------------
In the linear regime (no leakage-temperature feedback) one cycle of the
RC network under instruction *I*'s constant power is the affine map

    T' = op · T + (I − op) · T_ss(P_I),          op = e^{−C⁻¹G·dt},

(:meth:`~repro.thermal.rcmodel.RFThermalModel.affine_step`; the
compiler below evaluates the same map in batched form via
:meth:`~repro.thermal.rcmodel.RFThermalModel.steady_state_many`).
Affine maps are closed under composition, so an entire basic block B
with instructions I₁ … I_k collapses into a single pair

    T_out = A_B · T_in + b_B,        A_B = opᵏ,
    b_B   = Σ_j op^{k−j} (I − op) T_ss(P_{I_j}),

computed once per block.  The fixed-point sweep of
:class:`~repro.core.tdfa.ThermalDataflowAnalysis` then iterates **one
mat-vec per block** instead of one per instruction — the analysis cost
drops from O(sweeps × instructions × nodes²) to O(sweeps × blocks ×
nodes² + instructions × nodes³ / compile) — and the per-instruction
states required by the paper's Fig. 2 output are materialized in a
single reconstruction sweep after convergence.

Because ``op`` is non-negative with row sums strictly below 1 (the
network always leaks heat to ambient), every :class:`AffineTransfer`
built here is an ∞-norm contraction; block-level convergence of the
sweep therefore bounds per-instruction convergence, and compositions of
block maps along converged (static) merge weights yield the *exact*
whole-function affine summary (:mod:`repro.core.summaries`).

Why whole sweeps compose too
----------------------------
Under an affine merge (``freq``/``mean``) the merge weights are static,
so one entire Gauss–Seidel sweep over the blocks in reverse post-order —
merge each block's predecessors, apply its transfer, in order, reading
already-updated outs — is itself an affine map on the *stacked* vector
of block-exit states:

    V' = S · V + E · T_entry + g,        V = [out_B₁; …; out_Bₘ],

with ``S`` of shape ``(m·n, m·n)``.  :func:`compile_sweep` builds that
map once by symbolic substitution along the sweep order (plus its
pre-transfer twin for the block-entry states); the batched fixed-point
engine then runs **two stacked mat-vecs per sweep** for the whole
function instead of a Python loop of per-block merges and mat-vecs,
with delta histories and iteration counts identical to the blockwise
Gauss–Seidel sweep.

Cache keys are *identity-stable*: compiled blocks are keyed by the
:class:`~repro.ir.block.BasicBlock` object itself (the cache holds a
strong reference, so ids can never be recycled under it) and validated
against the current instruction count; compiled sweeps are keyed by the
function object and validated against the CFG signature (block names,
instruction counts, successor lists).  A transformed function is a new
object, so it can never be served another function's transfers — this
is what lets one :class:`~repro.core.context.AnalysisContext` safely
share a cache across every analysis of a pipeline or suite run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DataflowError
from ..ir.block import BasicBlock
from ..thermal.rcmodel import RFThermalModel
from ..thermal.state import ThermalState

#: Human-readable identity of a compiled block: (block name, instruction
#: count).  Diagnostics only — the cache itself keys by object identity.
BlockKey = tuple[str, int]


@dataclass(frozen=True)
class AffineTransfer:
    """An affine map ``T ↦ matrix · T + offset`` on node temperatures.

    The unit of composition for the compiled engine: one instruction,
    one basic block, or any chain thereof.  ``key`` is a stable,
    human-readable identity used for caching and diagnostics.
    """

    matrix: np.ndarray
    offset: np.ndarray
    key: str = ""

    @classmethod
    def identity(cls, num_nodes: int, key: str = "id") -> "AffineTransfer":
        return cls(np.eye(num_nodes), np.zeros(num_nodes), key=key)

    @classmethod
    def from_step(
        cls, op: np.ndarray, target: np.ndarray, key: str = ""
    ) -> "AffineTransfer":
        """One relaxation step toward *target*: ``T' = target + op(T − target)``."""
        return cls(op, target - op @ target, key=key)

    def apply(self, temperatures: np.ndarray) -> np.ndarray:
        """Map a raw temperature vector (one mat-vec plus an add)."""
        return self.matrix @ temperatures + self.offset

    def apply_state(self, state: ThermalState) -> ThermalState:
        """Map a :class:`ThermalState` (grid is preserved)."""
        return ThermalState(state.grid, self.apply(state.temperatures))

    def then(self, outer: "AffineTransfer") -> "AffineTransfer":
        """The composition *self first, then outer*."""
        return AffineTransfer(
            matrix=outer.matrix @ self.matrix,
            offset=outer.matrix @ self.offset + outer.offset,
            key=f"{self.key};{outer.key}",
        )

    def contraction_factor(self) -> float:
        """∞-norm of the linear part (< 1 for any RC-derived transfer)."""
        return float(np.abs(self.matrix).sum(axis=1).max())


@dataclass(frozen=True)
class CompiledBlock:
    """A basic block's pre-composed transfer plus reconstruction data.

    ``transfer`` maps the block-entry state straight to the block-exit
    state.  ``step_op`` and ``targets`` (the per-instruction steady
    states, in program order) replay the interior: given the converged
    block-entry state, one pass over ``targets`` materializes the
    after-state of every instruction — the single reconstruction sweep
    of the compiled engine.
    """

    key: BlockKey
    transfer: AffineTransfer
    step_op: np.ndarray
    targets: tuple[np.ndarray, ...]

    @property
    def num_instructions(self) -> int:
        return len(self.targets)

    def reconstruct(self, entry: np.ndarray) -> list[np.ndarray]:
        """Per-instruction after-states from the block-entry vector."""
        states: list[np.ndarray] = []
        temps = entry
        op = self.step_op
        for target in self.targets:
            temps = target + op @ (temps - target)
            states.append(temps)
        return states


def compile_block(
    block: BasicBlock,
    model: RFThermalModel,
    power_model,
    dt: float,
    include_leakage: bool = True,
) -> CompiledBlock:
    """Pre-compose *block*'s per-instruction affine steps into one map.

    Requires the linear regime: *power_model* must not have
    leakage-temperature feedback (the per-instruction power, and hence
    its steady-state target, must be state-independent).
    """
    if getattr(power_model, "has_leakage_feedback", False):
        raise DataflowError(
            "cannot compile block transfers with leakage-temperature "
            "feedback: the per-instruction step is not affine "
            "(use the stepped engine)"
        )
    n = model.grid.num_nodes
    op = model.step_operator(dt)
    # Reference state for power evaluation: with no feedback the power is
    # state-independent, so ambient is as good as any.
    ambient = model.ambient_state()
    insts = block.instructions
    offset = np.zeros(n)
    targets: tuple[np.ndarray, ...] = ()
    if insts:
        # One batched SPD solve for every instruction's steady state,
        # then one (n×n)@(n×k) product for all relaxation offsets.
        powers = np.stack(
            [
                power_model.total_power(
                    inst, ambient, include_leakage=include_leakage
                )
                for inst in insts
            ],
            axis=1,
        )
        target_cols = model.steady_state_many(powers)
        kicks = target_cols - op @ target_cols  # (I − op)·target, per column
        # Horner accumulation of b_B = Σ_j op^{k−j} (I − op) target_j.
        for j in range(len(insts)):
            offset = op @ offset + kicks[:, j]
        targets = tuple(target_cols.T)
    matrix = np.linalg.matrix_power(op, len(insts))
    key: BlockKey = (block.name, len(insts))
    return CompiledBlock(
        key=key,
        transfer=AffineTransfer(matrix, offset, key=f"block:{block.name}"),
        step_op=op,
        targets=targets,
    )


def normalized_weights(raw: list[float]) -> list[float]:
    """Normalize merge weights exactly like :meth:`ThermalState.weighted_mean`.

    A non-positive total falls back to the plain mean, matching the
    numeric merge's behaviour for degenerate static profiles.
    """
    total = sum(raw)
    if total <= 0:
        return [1.0 / len(raw)] * len(raw)
    return [w / total for w in raw]


#: One block's merge recipe: ``(source, weight)`` pairs where source
#: ``None`` denotes the function's entry state.
MergePlan = dict[str, list[tuple[str | None, float]]]


def affine_merge_plan(
    function, rpo: list[str], preds, profile, merge: str, entry: str
) -> MergePlan:
    """Static merge weights of the affine CFG joins (``freq``/``mean``).

    Because the static profile is fixed, the convex combination each
    block's in-state takes of its predecessors' out-states never changes
    across sweeps — so it can be computed once and replayed as plain
    weighted vector sums (the compiled engine) or solved against
    symbolically (exact summary extraction).  The weight bookkeeping
    mirrors :class:`~repro.core.tdfa.ThermalDataflowAnalysis`'s numeric
    merge, including the entry-state injection at the entry block and
    the degenerate-profile fallback.
    """
    if merge not in ("freq", "mean"):
        raise DataflowError(
            f"only the affine merges ('freq'/'mean') have a static plan, "
            f"got {merge!r}"
        )
    rpo_set = set(rpo)
    plan: MergePlan = {}
    for name in rpo:
        sources: list[str | None] = [p for p in preds[name] if p in rpo_set]
        if name == entry:
            sources = sources + [None]
        if not sources:
            # Unreachable for rpo blocks in practice; the numeric merge
            # would feed the entry state here.
            sources = [None]
        if len(sources) == 1:
            weights = [1.0]
        elif merge == "mean":
            weights = [1.0 / len(sources)] * len(sources)
        else:  # freq
            weights = normalized_weights([
                profile.edge_freq(src, name) if src is not None else 1.0
                for src in sources
            ])
        plan[name] = list(zip(sources, weights))
    return plan


#: A function's CFG signature: what a compiled sweep bakes in besides
#: the block transfers themselves (names, counts, successor lists fix
#: both the merge weights and the substitution order).
SweepSignature = tuple[tuple[str, int, tuple[str, ...]], ...]


def sweep_signature(function, rpo: list[str]) -> SweepSignature:
    """The CFG signature a compiled sweep is validated against."""
    return tuple(
        (
            name,
            len(function.block(name).instructions),
            tuple(function.block(name).successors()),
        )
        for name in rpo
    )


@dataclass(frozen=True)
class CompiledSweep:
    """One whole Gauss–Seidel sweep as a single stacked affine map.

    ``matrix``/``entry_matrix``/``offset`` give the block-*exit* states
    after one sweep: ``V' = matrix · V + entry_matrix · T_entry +
    offset`` on the stacked ``(m·n,)`` vector of exit states, ordered
    by ``rpo``.  ``in_matrix``/``in_entry_matrix``/``in_offset`` give
    the same sweep's block-*entry* states (the Gauss–Seidel merge of
    already-updated and previous-sweep exits) — the second stacked
    mat-vec that lets the batched engine measure convergence on exactly
    the quantities the blockwise loop measures, sweep for sweep.
    """

    rpo: tuple[str, ...]
    signature: SweepSignature
    matrix: np.ndarray            # S_out, (m·n, m·n)
    entry_matrix: np.ndarray      # E_out, (m·n, n)
    offset: np.ndarray            # g_out, (m·n,)
    in_matrix: np.ndarray         # S_in, (m·n, m·n)
    in_entry_matrix: np.ndarray   # E_in, (m·n, n)
    in_offset: np.ndarray         # g_in, (m·n,)

    @property
    def num_blocks(self) -> int:
        return len(self.rpo)

    def entry_terms(self, t_entry: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """The constant (entry-state) parts of one run's sweeps:
        ``(E_in·T_entry + g_in, E_out·T_entry + g_out)``."""
        return (
            self.in_entry_matrix @ t_entry + self.in_offset,
            self.entry_matrix @ t_entry + self.offset,
        )

    def apply(
        self, stacked: np.ndarray, in_term: np.ndarray, out_term: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """One sweep from the previous exits: ``(entry states, exit states)``."""
        return (
            self.in_matrix @ stacked + in_term,
            self.matrix @ stacked + out_term,
        )


def compile_sweep(
    compiled: dict[str, CompiledBlock],
    plan: MergePlan,
    rpo: list[str],
    num_nodes: int,
    signature: SweepSignature,
) -> CompiledSweep:
    """Compose one Gauss–Seidel sweep into a single stacked affine map.

    Walks the blocks in sweep (reverse post-) order keeping, for each
    already-processed block, its new out-state as an affine expression
    of the *previous* sweep's outs; predecessors processed earlier in
    the same sweep substitute their expression (that is what makes the
    composed map Gauss–Seidel rather than Jacobi, preserving the
    blockwise engine's iteration counts).  Expressions are kept
    block-sparse — a block's out only references the few outs its merge
    chain actually reaches — so composition stays cheap on loop CFGs.
    """
    n = num_nodes
    m = len(rpo)
    index = {name: i for i, name in enumerate(rpo)}
    eye = np.eye(n)

    matrix = np.zeros((m * n, m * n))
    entry_matrix = np.zeros((m * n, n))
    offset = np.zeros(m * n)
    in_matrix = np.zeros((m * n, m * n))
    in_entry_matrix = np.zeros((m * n, n))
    in_offset = np.zeros(m * n)

    # Per processed block: (deps: {j: (n, n)}, entry: (n, n) | None, off)
    exprs: list[tuple[dict[int, np.ndarray], np.ndarray | None, np.ndarray]] = []
    for i, name in enumerate(rpo):
        block = compiled[name]
        a_block = block.transfer.matrix
        deps: dict[int, np.ndarray] = {}
        ent: np.ndarray | None = None
        off = np.zeros(n)
        for src, w in plan[name]:
            if src is None:
                ent = w * eye if ent is None else ent + w * eye
                continue
            j = index[src]
            if j < i:  # updated earlier this sweep: substitute its expression
                dj, ej, oj = exprs[j]
                for k, mat in dj.items():
                    deps[k] = deps.get(k, 0.0) + w * mat
                if ej is not None:
                    ent = w * ej if ent is None else ent + w * ej
                off += w * oj
            else:      # still the previous sweep's value (self/back edges)
                deps[j] = deps.get(j, 0.0) + w * eye

        rows = slice(i * n, (i + 1) * n)
        # The pre-transfer expression IS this block's entry state.
        for k, mat in deps.items():
            in_matrix[rows, k * n:(k + 1) * n] = mat
        if ent is not None:
            in_entry_matrix[rows] = ent
        in_offset[rows] = off

        deps = {k: a_block @ mat for k, mat in deps.items()}
        ent = a_block @ ent if ent is not None else None
        off = a_block @ off + block.transfer.offset
        exprs.append((deps, ent, off))

        for k, mat in deps.items():
            matrix[rows, k * n:(k + 1) * n] = mat
        if ent is not None:
            entry_matrix[rows] = ent
        offset[rows] = off

    return CompiledSweep(
        rpo=tuple(rpo),
        signature=signature,
        matrix=matrix,
        entry_matrix=entry_matrix,
        offset=offset,
        in_matrix=in_matrix,
        in_entry_matrix=in_entry_matrix,
        in_offset=in_offset,
    )


#: One stage's exit recipe inside a pipeline: ``(rpo index, weight)``
#: pairs — the freq-weighted convex combination of exit-block out-states
#: that *is* the stage's exit state (mirrors ``TDFAResult.exit_state``).
ExitPlan = list[tuple[int, float]]


@dataclass(frozen=True)
class CompiledPipelineSweep:
    """One Gauss–Seidel sweep over a whole *pipeline* of functions.

    The interprocedural extension of :class:`CompiledSweep`: the blocks
    of every pipeline stage are stacked into one vector (stage 0's
    blocks first, in reverse post-order, then stage 1's, …) and one
    sweep of the whole pipeline — each stage's entry state being the
    freq-weighted exit of the *previous* stage, already updated this
    sweep — is a single affine map

        V' = P · V + E · T_entry + g

    on the stacked ``(Σ_k m_k·n,)`` vector of block-exit states, with a
    pre-transfer twin for the block-entry states so convergence is
    measured on exactly the quantities per-stage analyses measure.

    **Representation.**  Every cross-stage coupling in ``P`` factors
    through the ``n``-dimensional stage-entry bottleneck (stage *k* sees
    stage *k−1* only through the exit state ``W_{k−1}·V_{k−1}``), so the
    map is stored *factored* — per-stage sweeps plus exit extractors —
    and :meth:`apply` chains the stages, substituting each stage's
    just-updated exit into the next.  One sweep costs
    ``O(Σ_k (m_k·n)²)`` instead of the ``O((Σ_k m_k·n)²)`` a dense
    stacked matrix would pay; :meth:`dense` materializes the explicit
    ``(Σ m_k·n, Σ m_k·n)`` matrices for validation, and a property test
    asserts both forms are the same affine map.

    Because each stage substitutes the previous stage's *updated* exit,
    entry-state information propagates through every stage within one
    sweep; the fixed point satisfies, stage by stage, the same equations
    as a sequential per-kernel carry-through (entry of stage ``k+1`` =
    exit of stage ``k``), so the strategies agree at convergence.

    ``exit_matrices[k]`` extracts stage *k*'s exit state from its slice
    of the stacked vector — ``T_exit,k = exit_matrices[k] @ V_k``.
    """

    rpos: tuple[tuple[str, ...], ...]
    signatures: tuple[SweepSignature, ...]
    starts: tuple[int, ...]            # stacked-row offset of each stage
    num_nodes: int
    stage_sweeps: tuple[CompiledSweep, ...]
    exit_matrices: tuple[np.ndarray, ...]  # per stage, (n, m_k · n)

    @property
    def num_stages(self) -> int:
        return len(self.rpos)

    @property
    def stacked_size(self) -> int:
        return self.starts[-1] + self.stage_sweeps[-1].matrix.shape[0]

    def stage_slice(self, k: int) -> slice:
        end = (
            self.starts[k + 1]
            if k + 1 < len(self.starts)
            else self.stacked_size
        )
        return slice(self.starts[k], end)

    def apply(
        self, stacked: np.ndarray, t_entry: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """One pipeline sweep: ``(block-entry states, block-exit states)``.

        Gauss–Seidel across stages: stage *k* reads its entry state from
        stage *k−1*'s exits as updated *this* sweep.
        """
        ins = np.empty_like(stacked)
        outs = np.empty_like(stacked)
        entry = t_entry
        for k, sweep in enumerate(self.stage_sweeps):
            rows = self.stage_slice(k)
            previous = stacked[rows]
            ins[rows] = (
                sweep.in_matrix @ previous
                + sweep.in_entry_matrix @ entry
                + sweep.in_offset
            )
            outs[rows] = (
                sweep.matrix @ previous
                + sweep.entry_matrix @ entry
                + sweep.offset
            )
            entry = self.exit_matrices[k] @ outs[rows]
        return ins, outs

    def stage_exit(self, stacked: np.ndarray, k: int) -> np.ndarray:
        """Stage *k*'s exit state from the stacked exit vector."""
        return self.exit_matrices[k] @ stacked[self.stage_slice(k)]

    def dense(self) -> tuple[np.ndarray, ...]:
        """The explicit stacked affine map, by symbolic substitution.

        Returns ``(P, E, g, P_in, E_in, g_in)`` with ``P`` of shape
        ``(Σ m_k·n, Σ m_k·n)`` such that one :meth:`apply` sweep equals
        ``(P_in·V + E_in·T + g_in, P·V + E·T + g)``.  Validation and
        analysis only — :meth:`apply` never pays the dense product.
        """
        n = self.num_nodes
        total = self.stacked_size
        matrix = np.zeros((total, total))
        entry_matrix = np.zeros((total, n))
        offset = np.zeros(total)
        in_matrix = np.zeros((total, total))
        in_entry_matrix = np.zeros((total, n))
        in_offset = np.zeros(total)
        for k, sweep in enumerate(self.stage_sweeps):
            rows = self.stage_slice(k)
            if k == 0:
                # Stage 0's entry is the pipeline entry state itself.
                t_dep = np.zeros((n, total))
                t_ent = np.eye(n)
                t_off = np.zeros(n)
            else:
                prev = self.stage_slice(k - 1)
                t_dep = self.exit_matrices[k - 1] @ matrix[prev]
                t_ent = self.exit_matrices[k - 1] @ entry_matrix[prev]
                t_off = self.exit_matrices[k - 1] @ offset[prev]
            matrix[rows] = sweep.entry_matrix @ t_dep
            matrix[rows, rows] += sweep.matrix
            entry_matrix[rows] = sweep.entry_matrix @ t_ent
            offset[rows] = sweep.offset + sweep.entry_matrix @ t_off
            in_matrix[rows] = sweep.in_entry_matrix @ t_dep
            in_matrix[rows, rows] += sweep.in_matrix
            in_entry_matrix[rows] = sweep.in_entry_matrix @ t_ent
            in_offset[rows] = sweep.in_offset + sweep.in_entry_matrix @ t_off
        return (
            matrix, entry_matrix, offset,
            in_matrix, in_entry_matrix, in_offset,
        )


def compile_pipeline_sweep(
    stage_sweeps: list[CompiledSweep],
    exit_plans: list[ExitPlan],
    num_nodes: int,
) -> CompiledPipelineSweep:
    """Chain per-stage sweeps into one pipeline-wide affine fixed point.

    Stage ``k``'s entry state is the exit-plan combination of stage
    ``k−1``'s updated exits — chaining the per-stage sweep maps through
    that substitution makes the whole pipeline one affine map on the
    stacked block-exit vector, exactly as :func:`compile_sweep` chains
    blocks within one function (see
    :class:`CompiledPipelineSweep` for the factored representation).
    """
    if not stage_sweeps:
        raise DataflowError("cannot compile an empty pipeline sweep")
    if len(stage_sweeps) != len(exit_plans):
        raise DataflowError("one exit plan per pipeline stage required")
    n = num_nodes
    sizes = [sweep.matrix.shape[0] for sweep in stage_sweeps]
    starts = [0]
    for size in sizes[:-1]:
        starts.append(starts[-1] + size)

    exit_matrices: list[np.ndarray] = []
    for k, plan in enumerate(exit_plans):
        exit_w = np.zeros((n, sizes[k]))
        for block_index, weight in plan:
            cols = slice(block_index * n, (block_index + 1) * n)
            exit_w[:, cols] += weight * np.eye(n)
        exit_matrices.append(exit_w)

    return CompiledPipelineSweep(
        rpos=tuple(sweep.rpo for sweep in stage_sweeps),
        signatures=tuple(sweep.signature for sweep in stage_sweeps),
        starts=tuple(starts),
        num_nodes=n,
        stage_sweeps=tuple(stage_sweeps),
        exit_matrices=tuple(exit_matrices),
    )


@dataclass
class CacheStats:
    """Hit/compile counters of one :class:`BlockTransferCache`."""

    block_compiles: int = 0
    block_hits: int = 0
    sweep_compiles: int = 0
    sweep_hits: int = 0
    pipeline_compiles: int = 0
    pipeline_hits: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "block_compiles": self.block_compiles,
            "block_hits": self.block_hits,
            "sweep_compiles": self.sweep_compiles,
            "sweep_hits": self.sweep_hits,
            "pipeline_compiles": self.pipeline_compiles,
            "pipeline_hits": self.pipeline_hits,
        }


class BlockTransferCache:
    """Lazily compiled block transfers for one analysis configuration.

    One cache serves one (model, power model, dt, leakage) combination —
    exactly the quantities a compiled transfer bakes in.  Compiled
    blocks are keyed by the block *object* (a strong reference, so ids
    can never be recycled underneath the cache) and validated against
    the current instruction count; compiled whole-function sweeps are
    keyed by the function object and validated against the CFG
    signature.  Transformed functions are new objects and therefore
    miss — never alias — which is what makes the cache safe to share
    across every analysis of an :class:`~repro.core.context.AnalysisContext`.
    """

    def __init__(
        self,
        model: RFThermalModel,
        power_model,
        dt: float,
        include_leakage: bool = True,
    ) -> None:
        self.model = model
        self.power_model = power_model
        self.dt = dt
        self.include_leakage = include_leakage
        self.stats = CacheStats()
        self._compiled: dict[BasicBlock, CompiledBlock] = {}
        self._sweeps: dict[tuple[object, str], CompiledSweep] = {}
        self._pipelines: dict[
            tuple[tuple[object, ...], str], CompiledPipelineSweep
        ] = {}

    def block(self, block: BasicBlock) -> CompiledBlock:
        """The compiled transfer of *block* (compiling on first use)."""
        compiled = self._compiled.get(block)
        if compiled is not None and compiled.num_instructions == len(
            block.instructions
        ):
            self.stats.block_hits += 1
            return compiled
        compiled = compile_block(
            block,
            self.model,
            self.power_model,
            self.dt,
            include_leakage=self.include_leakage,
        )
        self._compiled[block] = compiled
        self.stats.block_compiles += 1
        return compiled

    def compile_function(self, function) -> dict[str, CompiledBlock]:
        """Compiled transfers for every block of *function*, by name."""
        return {name: self.block(block) for name, block in function.blocks.items()}

    def sweep(
        self,
        function,
        rpo: list[str],
        plan: MergePlan,
        merge: str,
        compiled: dict[str, CompiledBlock],
    ) -> CompiledSweep:
        """The composed Gauss–Seidel sweep of *function* under *merge*.

        Cached per (function object, merge mode) and validated against
        the CFG signature, so an in-place CFG edit recompiles instead of
        serving a stale sweep.
        """
        signature = sweep_signature(function, rpo)
        key = (function, merge)
        cached = self._sweeps.get(key)
        if cached is not None and cached.signature == signature:
            self.stats.sweep_hits += 1
            return cached
        built = compile_sweep(
            compiled, plan, rpo, self.model.grid.num_nodes, signature
        )
        self._sweeps[key] = built
        self.stats.sweep_compiles += 1
        return built

    def pipeline(
        self,
        functions: list,
        stage_sweeps: list[CompiledSweep],
        exit_plans: list[ExitPlan],
        merge: str,
    ) -> CompiledPipelineSweep:
        """The stacked pipeline sweep of *functions*, compiled once.

        Cached per (tuple of function objects, merge mode) and validated
        against every stage's CFG signature — a pipeline of repeated
        kernels (same function objects) compiles once and re-analyzes
        from cache.
        """
        key = (tuple(functions), merge)
        signatures = tuple(sweep.signature for sweep in stage_sweeps)
        cached = self._pipelines.get(key)
        if cached is not None and cached.signatures == signatures:
            self.stats.pipeline_hits += 1
            return cached
        built = compile_pipeline_sweep(
            stage_sweeps, exit_plans, self.model.grid.num_nodes
        )
        self._pipelines[key] = built
        self.stats.pipeline_compiles += 1
        return built

    def invalidate(self, function=None) -> None:
        """Drop compiled artifacts (of *function*, or everything).

        Call after transforming a function *in place*; functions rebuilt
        as new objects never alias and need no invalidation.
        """
        if function is None:
            self._compiled.clear()
            self._sweeps.clear()
            self._pipelines.clear()
            return
        for block in function.blocks.values():
            self._compiled.pop(block, None)
        for key in [k for k in self._sweeps if k[0] is function]:
            del self._sweeps[key]
        for key in [
            k for k in self._pipelines
            if any(stage is function for stage in k[0])
        ]:
            del self._pipelines[key]

    def __len__(self) -> int:
        return len(self._compiled)
