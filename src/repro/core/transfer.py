"""Compiled affine block transfers for the thermal data flow analysis.

Why block transfers compose
---------------------------
In the linear regime (no leakage-temperature feedback) one cycle of the
RC network under instruction *I*'s constant power is the affine map

    T' = op · T + (I − op) · T_ss(P_I),          op = e^{−C⁻¹G·dt},

(:meth:`~repro.thermal.rcmodel.RFThermalModel.affine_step`; the
compiler below evaluates the same map in batched form via
:meth:`~repro.thermal.rcmodel.RFThermalModel.steady_state_many`).
Affine maps are closed under composition, so an entire basic block B
with instructions I₁ … I_k collapses into a single pair

    T_out = A_B · T_in + b_B,        A_B = opᵏ,
    b_B   = Σ_j op^{k−j} (I − op) T_ss(P_{I_j}),

computed once per block.  The fixed-point sweep of
:class:`~repro.core.tdfa.ThermalDataflowAnalysis` then iterates **one
mat-vec per block** instead of one per instruction — the analysis cost
drops from O(sweeps × instructions × nodes²) to O(sweeps × blocks ×
nodes² + instructions × nodes³ / compile) — and the per-instruction
states required by the paper's Fig. 2 output are materialized in a
single reconstruction sweep after convergence.

Because ``op`` is non-negative with row sums strictly below 1 (the
network always leaks heat to ambient), every :class:`AffineTransfer`
built here is an ∞-norm contraction; block-level convergence of the
sweep therefore bounds per-instruction convergence, and compositions of
block maps along converged (static) merge weights yield the *exact*
whole-function affine summary (:mod:`repro.core.summaries`).

Why whole sweeps compose too
----------------------------
Under an affine merge (``freq``/``mean``) the merge weights are static,
so one entire Gauss–Seidel sweep over the blocks in reverse post-order —
merge each block's predecessors, apply its transfer, in order, reading
already-updated outs — is itself an affine map on the *stacked* vector
of block-exit states:

    V' = S · V + E · T_entry + g,        V = [out_B₁; …; out_Bₘ],

with ``S`` of shape ``(m·n, m·n)``.  :func:`compile_sweep` builds that
map once by symbolic substitution along the sweep order (plus its
pre-transfer twin for the block-entry states); the batched fixed-point
engine then runs **two stacked mat-vecs per sweep** for the whole
function instead of a Python loop of per-block merges and mat-vecs,
with delta histories and iteration counts identical to the blockwise
Gauss–Seidel sweep.

Cache keys are *identity-stable*: compiled blocks are keyed by the
:class:`~repro.ir.block.BasicBlock` object itself (the cache holds a
strong reference, so ids can never be recycled under it) and validated
against the current instruction count; compiled sweeps are keyed by the
function object and validated against the CFG signature (block names,
instruction counts, successor lists).  A transformed function is a new
object, so it can never be served another function's transfers — this
is what lets one :class:`~repro.core.context.AnalysisContext` safely
share a cache across every analysis of a pipeline or suite run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse

from ..errors import DataflowError
from ..ir.block import BasicBlock
from ..thermal.rcmodel import RFThermalModel
from ..thermal.state import ThermalState

#: Human-readable identity of a compiled block: (block name, instruction
#: count).  Diagnostics only — the cache itself keys by object identity.
BlockKey = tuple[str, int]

#: Valid stacked-sweep storage forms (see :func:`choose_sweep_form`).
SWEEP_FORMS = ("dense", "sparse")

#: Auto-heuristic cutoffs for the CSR sweep representation.  A stacked
#: sweep map only has nonzero ``(n, n)`` blocks where the Gauss–Seidel
#: substitution chain actually couples two blocks, so its block density
#: is knowable from the merge plan alone (:func:`estimate_sweep_density`)
#: — no dense matrix is ever built just to measure it.  Below
#: ``SPARSE_MIN_STACKED`` rows, dense BLAS mat-vecs beat CSR regardless
#: of density (measured crossover on the reproduction's kernels: CSR is
#: ~2–3× faster from 512 stacked rows up, dense wins below ~448).
SPARSE_DENSITY_CUTOFF = 0.25
SPARSE_MIN_STACKED = 512


def _to_dense(matrix) -> np.ndarray:
    """A plain ndarray view of a dense or scipy.sparse matrix."""
    if scipy.sparse.issparse(matrix):
        return matrix.toarray()
    return np.asarray(matrix)


def _matrix_nbytes(matrix) -> int:
    """Bytes actually held by a dense or CSR/CSC matrix."""
    if scipy.sparse.issparse(matrix):
        return int(
            matrix.data.nbytes + matrix.indices.nbytes + matrix.indptr.nbytes
        )
    return int(matrix.nbytes)


@dataclass(frozen=True)
class AffineTransfer:
    """An affine map ``T ↦ matrix · T + offset`` on node temperatures.

    The unit of composition for the compiled engine: one instruction,
    one basic block, or any chain thereof.  ``key`` is a stable,
    human-readable identity used for caching and diagnostics.
    """

    matrix: np.ndarray
    offset: np.ndarray
    key: str = ""

    @classmethod
    def identity(cls, num_nodes: int, key: str = "id") -> "AffineTransfer":
        return cls(np.eye(num_nodes), np.zeros(num_nodes), key=key)

    @classmethod
    def from_step(
        cls, op: np.ndarray, target: np.ndarray, key: str = ""
    ) -> "AffineTransfer":
        """One relaxation step toward *target*: ``T' = target + op(T − target)``."""
        return cls(op, target - op @ target, key=key)

    def apply(self, temperatures: np.ndarray) -> np.ndarray:
        """Map a raw temperature vector (one mat-vec plus an add)."""
        return self.matrix @ temperatures + self.offset

    def apply_state(self, state: ThermalState) -> ThermalState:
        """Map a :class:`ThermalState` (grid is preserved)."""
        return ThermalState(state.grid, self.apply(state.temperatures))

    def then(self, outer: "AffineTransfer") -> "AffineTransfer":
        """The composition *self first, then outer*."""
        return AffineTransfer(
            matrix=outer.matrix @ self.matrix,
            offset=outer.matrix @ self.offset + outer.offset,
            key=f"{self.key};{outer.key}",
        )

    def contraction_factor(self) -> float:
        """∞-norm of the linear part (< 1 for any RC-derived transfer)."""
        return float(np.abs(self.matrix).sum(axis=1).max())

    @property
    def is_sparse(self) -> bool:
        """Whether the linear part is stored as a scipy.sparse matrix."""
        return scipy.sparse.issparse(self.matrix)

    def sparsified(self) -> "AffineTransfer":
        """This transfer with its linear part stored CSR.

        ``apply``/``then``/``contraction_factor`` work identically on
        either storage; worth it only when the matrix is actually sparse
        (block transfers ``op^k`` are dense — the sparse win lives in
        the *stacked* sweep maps, see :class:`SparseSweep`).
        """
        if self.is_sparse:
            return self
        return AffineTransfer(
            scipy.sparse.csr_matrix(self.matrix), self.offset, key=self.key
        )

    @property
    def nbytes(self) -> int:
        """Bytes held by the map's matrices (dense or CSR)."""
        return _matrix_nbytes(self.matrix) + int(self.offset.nbytes)


@dataclass(frozen=True)
class CompiledBlock:
    """A basic block's pre-composed transfer plus reconstruction data.

    ``transfer`` maps the block-entry state straight to the block-exit
    state.  ``step_op`` and ``targets`` (the per-instruction steady
    states, in program order) replay the interior: given the converged
    block-entry state, one pass over ``targets`` materializes the
    after-state of every instruction — the single reconstruction sweep
    of the compiled engine.
    """

    key: BlockKey
    transfer: AffineTransfer
    step_op: np.ndarray
    targets: tuple[np.ndarray, ...]

    @property
    def num_instructions(self) -> int:
        return len(self.targets)

    def reconstruct(self, entry: np.ndarray) -> list[np.ndarray]:
        """Per-instruction after-states from the block-entry vector."""
        states: list[np.ndarray] = []
        temps = entry
        op = self.step_op
        for target in self.targets:
            temps = target + op @ (temps - target)
            states.append(temps)
        return states


def compile_block(
    block: BasicBlock,
    model: RFThermalModel,
    power_model,
    dt: float,
    include_leakage: bool = True,
) -> CompiledBlock:
    """Pre-compose *block*'s per-instruction affine steps into one map.

    Requires the linear regime: *power_model* must not have
    leakage-temperature feedback (the per-instruction power, and hence
    its steady-state target, must be state-independent).
    """
    if getattr(power_model, "has_leakage_feedback", False):
        raise DataflowError(
            "cannot compile block transfers with leakage-temperature "
            "feedback: the per-instruction step is not affine "
            "(use the stepped engine)"
        )
    n = model.grid.num_nodes
    op = model.step_operator(dt)
    # Reference state for power evaluation: with no feedback the power is
    # state-independent, so ambient is as good as any.
    ambient = model.ambient_state()
    insts = block.instructions
    offset = np.zeros(n)
    targets: tuple[np.ndarray, ...] = ()
    if insts:
        # One batched SPD solve for every instruction's steady state,
        # then one (n×n)@(n×k) product for all relaxation offsets.
        powers = np.stack(
            [
                power_model.total_power(
                    inst, ambient, include_leakage=include_leakage
                )
                for inst in insts
            ],
            axis=1,
        )
        target_cols = model.steady_state_many(powers)
        kicks = target_cols - op @ target_cols  # (I − op)·target, per column
        # Horner accumulation of b_B = Σ_j op^{k−j} (I − op) target_j.
        for j in range(len(insts)):
            offset = op @ offset + kicks[:, j]
        targets = tuple(target_cols.T)
    matrix = np.linalg.matrix_power(op, len(insts))
    key: BlockKey = (block.name, len(insts))
    return CompiledBlock(
        key=key,
        transfer=AffineTransfer(matrix, offset, key=f"block:{block.name}"),
        step_op=op,
        targets=targets,
    )


def normalized_weights(raw: list[float]) -> list[float]:
    """Normalize merge weights exactly like :meth:`ThermalState.weighted_mean`.

    A non-positive total falls back to the plain mean, matching the
    numeric merge's behaviour for degenerate static profiles.
    """
    total = sum(raw)
    if total <= 0:
        return [1.0 / len(raw)] * len(raw)
    return [w / total for w in raw]


#: One block's merge recipe: ``(source, weight)`` pairs where source
#: ``None`` denotes the function's entry state.
MergePlan = dict[str, list[tuple[str | None, float]]]


def affine_merge_plan(
    function, rpo: list[str], preds, profile, merge: str, entry: str
) -> MergePlan:
    """Static merge weights of the affine CFG joins (``freq``/``mean``).

    Because the static profile is fixed, the convex combination each
    block's in-state takes of its predecessors' out-states never changes
    across sweeps — so it can be computed once and replayed as plain
    weighted vector sums (the compiled engine) or solved against
    symbolically (exact summary extraction).  The weight bookkeeping
    mirrors :class:`~repro.core.tdfa.ThermalDataflowAnalysis`'s numeric
    merge, including the entry-state injection at the entry block and
    the degenerate-profile fallback.
    """
    if merge not in ("freq", "mean"):
        raise DataflowError(
            f"only the affine merges ('freq'/'mean') have a static plan, "
            f"got {merge!r}"
        )
    rpo_set = set(rpo)
    plan: MergePlan = {}
    for name in rpo:
        sources: list[str | None] = [p for p in preds[name] if p in rpo_set]
        if name == entry:
            sources = sources + [None]
        if not sources:
            # Unreachable for rpo blocks in practice; the numeric merge
            # would feed the entry state here.
            sources = [None]
        if len(sources) == 1:
            weights = [1.0]
        elif merge == "mean":
            weights = [1.0 / len(sources)] * len(sources)
        else:  # freq
            weights = normalized_weights([
                profile.edge_freq(src, name) if src is not None else 1.0
                for src in sources
            ])
        plan[name] = list(zip(sources, weights))
    return plan


#: A function's CFG signature: what a compiled sweep bakes in besides
#: the block transfers themselves (names, counts, successor lists fix
#: both the merge weights and the substitution order).
SweepSignature = tuple[tuple[str, int, tuple[str, ...]], ...]


def sweep_signature(function, rpo: list[str]) -> SweepSignature:
    """The CFG signature a compiled sweep is validated against."""
    return tuple(
        (
            name,
            len(function.block(name).instructions),
            tuple(function.block(name).successors()),
        )
        for name in rpo
    )


#: A merge plan frozen to a hashable per-rpo-row form — what a compiled
#: sweep stores so row patching can tell which rows' recipes changed.
PlanKey = tuple[tuple[tuple[str | None, float], ...], ...]


def plan_key(plan: MergePlan, rpo: list[str]) -> PlanKey:
    """*plan* as a per-row tuple aligned with *rpo* (order-preserving)."""
    return tuple(
        tuple((src, float(w)) for src, w in plan[name]) for name in rpo
    )


def _block_dep_sets(plan: MergePlan, rpo: list[str]) -> list[set[int]]:
    """Which previous-sweep block outs each row of ``S`` references.

    Mirrors :func:`compile_sweep`'s substitution walk at block
    granularity: a block processed earlier this sweep contributes its
    own dependency set, a back/self edge contributes the source itself.
    ``S``'s nonzero ``(n, n)`` blocks are exactly these sets.
    """
    index = {name: i for i, name in enumerate(rpo)}
    deps: list[set[int]] = []
    for i, name in enumerate(rpo):
        row: set[int] = set()
        for src, _w in plan[name]:
            if src is None:
                continue
            j = index[src]
            if j < i:
                row |= deps[j]
            else:
                row.add(j)
        deps.append(row)
    return deps


def estimate_sweep_density(plan: MergePlan, rpo: list[str]) -> float:
    """Predicted density of the stacked sweep matrix ``S``, from the plan.

    Exact at block granularity (each coupled ``(n, n)`` block is dense,
    everything else is structurally zero), so the auto heuristic can
    pick a storage form *before* any matrix exists.
    """
    m = len(rpo)
    if m == 0:
        return 0.0
    nnz_blocks = sum(len(row) for row in _block_dep_sets(plan, rpo))
    return nnz_blocks / (m * m)


def choose_sweep_form(plan: MergePlan, rpo: list[str], num_nodes: int) -> str:
    """The storage form the auto heuristic picks for one stacked sweep.

    ``"sparse"`` exactly when the stacked map is big enough for CSR
    mat-vecs to beat dense BLAS *and* the plan-predicted density is low
    enough for the nonzeros to pay for the index traffic; ``"dense"``
    otherwise.  Pure function of CFG structure — no matrices are built.
    """
    if len(rpo) * num_nodes < SPARSE_MIN_STACKED:
        return "dense"
    if estimate_sweep_density(plan, rpo) > SPARSE_DENSITY_CUTOFF:
        return "dense"
    return "sparse"


def sweep_density(sweep) -> float:
    """Measured density of a built sweep's ``S`` matrix (either form)."""
    matrix = sweep.matrix
    size = matrix.shape[0] * matrix.shape[1]
    if size == 0:
        return 0.0
    if scipy.sparse.issparse(matrix):
        return matrix.nnz / size
    return int(np.count_nonzero(matrix)) / size


@dataclass(frozen=True)
class CompiledSweep:
    """One whole Gauss–Seidel sweep as a single stacked affine map.

    ``matrix``/``entry_matrix``/``offset`` give the block-*exit* states
    after one sweep: ``V' = matrix · V + entry_matrix · T_entry +
    offset`` on the stacked ``(m·n,)`` vector of exit states, ordered
    by ``rpo``.  ``in_matrix``/``in_entry_matrix``/``in_offset`` give
    the same sweep's block-*entry* states (the Gauss–Seidel merge of
    already-updated and previous-sweep exits) — the second stacked
    mat-vec that lets the batched engine measure convergence on exactly
    the quantities the blockwise loop measures, sweep for sweep.
    """

    rpo: tuple[str, ...]
    signature: SweepSignature
    matrix: np.ndarray            # S_out, (m·n, m·n)
    entry_matrix: np.ndarray      # E_out, (m·n, n)
    offset: np.ndarray            # g_out, (m·n,)
    in_matrix: np.ndarray         # S_in, (m·n, m·n)
    in_entry_matrix: np.ndarray   # E_in, (m·n, n)
    in_offset: np.ndarray         # g_in, (m·n,)
    #: The merge plan the map was composed from, frozen per rpo row
    #: (``None`` for sweeps built before row patching existed).  What
    #: :func:`patch_sweep` diffs to find rows whose recipe changed.
    plan: PlanKey | None = None

    #: Storage form of the stacked matrices.
    form = "dense"

    @property
    def num_blocks(self) -> int:
        return len(self.rpo)

    @property
    def nnz(self) -> int:
        """Nonzeros of ``S`` + ``S_in`` (the per-sweep mat-vec work)."""
        return int(np.count_nonzero(self.matrix)) + int(
            np.count_nonzero(self.in_matrix)
        )

    @property
    def nbytes(self) -> int:
        """Bytes held by the six stacked arrays."""
        return sum(
            _matrix_nbytes(part)
            for part in (
                self.matrix, self.entry_matrix, self.offset,
                self.in_matrix, self.in_entry_matrix, self.in_offset,
            )
        )

    def entry_terms(self, t_entry: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """The constant (entry-state) parts of one run's sweeps:
        ``(E_in·T_entry + g_in, E_out·T_entry + g_out)``."""
        return (
            self.in_entry_matrix @ t_entry + self.in_offset,
            self.entry_matrix @ t_entry + self.offset,
        )

    def apply(
        self, stacked: np.ndarray, in_term: np.ndarray, out_term: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """One sweep from the previous exits: ``(entry states, exit states)``."""
        return (
            self.in_matrix @ stacked + in_term,
            self.matrix @ stacked + out_term,
        )


@dataclass(frozen=True)
class SparseSweep:
    """A :class:`CompiledSweep` with its stacked matrices stored CSR.

    The same affine map — ``V' = S·V + E·T_entry + g`` plus the
    pre-transfer twin — with ``S``/``E``/``S_in``/``E_in`` held as
    ``scipy.sparse.csr_matrix``.  ``S`` only has nonzero ``(n, n)``
    blocks where the Gauss–Seidel substitution chain couples two blocks
    (measured densities on the kernel suite: 0.11–0.19), so one sweep
    costs ``O(nnz)`` instead of ``O((m·n)²)`` and the held memory drops
    by the same factor.  ``entry_terms``/``apply`` mirror
    :class:`CompiledSweep` exactly — the fixed-point loop is agnostic to
    the storage form — and the composed map is numerically the *same
    matrix*, so iteration counts and δ-histories match the dense and
    blockwise engines sweep for sweep.
    """

    rpo: tuple[str, ...]
    signature: SweepSignature
    matrix: scipy.sparse.csr_matrix            # S_out, (m·n, m·n)
    entry_matrix: scipy.sparse.csr_matrix      # E_out, (m·n, n)
    offset: np.ndarray                         # g_out, (m·n,)
    in_matrix: scipy.sparse.csr_matrix         # S_in, (m·n, m·n)
    in_entry_matrix: scipy.sparse.csr_matrix   # E_in, (m·n, n)
    in_offset: np.ndarray                      # g_in, (m·n,)
    plan: PlanKey | None = None

    #: Storage form of the stacked matrices.
    form = "sparse"

    @property
    def num_blocks(self) -> int:
        return len(self.rpo)

    @property
    def nnz(self) -> int:
        """Nonzeros of ``S`` + ``S_in`` (the per-sweep mat-vec work)."""
        return int(self.matrix.nnz) + int(self.in_matrix.nnz)

    @property
    def nbytes(self) -> int:
        """Bytes held by the six stacked arrays (CSR data + indices)."""
        return sum(
            _matrix_nbytes(part)
            for part in (
                self.matrix, self.entry_matrix, self.offset,
                self.in_matrix, self.in_entry_matrix, self.in_offset,
            )
        )

    def entry_terms(self, t_entry: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """The constant (entry-state) parts of one run's sweeps."""
        return (
            self.in_entry_matrix @ t_entry + self.in_offset,
            self.entry_matrix @ t_entry + self.offset,
        )

    def apply(
        self, stacked: np.ndarray, in_term: np.ndarray, out_term: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """One sweep from the previous exits: ``(entry states, exit states)``."""
        return (
            self.in_matrix @ stacked + in_term,
            self.matrix @ stacked + out_term,
        )


def sparsify_sweep(sweep: CompiledSweep) -> SparseSweep:
    """The CSR form of a dense compiled sweep (same affine map)."""
    return SparseSweep(
        rpo=sweep.rpo,
        signature=sweep.signature,
        matrix=scipy.sparse.csr_matrix(sweep.matrix),
        entry_matrix=scipy.sparse.csr_matrix(sweep.entry_matrix),
        offset=sweep.offset,
        in_matrix=scipy.sparse.csr_matrix(sweep.in_matrix),
        in_entry_matrix=scipy.sparse.csr_matrix(sweep.in_entry_matrix),
        in_offset=sweep.in_offset,
        plan=sweep.plan,
    )


def compile_sweep(
    compiled: dict[str, CompiledBlock],
    plan: MergePlan,
    rpo: list[str],
    num_nodes: int,
    signature: SweepSignature,
) -> CompiledSweep:
    """Compose one Gauss–Seidel sweep into a single stacked affine map.

    Walks the blocks in sweep (reverse post-) order keeping, for each
    already-processed block, its new out-state as an affine expression
    of the *previous* sweep's outs; predecessors processed earlier in
    the same sweep substitute their expression (that is what makes the
    composed map Gauss–Seidel rather than Jacobi, preserving the
    blockwise engine's iteration counts).  Expressions are kept
    block-sparse — a block's out only references the few outs its merge
    chain actually reaches — so composition stays cheap on loop CFGs.
    """
    n = num_nodes
    m = len(rpo)
    index = {name: i for i, name in enumerate(rpo)}
    eye = np.eye(n)

    matrix = np.zeros((m * n, m * n))
    entry_matrix = np.zeros((m * n, n))
    offset = np.zeros(m * n)
    in_matrix = np.zeros((m * n, m * n))
    in_entry_matrix = np.zeros((m * n, n))
    in_offset = np.zeros(m * n)

    # Per processed block: (deps: {j: (n, n)}, entry: (n, n) | None, off)
    exprs: list[tuple[dict[int, np.ndarray], np.ndarray | None, np.ndarray]] = []
    for i, name in enumerate(rpo):
        block = compiled[name]
        a_block = block.transfer.matrix
        deps: dict[int, np.ndarray] = {}
        ent: np.ndarray | None = None
        off = np.zeros(n)
        for src, w in plan[name]:
            if src is None:
                ent = w * eye if ent is None else ent + w * eye
                continue
            j = index[src]
            if j < i:  # updated earlier this sweep: substitute its expression
                dj, ej, oj = exprs[j]
                for k, mat in dj.items():
                    deps[k] = deps.get(k, 0.0) + w * mat
                if ej is not None:
                    ent = w * ej if ent is None else ent + w * ej
                off += w * oj
            else:      # still the previous sweep's value (self/back edges)
                deps[j] = deps.get(j, 0.0) + w * eye

        rows = slice(i * n, (i + 1) * n)
        # The pre-transfer expression IS this block's entry state.
        for k, mat in deps.items():
            in_matrix[rows, k * n:(k + 1) * n] = mat
        if ent is not None:
            in_entry_matrix[rows] = ent
        in_offset[rows] = off

        deps = {k: a_block @ mat for k, mat in deps.items()}
        ent = a_block @ ent if ent is not None else None
        off = a_block @ off + block.transfer.offset
        exprs.append((deps, ent, off))

        for k, mat in deps.items():
            matrix[rows, k * n:(k + 1) * n] = mat
        if ent is not None:
            entry_matrix[rows] = ent
        offset[rows] = off

    return CompiledSweep(
        rpo=tuple(rpo),
        signature=signature,
        matrix=matrix,
        entry_matrix=entry_matrix,
        offset=offset,
        in_matrix=in_matrix,
        in_entry_matrix=in_entry_matrix,
        in_offset=in_offset,
        plan=plan_key(plan, rpo),
    )


def _dense_copy(matrix) -> np.ndarray:
    if scipy.sparse.issparse(matrix):
        return matrix.toarray()
    return np.array(matrix)


def patch_sweep(
    old: "CompiledSweep | SparseSweep",
    compiled: dict[str, CompiledBlock],
    plan: MergePlan,
    rpo: list[str],
    num_nodes: int,
    signature: SweepSignature,
    dirty: set[str],
) -> "CompiledSweep | SparseSweep":
    """Re-derive only the stacked rows a block edit actually touched.

    The substitution walk in :func:`compile_sweep` writes row *i* as a
    function of the block-*i* transfer, the merge-plan row for block
    *i*, and the already-written rows of its earlier-in-sweep sources.
    So after an in-place edit of a few blocks, a row needs recomputing
    iff its block is *dirty*, its plan row changed, or it substitutes a
    recomputed earlier row; every other row is read back verbatim from
    the cached sweep.  Back/self edges contribute ``w·I`` blocks that do
    not depend on the source row's expression, so a changed *later*
    block never invalidates an earlier row.  Recomputed rows accumulate
    their terms in the same plan order as a cold compile, so the patched
    sweep matches a from-scratch :func:`compile_sweep` to roundoff
    (bitwise, for rows whose inputs are unchanged).
    """
    n = num_nodes
    m = len(rpo)
    index = {name: i for i, name in enumerate(rpo)}
    new_plan = plan_key(plan, rpo)
    old_plan = old.plan
    dep_sets = _block_dep_sets(plan, rpo)
    eye = np.eye(n)

    changed: set[int] = set()
    for i, name in enumerate(rpo):
        if old_plan is None or name in dirty or old_plan[i] != new_plan[i]:
            changed.add(i)
            continue
        for src, _w in plan[name]:
            if src is None:
                continue
            j = index[src]
            if j < i and j in changed:
                changed.add(i)
                break

    # New dense (n, …) row-slabs for the recomputed rows only; unchanged
    # rows stay in the cached sweep's storage (CSR slices for a sparse
    # sweep) and are re-stacked verbatim — never densified wholesale.
    out_mat: dict[int, np.ndarray] = {}
    out_ent: dict[int, np.ndarray] = {}
    in_mat: dict[int, np.ndarray] = {}
    in_ent: dict[int, np.ndarray] = {}
    offset = np.array(old.offset)
    in_offset = np.array(old.in_offset)
    fetched: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    def expr_of(j: int) -> tuple[np.ndarray, np.ndarray]:
        """Row *j*'s post-transfer (matrix slab, entry slab), dense."""
        if j in out_mat:
            return out_mat[j], out_ent[j]
        got = fetched.get(j)
        if got is None:
            rows = slice(j * n, (j + 1) * n)
            got = (
                _dense_copy(old.matrix[rows]),
                _dense_copy(old.entry_matrix[rows]),
            )
            fetched[j] = got
        return got

    for i in sorted(changed):
        name = rpo[i]
        block = compiled[name]
        a_block = block.transfer.matrix
        deps: dict[int, np.ndarray] = {}
        ent: np.ndarray | None = None
        off = np.zeros(n)
        for src, w in plan[name]:
            if src is None:
                ent = w * eye if ent is None else ent + w * eye
                continue
            j = index[src]
            if j < i:  # substitute row j's stored post-transfer expression
                mj, ej = expr_of(j)
                for k in dep_sets[j]:
                    mat = mj[:, k * n:(k + 1) * n]
                    deps[k] = deps.get(k, 0.0) + w * mat
                ent = w * ej if ent is None else ent + w * ej
                off += w * offset[j * n:(j + 1) * n]
            else:
                deps[j] = deps.get(j, 0.0) + w * eye

        in_slab = np.zeros((n, m * n))
        out_slab = np.zeros((n, m * n))
        for k, mat in deps.items():
            in_slab[:, k * n:(k + 1) * n] = mat
            out_slab[:, k * n:(k + 1) * n] = a_block @ mat
        in_mat[i] = in_slab
        in_ent[i] = ent if ent is not None else np.zeros((n, n))
        in_offset[i * n:(i + 1) * n] = off
        out_mat[i] = out_slab
        out_ent[i] = (
            a_block @ ent if ent is not None else np.zeros((n, n))
        )
        offset[i * n:(i + 1) * n] = a_block @ off + block.transfer.offset

    def assemble(stored, slabs: dict[int, np.ndarray]):
        """*stored* with the rows in *slabs* replaced, same storage form."""
        if scipy.sparse.issparse(stored):
            parts = [
                scipy.sparse.csr_matrix(slabs[i])
                if i in slabs
                else stored[i * n:(i + 1) * n]
                for i in range(m)
            ]
            return scipy.sparse.vstack(parts, format="csr")
        result = np.array(stored)
        for i, slab in slabs.items():
            result[i * n:(i + 1) * n] = slab
        return result

    cls = SparseSweep if old.form == "sparse" else CompiledSweep
    return cls(
        rpo=tuple(rpo),
        signature=signature,
        matrix=assemble(old.matrix, out_mat),
        entry_matrix=assemble(old.entry_matrix, out_ent),
        offset=offset,
        in_matrix=assemble(old.in_matrix, in_mat),
        in_entry_matrix=assemble(old.in_entry_matrix, in_ent),
        in_offset=in_offset,
        plan=new_plan,
    )


def rank_update_block(
    old: CompiledBlock,
    block: BasicBlock,
    index: int,
    model: RFThermalModel,
    power_model,
    dt: float,
    include_leakage: bool = True,
) -> tuple[CompiledBlock, np.ndarray] | None:
    """Absorb an in-place single-instruction edit as a factored update.

    The compiled transfer of a ``k``-instruction block is
    ``A_B = op^k`` with offset ``b_B = Σ_j op^{k−1−j}(I−op)·T_ss(P_j)``.
    Replacing instruction *index* in place (same count, so the CFG
    signature — and with it ``op^k`` and every merge weight — is
    untouched) is the degenerate Sherman–Morrison–Woodbury case on the
    affine solve path: the rank-k correction ``I + UVᵀ`` to the linear
    part is the identity, and the whole edit collapses to the offset
    shift

        Δb_B = op^{k−1−index} · (I − op) · ΔT_ss

    for the one changed steady-state target.  Returns the updated
    :class:`CompiledBlock` (matrix and ``step_op`` *shared* with *old*)
    plus ``Δb_B``, or ``None`` when the edit is outside the factored
    regime — instruction count changed (structural), index out of
    range, or leakage-temperature feedback — so the caller falls back
    to a full recompile.
    """
    if getattr(power_model, "has_leakage_feedback", False):
        return None
    if old.num_instructions != len(block.instructions):
        return None
    if not 0 <= index < len(block.instructions):
        return None
    op = old.step_op
    ambient = model.ambient_state()
    power = power_model.total_power(
        block.instructions[index], ambient, include_leakage=include_leakage
    )
    target = model.steady_state_many(np.asarray(power).reshape(-1, 1))[:, 0]
    delta_t = target - old.targets[index]
    delta = delta_t - op @ delta_t  # (I − op)·ΔT_ss
    for _ in range(len(block.instructions) - 1 - index):
        delta = op @ delta
    targets = list(old.targets)
    targets[index] = target
    updated = CompiledBlock(
        key=old.key,
        transfer=AffineTransfer(
            old.transfer.matrix,
            old.transfer.offset + delta,
            key=old.transfer.key,
        ),
        step_op=op,
        targets=tuple(targets),
    )
    return updated, delta


def patch_sweep_offsets(
    old: "CompiledSweep | SparseSweep",
    compiled: dict[str, CompiledBlock],
    delta_offsets: dict[str, np.ndarray],
) -> "CompiledSweep | SparseSweep | None":
    """Propagate per-block offset shifts through a cached sweep.

    The companion of :func:`rank_update_block` at the stacked level:
    when an edit leaves every linear part untouched (``A_B``, merge
    weights, hence ``S``/``E`` and their pre-transfer twins), only the
    offset columns move, and they move *linearly* — row *i*'s shift is
    the substitution walk of :func:`compile_sweep` replayed on deltas
    alone:

        Δg_in[i]  = Σ_{(src=j<i, w)} w · Δg[j]
        Δg[i]     = A_i · Δg_in[i] + Δb_i

    (back/self edges reference the previous sweep's *state*, not the
    offset expression, so they contribute nothing).  All six stacked
    matrices are **shared** with *old* — only the two offset vectors are
    new — so the patch is ``O(m·n²)`` against the ``O((m·n)²)`` a row
    re-derivation pays.  Returns ``None`` when *old* predates plan
    tracking (no per-row recipe to replay).
    """
    if old.plan is None:
        return None
    rpo = old.rpo
    if not rpo:
        return None
    n = old.offset.shape[0] // len(rpo)
    index = {name: i for i, name in enumerate(rpo)}
    if any(name not in index for name in delta_offsets):
        return None
    offset = np.array(old.offset)
    in_offset = np.array(old.in_offset)
    deltas: list[np.ndarray | None] = []
    for i, name in enumerate(rpo):
        d_in: np.ndarray | None = None
        for src, w in old.plan[i]:
            if src is None:
                continue
            j = index.get(src)
            if j is None or j >= i:
                continue
            dj = deltas[j]
            if dj is None:
                continue
            d_in = w * dj if d_in is None else d_in + w * dj
        d_b = delta_offsets.get(name)
        if d_in is None and d_b is None:
            deltas.append(None)
            continue
        rows = slice(i * n, (i + 1) * n)
        if d_in is not None:
            in_offset[rows] += d_in
            d_out = compiled[name].transfer.matrix @ d_in
        else:
            d_out = np.zeros(n)
        if d_b is not None:
            d_out = d_out + d_b
        offset[rows] += d_out
        deltas.append(d_out)
    cls = SparseSweep if old.form == "sparse" else CompiledSweep
    return cls(
        rpo=old.rpo,
        signature=old.signature,
        matrix=old.matrix,
        entry_matrix=old.entry_matrix,
        offset=offset,
        in_matrix=old.in_matrix,
        in_entry_matrix=old.in_entry_matrix,
        in_offset=in_offset,
        plan=old.plan,
    )


#: One stage's exit recipe inside a pipeline: ``(rpo index, weight)``
#: pairs — the freq-weighted convex combination of exit-block out-states
#: that *is* the stage's exit state (mirrors ``TDFAResult.exit_state``).
ExitPlan = list[tuple[int, float]]


@dataclass(frozen=True)
class CompiledPipelineSweep:
    """One Gauss–Seidel sweep over a whole *pipeline* of functions.

    The interprocedural extension of :class:`CompiledSweep`: the blocks
    of every pipeline stage are stacked into one vector (stage 0's
    blocks first, in reverse post-order, then stage 1's, …) and one
    sweep of the whole pipeline — each stage's entry state being the
    freq-weighted exit of the *previous* stage, already updated this
    sweep — is a single affine map

        V' = P · V + E · T_entry + g

    on the stacked ``(Σ_k m_k·n,)`` vector of block-exit states, with a
    pre-transfer twin for the block-entry states so convergence is
    measured on exactly the quantities per-stage analyses measure.

    **Representation.**  Every cross-stage coupling in ``P`` factors
    through the ``n``-dimensional stage-entry bottleneck (stage *k* sees
    stage *k−1* only through the exit state ``W_{k−1}·V_{k−1}``), so the
    map is stored *factored* — per-stage sweeps plus exit extractors —
    and :meth:`apply` chains the stages, substituting each stage's
    just-updated exit into the next.  One sweep costs
    ``O(Σ_k (m_k·n)²)`` instead of the ``O((Σ_k m_k·n)²)`` a dense
    stacked matrix would pay; :meth:`dense` materializes the explicit
    ``(Σ m_k·n, Σ m_k·n)`` matrices for validation, and a property test
    asserts both forms are the same affine map.

    Each stage's factored sweep map keeps whatever storage form the
    :func:`choose_sweep_form` heuristic picked for it — a
    :class:`SparseSweep` stage iterates CSR mat-vecs inside the pipeline
    loop exactly as it does standalone — and the stage's
    entry-bottleneck coupling (its exit extractor) is held in the
    *matching* form: ``exit_matrices[k]`` is CSR for a sparse stage
    (its only nonzeros are ``weight·I`` diagonals at the exit blocks,
    density ``≈ 1/m_k``) and dense otherwise.  Either storage is
    numerically the same matrix, so iteration counts and δ-histories
    match across forms sweep for sweep (bit-identical within a form;
    to roundoff across forms, exactly as for single-function sweeps).
    ``exit_plans`` freezes the
    per-stage exit recipes the extractors were built from — what
    :meth:`BlockTransferCache.pipeline` diffs to re-use unchanged
    stages' extractors when a patched stage sweep forces
    recomposition.

    Because each stage substitutes the previous stage's *updated* exit,
    entry-state information propagates through every stage within one
    sweep; the fixed point satisfies, stage by stage, the same equations
    as a sequential per-kernel carry-through (entry of stage ``k+1`` =
    exit of stage ``k``), so the strategies agree at convergence.

    ``exit_matrices[k]`` extracts stage *k*'s exit state from its slice
    of the stacked vector — ``T_exit,k = exit_matrices[k] @ V_k``.
    """

    rpos: tuple[tuple[str, ...], ...]
    signatures: tuple[SweepSignature, ...]
    starts: tuple[int, ...]            # stacked-row offset of each stage
    num_nodes: int
    stage_sweeps: tuple[CompiledSweep, ...]
    #: Per stage, (n, m_k · n), dense or CSR matching the stage's form.
    exit_matrices: tuple[np.ndarray, ...]
    #: The frozen per-stage exit recipes (``None`` for pipelines built
    #: before extractor re-use existed) — what the cache diffs to keep
    #: unchanged stages' extractors across a patched recomposition.
    exit_plans: tuple[tuple[tuple[int, float], ...], ...] | None = None

    @property
    def num_stages(self) -> int:
        return len(self.rpos)

    @property
    def stacked_size(self) -> int:
        return self.starts[-1] + self.stage_sweeps[-1].matrix.shape[0]

    @property
    def stage_forms(self) -> tuple[str, ...]:
        """Each stage's storage form (``"dense"``/``"sparse"``)."""
        return tuple(
            getattr(sweep, "form", "dense") for sweep in self.stage_sweeps
        )

    @property
    def nbytes(self) -> int:
        """Bytes held by the factored representation (either storage)."""
        return sum(sweep.nbytes for sweep in self.stage_sweeps) + sum(
            _matrix_nbytes(m) for m in self.exit_matrices
        )

    def stage_slice(self, k: int) -> slice:
        end = (
            self.starts[k + 1]
            if k + 1 < len(self.starts)
            else self.stacked_size
        )
        return slice(self.starts[k], end)

    def apply(
        self, stacked: np.ndarray, t_entry: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """One pipeline sweep: ``(block-entry states, block-exit states)``.

        Gauss–Seidel across stages: stage *k* reads its entry state from
        stage *k−1*'s exits as updated *this* sweep.
        """
        ins = np.empty_like(stacked)
        outs = np.empty_like(stacked)
        entry = t_entry
        for k, sweep in enumerate(self.stage_sweeps):
            rows = self.stage_slice(k)
            previous = stacked[rows]
            ins[rows] = (
                sweep.in_matrix @ previous
                + sweep.in_entry_matrix @ entry
                + sweep.in_offset
            )
            outs[rows] = (
                sweep.matrix @ previous
                + sweep.entry_matrix @ entry
                + sweep.offset
            )
            entry = self.exit_matrices[k] @ outs[rows]
        return ins, outs

    def stage_exit(self, stacked: np.ndarray, k: int) -> np.ndarray:
        """Stage *k*'s exit state from the stacked exit vector."""
        return self.exit_matrices[k] @ stacked[self.stage_slice(k)]

    def dense(self) -> tuple[np.ndarray, ...]:
        """The explicit stacked affine map, by symbolic substitution.

        Returns ``(P, E, g, P_in, E_in, g_in)`` with ``P`` of shape
        ``(Σ m_k·n, Σ m_k·n)`` such that one :meth:`apply` sweep equals
        ``(P_in·V + E_in·T + g_in, P·V + E·T + g)``.  Validation and
        analysis only — :meth:`apply` never pays the dense product.
        """
        n = self.num_nodes
        total = self.stacked_size
        matrix = np.zeros((total, total))
        entry_matrix = np.zeros((total, n))
        offset = np.zeros(total)
        in_matrix = np.zeros((total, total))
        in_entry_matrix = np.zeros((total, n))
        in_offset = np.zeros(total)
        for k, sweep in enumerate(self.stage_sweeps):
            rows = self.stage_slice(k)
            if k == 0:
                # Stage 0's entry is the pipeline entry state itself.
                t_dep = np.zeros((n, total))
                t_ent = np.eye(n)
                t_off = np.zeros(n)
            else:
                prev = self.stage_slice(k - 1)
                t_dep = self.exit_matrices[k - 1] @ matrix[prev]
                t_ent = self.exit_matrices[k - 1] @ entry_matrix[prev]
                t_off = self.exit_matrices[k - 1] @ offset[prev]
            matrix[rows] = _to_dense(sweep.entry_matrix) @ t_dep
            matrix[rows, rows] += _to_dense(sweep.matrix)
            entry_matrix[rows] = _to_dense(sweep.entry_matrix) @ t_ent
            offset[rows] = sweep.offset + sweep.entry_matrix @ t_off
            in_matrix[rows] = _to_dense(sweep.in_entry_matrix) @ t_dep
            in_matrix[rows, rows] += _to_dense(sweep.in_matrix)
            in_entry_matrix[rows] = _to_dense(sweep.in_entry_matrix) @ t_ent
            in_offset[rows] = sweep.in_offset + sweep.in_entry_matrix @ t_off
        return (
            matrix, entry_matrix, offset,
            in_matrix, in_entry_matrix, in_offset,
        )


def exit_plan_key(plan: ExitPlan) -> tuple[tuple[int, float], ...]:
    """*plan* frozen to the hashable form a compiled pipeline stores."""
    return tuple((int(i), float(w)) for i, w in plan)


def _exit_matrix(plan: ExitPlan, size: int, num_nodes: int, form: str):
    """One stage's exit extractor ``(n, m_k·n)`` in *form* storage.

    The extractor's only nonzeros are ``weight·I`` diagonal blocks at
    the stage's exit blocks, so the CSR form holds ``n·|plan|`` entries
    against the dense form's ``n·m_k·n`` — the entry-bottleneck
    coupling shrinks by the same factor as the stage sweep itself.
    """
    n = num_nodes
    if form == "sparse":
        rows = np.concatenate(
            [np.arange(n) for _ in plan]
        ) if plan else np.zeros(0, dtype=int)
        cols = np.concatenate(
            [block_index * n + np.arange(n) for block_index, _w in plan]
        ) if plan else np.zeros(0, dtype=int)
        data = np.concatenate(
            [np.full(n, weight) for _b, weight in plan]
        ) if plan else np.zeros(0)
        return scipy.sparse.csr_matrix(
            (data, (rows, cols)), shape=(n, size)
        )
    exit_w = np.zeros((n, size))
    for block_index, weight in plan:
        cols = slice(block_index * n, (block_index + 1) * n)
        exit_w[:, cols] += weight * np.eye(n)
    return exit_w


def compile_pipeline_sweep(
    stage_sweeps: list[CompiledSweep],
    exit_plans: list[ExitPlan],
    num_nodes: int,
    exit_matrices: list | None = None,
) -> CompiledPipelineSweep:
    """Chain per-stage sweeps into one pipeline-wide affine fixed point.

    Stage ``k``'s entry state is the exit-plan combination of stage
    ``k−1``'s updated exits — chaining the per-stage sweep maps through
    that substitution makes the whole pipeline one affine map on the
    stacked block-exit vector, exactly as :func:`compile_sweep` chains
    blocks within one function (see
    :class:`CompiledPipelineSweep` for the factored representation).

    Each stage's exit extractor is built in the stage sweep's own
    storage form (CSR for a :class:`SparseSweep` stage).  When
    *exit_matrices* is given (one entry per stage, ``None`` meaning
    "rebuild this one"), non-``None`` entries are adopted verbatim —
    the patched-recomposition path, where only the edited stage's
    extractor could have changed.
    """
    if not stage_sweeps:
        raise DataflowError("cannot compile an empty pipeline sweep")
    if len(stage_sweeps) != len(exit_plans):
        raise DataflowError("one exit plan per pipeline stage required")
    n = num_nodes
    sizes = [sweep.matrix.shape[0] for sweep in stage_sweeps]
    starts = [0]
    for size in sizes[:-1]:
        starts.append(starts[-1] + size)
    if exit_matrices is not None and len(exit_matrices) != len(stage_sweeps):
        raise DataflowError("one exit matrix (or None) per stage required")

    built: list = []
    for k, plan in enumerate(exit_plans):
        reused = exit_matrices[k] if exit_matrices is not None else None
        if reused is not None:
            built.append(reused)
            continue
        built.append(_exit_matrix(
            plan, sizes[k], n, getattr(stage_sweeps[k], "form", "dense")
        ))

    return CompiledPipelineSweep(
        rpos=tuple(sweep.rpo for sweep in stage_sweeps),
        signatures=tuple(sweep.signature for sweep in stage_sweeps),
        starts=tuple(starts),
        num_nodes=n,
        stage_sweeps=tuple(stage_sweeps),
        exit_matrices=tuple(built),
        exit_plans=tuple(exit_plan_key(plan) for plan in exit_plans),
    )


@dataclass
class CacheStats:
    """Hit/compile counters of one :class:`BlockTransferCache`."""

    block_compiles: int = 0
    block_hits: int = 0
    sweep_compiles: int = 0
    sweep_hits: int = 0
    sweep_patches: int = 0
    pipeline_compiles: int = 0
    pipeline_hits: int = 0
    #: Pipelines recomposed with at least one stage's exit extractor
    #: re-used (vs. ``pipeline_compiles``, which rebuilds every stage).
    pipeline_patches: int = 0
    #: Single-instruction edits absorbed as rank-k offset corrections
    #: (no block recompile, no sweep row re-derivation).
    rank_updates: int = 0
    #: Rank updates declined — structural edit, missing cache entry, or
    #: stale sweep — and routed to the ordinary dirty-block path.
    rank_update_fallbacks: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "block_compiles": self.block_compiles,
            "block_hits": self.block_hits,
            "sweep_compiles": self.sweep_compiles,
            "sweep_hits": self.sweep_hits,
            "sweep_patches": self.sweep_patches,
            "pipeline_compiles": self.pipeline_compiles,
            "pipeline_hits": self.pipeline_hits,
            "pipeline_sweep_patches": self.pipeline_patches,
            "rank_updates": self.rank_updates,
            "rank_update_fallbacks": self.rank_update_fallbacks,
        }


class BlockTransferCache:
    """Lazily compiled block transfers for one analysis configuration.

    One cache serves one (model, power model, dt, leakage) combination —
    exactly the quantities a compiled transfer bakes in.  Compiled
    blocks are keyed by the block *object* (a strong reference, so ids
    can never be recycled underneath the cache) and validated against
    the current instruction count; compiled whole-function sweeps are
    keyed by the function object and validated against the CFG
    signature.  Transformed functions are new objects and therefore
    miss — never alias — which is what makes the cache safe to share
    across every analysis of an :class:`~repro.core.context.AnalysisContext`.
    """

    def __init__(
        self,
        model: RFThermalModel,
        power_model,
        dt: float,
        include_leakage: bool = True,
    ) -> None:
        self.model = model
        self.power_model = power_model
        self.dt = dt
        self.include_leakage = include_leakage
        self.stats = CacheStats()
        self._compiled: dict[BasicBlock, CompiledBlock] = {}
        self._sweeps: dict[
            tuple[object, str, str], CompiledSweep | SparseSweep
        ] = {}
        # Block names edited in place since each sweep was built — what
        # lets ``sweep()`` patch rows instead of recompiling, and what
        # forces a rebuild even when the CFG signature is unchanged (an
        # in-place edit that keeps the instruction count keeps the
        # signature too).
        self._sweep_dirty: dict[tuple[object, str, str], set[str]] = {}
        self._pipelines: dict[
            tuple[tuple[object, ...], str], CompiledPipelineSweep
        ] = {}

    def block(self, block: BasicBlock) -> CompiledBlock:
        """The compiled transfer of *block* (compiling on first use)."""
        compiled = self._compiled.get(block)
        if compiled is not None and compiled.num_instructions == len(
            block.instructions
        ):
            self.stats.block_hits += 1
            return compiled
        compiled = compile_block(
            block,
            self.model,
            self.power_model,
            self.dt,
            include_leakage=self.include_leakage,
        )
        self._compiled[block] = compiled
        self.stats.block_compiles += 1
        return compiled

    def compile_function(self, function) -> dict[str, CompiledBlock]:
        """Compiled transfers for every block of *function*, by name."""
        return {name: self.block(block) for name, block in function.blocks.items()}

    def sweep(
        self,
        function,
        rpo: list[str],
        plan: MergePlan,
        merge: str,
        compiled: dict[str, CompiledBlock],
        form: str = "dense",
    ) -> CompiledSweep | SparseSweep:
        """The composed Gauss–Seidel sweep of *function* under *merge*.

        Cached per (function object, merge mode, storage form) and
        validated against the CFG signature plus the per-block dirty set
        maintained by :meth:`invalidate` — an in-place edit that keeps
        the instruction count keeps the signature, so the dirty set is
        the only staleness signal for it.  A dirty sweep whose rpo is
        intact is *patched* (:func:`patch_sweep` re-derives only the
        touched rows) rather than recompiled.
        """
        signature = sweep_signature(function, rpo)
        key = (function, merge, form)
        cached = self._sweeps.get(key)
        dirty = self._sweep_dirty.get(key)
        if cached is not None and cached.signature == signature and not dirty:
            self.stats.sweep_hits += 1
            return cached
        if (
            cached is not None
            and dirty
            and cached.plan is not None
            and cached.rpo == tuple(rpo)
            and all(
                cached.signature[i] == signature[i]
                for i, name in enumerate(rpo)
                if name not in dirty
            )
        ):
            built = patch_sweep(
                cached, compiled, plan, rpo,
                self.model.grid.num_nodes, signature, dirty,
            )
            self._sweeps[key] = built
            self._sweep_dirty.pop(key, None)
            self.stats.sweep_patches += 1
            return built
        built = compile_sweep(
            compiled, plan, rpo, self.model.grid.num_nodes, signature
        )
        if form == "sparse":
            built = sparsify_sweep(built)
        self._sweeps[key] = built
        self._sweep_dirty.pop(key, None)
        self.stats.sweep_compiles += 1
        return built

    def pipeline(
        self,
        functions: list,
        stage_sweeps: list[CompiledSweep | SparseSweep],
        exit_plans: list[ExitPlan],
        merge: str,
    ) -> CompiledPipelineSweep:
        """The stacked pipeline sweep of *functions*, compiled once.

        Cached per (tuple of function objects, merge mode) and validated
        by stage-sweep object *identity* — a pipeline of repeated
        kernels (same function objects) compiles once and re-analyzes
        from cache, while a patched or recompiled stage sweep (a new
        object) forces the cheap recomposition automatically.  A
        recomposition re-uses the cached exit extractor of every stage
        whose frozen exit plan, stacked size, and storage form are
        unchanged (the usual case: an in-place edit replaces one stage's
        sweep object but not its exit recipe), counted as a
        ``pipeline_patches`` rather than a full ``pipeline_compiles``.
        """
        key = (tuple(functions), merge)
        cached = self._pipelines.get(key)
        if (
            cached is not None
            and len(cached.stage_sweeps) == len(stage_sweeps)
            and all(
                a is b for a, b in zip(cached.stage_sweeps, stage_sweeps)
            )
        ):
            self.stats.pipeline_hits += 1
            return cached
        reuse = None
        if (
            cached is not None
            and cached.exit_plans is not None
            and len(cached.stage_sweeps) == len(stage_sweeps)
        ):
            reuse = []
            for k, sweep in enumerate(stage_sweeps):
                old = cached.exit_matrices[k]
                same_plan = cached.exit_plans[k] == exit_plan_key(
                    exit_plans[k]
                )
                same_size = old.shape[1] == sweep.matrix.shape[0]
                same_form = scipy.sparse.issparse(old) == (
                    getattr(sweep, "form", "dense") == "sparse"
                )
                reuse.append(
                    old if same_plan and same_size and same_form else None
                )
            if not any(m is not None for m in reuse):
                reuse = None
        built = compile_pipeline_sweep(
            stage_sweeps, exit_plans, self.model.grid.num_nodes,
            exit_matrices=reuse,
        )
        self._pipelines[key] = built
        if reuse is not None:
            self.stats.pipeline_patches += 1
        else:
            self.stats.pipeline_compiles += 1
        return built

    def invalidate(self, function=None, blocks=None) -> None:
        """Drop compiled artifacts (of *blocks*, *function*, or everything).

        Call after transforming a function *in place*; functions rebuilt
        as new objects never alias and need no invalidation.  With
        *blocks* (an iterable of block names of *function*), only those
        blocks' compiled transfers are dropped and the function's cached
        sweeps are marked dirty per block — the next :meth:`sweep` call
        patches the touched rows instead of recompiling the whole map.
        """
        if function is None:
            if blocks is not None:
                raise DataflowError(
                    "invalidate(blocks=...) requires a function"
                )
            self._compiled.clear()
            self._sweeps.clear()
            self._sweep_dirty.clear()
            self._pipelines.clear()
            return
        if blocks is not None:
            names = set(blocks)
            unknown = names - set(function.blocks)
            if unknown:
                raise DataflowError(
                    f"invalidate: unknown blocks {sorted(unknown)}"
                )
            for name in names:
                self._compiled.pop(function.blocks[name], None)
            for key in self._sweeps:
                if key[0] is function:
                    self._sweep_dirty.setdefault(key, set()).update(names)
            return
        for block in function.blocks.values():
            self._compiled.pop(block, None)
        for key in [k for k in self._sweeps if k[0] is function]:
            del self._sweeps[key]
            self._sweep_dirty.pop(key, None)
        for key in [
            k for k in self._pipelines
            if any(stage is function for stage in k[0])
        ]:
            del self._pipelines[key]

    def update_instruction(
        self, function, block_name: str, index: int
    ) -> np.ndarray | None:
        """Absorb an edit of one instruction (already made in place).

        The factored-update fast path: the edited block's compiled
        transfer is corrected by :func:`rank_update_block` and every
        cached sweep of *function* containing the block gets its offset
        vectors shifted by :func:`patch_sweep_offsets` — no recompile,
        no row re-derivation, no dirty marks.  All-or-nothing: either
        every cached artifact is updated and the block's offset delta
        ``Δb_B`` is returned, or nothing is touched and ``None`` tells
        the caller to route the edit through the ordinary
        ``invalidate(function, blocks=[...])`` path (counted as a
        ``rank_update_fallbacks``) — because the edit was structural,
        the block was never compiled here, or a cached sweep is dirty
        or stale.
        """
        block = function.blocks.get(block_name)
        if block is None:
            raise DataflowError(
                f"update_instruction: unknown block {block_name!r}"
            )
        old = self._compiled.get(block)
        if old is None:
            self.stats.rank_update_fallbacks += 1
            return None
        updated = rank_update_block(
            old, block, index, self.model, self.power_model, self.dt,
            include_leakage=self.include_leakage,
        )
        if updated is None:
            self.stats.rank_update_fallbacks += 1
            return None
        new_block, delta = updated

        new_sweeps: dict[tuple[object, str, str], object] = {}
        for key, sweep in self._sweeps.items():
            if key[0] is not function or block_name not in sweep.rpo:
                continue
            if self._sweep_dirty.get(key):
                self.stats.rank_update_fallbacks += 1
                return None
            try:
                signature = sweep_signature(function, list(sweep.rpo))
            except (KeyError, DataflowError):
                self.stats.rank_update_fallbacks += 1
                return None
            if sweep.signature != signature:
                self.stats.rank_update_fallbacks += 1
                return None
            compiled: dict[str, CompiledBlock] = {}
            for name in sweep.rpo:
                entry = self._compiled.get(function.blocks[name])
                if entry is None or entry.num_instructions != len(
                    function.blocks[name].instructions
                ):
                    self.stats.rank_update_fallbacks += 1
                    return None
                compiled[name] = entry
            compiled[block_name] = new_block
            patched = patch_sweep_offsets(sweep, compiled, {block_name: delta})
            if patched is None:
                self.stats.rank_update_fallbacks += 1
                return None
            new_sweeps[key] = patched

        # Commit only once every artifact patched cleanly.  Cached
        # pipelines recompose themselves: their stage-sweep identity
        # check misses against the new objects and the recomposition
        # re-uses every unchanged exit extractor.
        self._compiled[block] = new_block
        for key, patched in new_sweeps.items():
            self._sweeps[key] = patched
        self.stats.rank_updates += 1
        return delta

    def nbytes(self) -> int:
        """Bytes held by cached transfers, sweeps, and pipelines.

        Stage sweeps shared between the per-function cache and a cached
        pipeline are counted once (dedup by object identity).
        """
        total = 0
        seen: set[int] = set()

        def add(obj, amount: int) -> None:
            nonlocal total
            if id(obj) in seen:
                return
            seen.add(id(obj))
            total += amount

        for compiled in self._compiled.values():
            add(compiled, compiled.transfer.nbytes)
        for sweep in self._sweeps.values():
            add(sweep, sweep.nbytes)
        for pipe in self._pipelines.values():
            for sweep in pipe.stage_sweeps:
                add(sweep, sweep.nbytes)
            add(pipe, sum(_matrix_nbytes(m) for m in pipe.exit_matrices))
        return total

    def pipeline_nbytes(self) -> int:
        """Bytes held by cached pipelines (stage sweeps + extractors)."""
        return sum(pipe.nbytes for pipe in self._pipelines.values())

    def __len__(self) -> int:
        return len(self._compiled)
