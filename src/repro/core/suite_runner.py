"""Whole-suite thermal analysis through one shared context.

The paper analyzes one kernel per invocation; the batched analysis
runtime turns that into a throughput service: :func:`run_suite`
allocates and analyzes every kernel of the workload suite — plus,
optionally, the E5 pressure-scenario and seeded random-loop generators
— through a **single shared** :class:`~repro.core.context.AnalysisContext`,
so the thermal model is built and factorized once, step operators are
exponentiated once, and the per-kernel cost is the sweep itself.

The report is machine-readable (``SuiteReport.to_dict()`` /
``write_json()``): one record per kernel with convergence, engine,
thermal headline numbers and wall time, plus context-level totals
(block compiles vs. cache hits) that quantify the amortization.  The
CLI ``suite`` subcommand writes it as ``BENCH_suite.json``; CI archives
those files so the performance trajectory accumulates per commit.

Scaling out: ``processes > 1`` fans the suite across worker processes
(one shared context *per worker* — contexts hold process-local solver
state and do not pickle).  The default, ``processes=1``, runs the whole
suite in-process through one context.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from dataclasses import fields as dataclass_fields

from ..arch import MACHINE_PRESETS
from ..obs.metrics import default_registry
from ..regalloc.linearscan import allocate_linear_scan
from ..regalloc.policies import policy_by_name
from ..workloads import (
    full_suite,
    load,
    pressure_sweep,
    random_loop_program,
    small_suite,
)
from .context import AnalysisContext

_METRICS = default_registry()

#: Report schema identifier (bump on incompatible changes).
SCHEMA = "repro.suite/1"

_MACHINES = MACHINE_PRESETS


@dataclass(frozen=True)
class SuiteItem:
    """One analyzed kernel of a suite run."""

    name: str
    instructions: int
    blocks: int
    engine: str
    sweep: str
    converged: bool
    iterations: int
    wall_time_seconds: float
    peak_kelvin: float
    peak_delta_kelvin: float
    gradient_kelvin: float


@dataclass
class SuiteReport:
    """Machine-readable result of one suite run."""

    machine: str
    model: str                    # "rf" or "chip"
    delta: float
    merge: str
    engine: str
    policy: str
    processes: int
    items: list[SuiteItem] = field(default_factory=list)
    wall_time_seconds: float = 0.0
    context_stats: dict[str, int] = field(default_factory=dict)
    #: Requested sweep strategy ("auto"/"batched"/"blockwise"/"sparse");
    #: per-item ``sweep`` records what each kernel actually used.
    sweep: str = "auto"

    @property
    def all_converged(self) -> bool:
        return all(item.converged for item in self.items)

    def totals(self) -> dict[str, float]:
        return {
            "kernels": len(self.items),
            "instructions": sum(i.instructions for i in self.items),
            "analysis_seconds": sum(i.wall_time_seconds for i in self.items),
            "wall_time_seconds": self.wall_time_seconds,
            "converged": sum(1 for i in self.items if i.converged),
        }

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA,
            "machine": self.machine,
            "model": self.model,
            "delta": self.delta,
            "merge": self.merge,
            "engine": self.engine,
            "sweep": self.sweep,
            "policy": self.policy,
            "processes": self.processes,
            "totals": self.totals(),
            "context_stats": dict(self.context_stats),
            "results": [asdict(item) for item in self.items],
        }

    def write_json(self, path) -> None:
        """Write the report (e.g. as ``BENCH_suite.json``)."""
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def from_dict(cls, data: dict) -> "SuiteReport":
        """Revive a report from its ``to_dict`` form.

        Inverse of :meth:`to_dict` up to derived fields (``schema``,
        ``totals`` are recomputed): ``SuiteReport.from_dict(r.to_dict())
        == r`` — what lets persisted ``BENCH_suite.json`` files be
        reloaded for trending across commits.
        """
        item_fields = {f.name for f in dataclass_fields(SuiteItem)}
        items = [
            SuiteItem(**{k: v for k, v in record.items() if k in item_fields})
            for record in data.get("results", [])
        ]
        return cls(
            machine=data["machine"],
            model=data["model"],
            delta=data["delta"],
            merge=data["merge"],
            engine=data["engine"],
            sweep=data.get("sweep", "auto"),
            policy=data["policy"],
            processes=data["processes"],
            items=items,
            wall_time_seconds=data.get("wall_time_seconds",
                                       data.get("totals", {})
                                       .get("wall_time_seconds", 0.0)),
            context_stats=dict(data.get("context_stats", {})),
        )


def _workload_specs(
    names: list[str] | None,
    quick: bool,
    include_pressure: bool,
    random_count: int,
    ir_texts: list[str] | None = None,
) -> list[tuple[str, object]]:
    """Picklable build-recipes for every workload of the run.

    ``ir_texts`` entries are serialized functions appended after the
    named/generated scenarios — and when they are the *only* input
    (a sharding backend's generated-kernel shard) the full-suite
    fallback stays off.
    """
    specs: list[tuple[str, object]] = []
    if names:
        specs += [("kernel", name) for name in names]
    elif ir_texts:
        pass  # IR-only run: no named fallback.
    elif quick:
        specs += [("small_suite", i) for i in range(len(small_suite()))]
    else:
        specs += [("kernel", wl.name) for wl in full_suite()]
    if include_pressure:
        specs += [("pressure", i) for i in range(len(pressure_sweep()))]
    if random_count > 0:
        specs += [("random", seed) for seed in range(random_count)]
    if ir_texts:
        specs += [("ir", text) for text in ir_texts]
    return specs


def _build_workload(spec: tuple[str, object]):
    kind, arg = spec
    if kind == "kernel":
        return load(arg)
    if kind == "small_suite":
        return small_suite()[arg]
    if kind == "pressure":
        return pressure_sweep()[arg]
    if kind == "random":
        return random_loop_program(seed=arg)
    if kind == "ir":
        from ..ir.parser import parse_function
        from ..workloads.kernels import Workload

        function = parse_function(arg)
        return Workload(
            name=function.name,
            description="suite stage from ir_text",
            function=function,
            expected_return=None,
        )
    raise ValueError(f"unknown workload spec {spec!r}")


def analyze_workload(
    workload,
    context: AnalysisContext,
    delta: float,
    merge: str,
    engine: str,
    policy: str,
    sweep: str = "auto",
) -> SuiteItem:
    """Allocate and analyze one workload through *context*."""
    allocated = allocate_linear_scan(
        workload.function, context.machine, policy_by_name(policy)
    ).function
    result = context.analyze(
        allocated, delta=delta, merge=merge, engine=engine, sweep=sweep
    )
    peak = result.peak_state()
    ambient = context.model.params.ambient
    return SuiteItem(
        name=workload.name,
        instructions=allocated.instruction_count(),
        blocks=len(allocated.blocks),
        engine=result.engine,
        sweep=result.sweep,
        converged=result.converged,
        iterations=result.iterations,
        wall_time_seconds=result.wall_time_seconds,
        peak_kelvin=peak.peak,
        peak_delta_kelvin=peak.peak - ambient,
        gradient_kelvin=peak.max_gradient(),
    )


# ----------------------------------------------------------------------
# Multiprocessing support: one context per worker process.
# ----------------------------------------------------------------------
_WORKER_CTX: AnalysisContext | None = None
_WORKER_ARGS: dict | None = None


def _init_worker(machine_name: str, chip: bool, delta: float, merge: str,
                 engine: str, policy: str, sweep: str = "auto") -> None:
    global _WORKER_CTX, _WORKER_ARGS
    machine = _MACHINES[machine_name]()
    _WORKER_CTX = (
        AnalysisContext.for_chip(machine) if chip else AnalysisContext(machine)
    )
    _WORKER_ARGS = {
        "delta": delta, "merge": merge, "engine": engine, "policy": policy,
        "sweep": sweep,
    }


def _run_spec(spec: tuple[str, object]) -> tuple[int, SuiteItem, dict]:
    """Analyze one spec in a worker; returns ``(pid, item, stats)``.

    The stats snapshot rides along with every item so the parent can
    recover each worker context's final counters: per worker (pid) the
    element-wise maximum over its snapshots *is* the snapshot taken at
    that worker's last completed item — counters only grow — and summing
    those per-worker totals reconstructs the whole run's amortization
    numbers (previously dropped: multi-process reports shipped
    ``context_stats = {}``).
    """
    import os

    assert _WORKER_CTX is not None and _WORKER_ARGS is not None
    item = analyze_workload(_build_workload(spec), _WORKER_CTX, **_WORKER_ARGS)
    return os.getpid(), item, dict(_WORKER_CTX.stats)


def collapse_worker_stats(snapshots) -> dict:
    """Per-worker final counters from cumulative stats snapshots.

    *snapshots* yields ``(worker_key, stats_dict)`` pairs, possibly
    several per worker.  Context counters only grow, so per worker the
    element-wise **maximum** over its snapshots *is* the snapshot taken
    at that worker's last completed unit — the one invariant every
    multi-worker merge (the ``processes>1`` pool here, the sharding
    backends in :mod:`repro.service.backends`) relies on.  Returns
    ``{worker_key: final_stats}``.
    """
    per_worker: dict = {}
    for key, stats in snapshots:
        acc = per_worker.setdefault(key, {})
        for name, value in stats.items():
            acc[name] = max(acc.get(name, 0), value)
    return per_worker


def sum_worker_stats(per_worker: dict) -> dict:
    """Sum :func:`collapse_worker_stats` output into run-wide totals."""
    totals: dict = {}
    for stats in per_worker.values():
        for name, value in stats.items():
            totals[name] = totals.get(name, 0) + value
    return totals


def _merge_worker_stats(records: list[tuple[int, SuiteItem, dict]]) -> dict:
    """Sum each worker's final context stats across workers."""
    return sum_worker_stats(collapse_worker_stats(
        (pid, stats) for pid, _item, stats in records
    ))


def run_suite(
    names: list[str] | None = None,
    machine_name: str = "rf64",
    *,
    context: AnalysisContext | None = None,
    chip: bool = False,
    delta: float = 0.01,
    merge: str = "freq",
    engine: str = "auto",
    sweep: str = "auto",
    policy: str = "first-free",
    quick: bool = False,
    include_pressure: bool = False,
    random_count: int = 0,
    ir_texts: list[str] | None = None,
    processes: int = 1,
    progress=None,
) -> SuiteReport:
    """Analyze the workload suite through one shared context.

    Parameters
    ----------
    names:
        Kernel subset (default: the full 14-kernel suite, or the
        five-kernel small suite with ``quick=True``).
    context:
        Use this shared context instead of building one (single-process
        only).  ``chip=True`` builds a die-level context.
    include_pressure / random_count:
        Also run the E5 pressure-sweep scenarios and/or *N* seeded
        random-loop scenarios through the same context.
    ir_texts:
        Extra kernels as textual IR, one function each, appended after
        the named/generated scenarios — how sharding backends hand
        generated kernels to workers that cannot rebuild them by name.
    processes:
        Fan out across worker processes, one shared context per worker
        (the default 1 keeps everything in one process through a single
        context).
    progress:
        Optional callback fed one ``{"event": "kernel", "name": ...,
        "index": i, "total": k, "converged": ...}`` dict per completed
        kernel — what a job handle's event stream shows for suite runs.
    """
    if machine_name not in _MACHINES:
        raise ValueError(
            f"unknown machine {machine_name!r}; available: {sorted(_MACHINES)}"
        )
    if context is not None and processes > 1:
        raise ValueError(
            "a shared context cannot cross process boundaries: pass either "
            "context= (single process) or processes>1, not both"
        )
    specs = _workload_specs(
        names, quick, include_pressure, random_count, ir_texts
    )
    started = time.perf_counter()

    def report_progress(index: int, item: SuiteItem) -> None:
        if _METRICS.enabled:
            _METRICS.inc("suite.kernels")
            if not item.converged:
                _METRICS.inc("suite.kernels.unconverged")
        if progress is not None:
            progress({"event": "kernel", "name": item.name, "index": index,
                      "total": len(specs), "converged": item.converged})

    if processes > 1:
        import multiprocessing

        with multiprocessing.Pool(
            processes,
            initializer=_init_worker,
            initargs=(machine_name, chip, delta, merge, engine, policy,
                      sweep),
        ) as pool:
            records = []
            # imap keeps spec order while delivering each record as it
            # lands, so progress events fire per completed kernel.
            for index, record in enumerate(pool.imap(_run_spec, specs)):
                records.append(record)
                report_progress(index, record[1])
        items = [item for _pid, item, _stats in records]
        # Per-worker context stats, summed — so multi-process reports
        # carry real amortization totals instead of an empty dict.
        context_stats = _merge_worker_stats(records)
    else:
        if context is None:
            machine = _MACHINES[machine_name]()
            context = (
                AnalysisContext.for_chip(machine)
                if chip
                else AnalysisContext(machine)
            )
        items = []
        for index, spec in enumerate(specs):
            item = analyze_workload(
                _build_workload(spec), context, delta, merge, engine, policy,
                sweep=sweep,
            )
            items.append(item)
            report_progress(index, item)
        context_stats = context.stats

    return SuiteReport(
        machine=machine_name,
        model="chip" if chip else "rf",
        delta=delta,
        merge=merge,
        engine=engine,
        sweep=sweep,
        policy=policy,
        processes=processes,
        items=items,
        wall_time_seconds=time.perf_counter() - started,
        context_stats=context_stats,
    )
