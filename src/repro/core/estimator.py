"""Per-instruction thermal transfer: power estimation + one RC step.

This is the analytical link the paper's §4 describes: *"the technology
coefficients of logic activity and peak power found in the thermal
models ... are linked in an analytical way to the high-level information
of instruction execution and variables assignment found in the early
compilation stages."*

Concretely, an instruction's register reads/writes deposit access energy
on the thermal nodes of the registers involved; where a register *is*
depends on the placement model:

* after register assignment the placement is exact (one-hot), giving the
  precise analysis the paper says "makes the most sense";
* before allocation, placement is a probability distribution induced by
  the assignment policy (see :mod:`repro.core.predictive`), giving the
  "more ambitious" early-stage analysis.

Bitwidth-aware energy scaling (§3's pointer to bitwidth analysis) is
supported when the energy model enables it.
"""

from __future__ import annotations

import numpy as np

from ..arch.machine import MachineDescription
from ..dataflow.bitwidth import BitwidthInfo
from ..errors import ThermalModelError
from ..ir.instructions import Instruction
from ..ir.values import PhysicalRegister, Value
from ..thermal.rcmodel import RFThermalModel
from ..thermal.state import ThermalState


class PlacementModel:
    """Maps a register value to a distribution over physical registers."""

    #: Short name for reports.
    name: str = "abstract"

    def distribution(self, reg: Value) -> np.ndarray:
        """Probability vector over physical register indices for *reg*.

        May return an all-zero vector for values that never occupy the
        register file (e.g. variables predicted to be spilled).
        """
        raise NotImplementedError


class ExactPlacement(PlacementModel):
    """Post-assignment placement: every register is physical and one-hot."""

    name = "exact"

    def __init__(self, num_registers: int) -> None:
        self.num_registers = num_registers
        self._cache: dict[int, np.ndarray] = {}

    def distribution(self, reg: Value) -> np.ndarray:
        if not isinstance(reg, PhysicalRegister):
            raise ThermalModelError(
                f"exact placement needs physical registers, got {reg} "
                "(run register allocation first, or use a predictive placement)"
            )
        if not 0 <= reg.index < self.num_registers:
            raise ThermalModelError(f"register index {reg.index} outside the RF")
        vec = self._cache.get(reg.index)
        if vec is None:
            vec = np.zeros(self.num_registers)
            vec[reg.index] = 1.0
            self._cache[reg.index] = vec
        return vec


class InstructionPowerModel:
    """Computes the node power vector an instruction injects.

    Dynamic access power is cached per instruction (it depends only on
    the instruction and the placement, both fixed during an analysis
    run); leakage is added per evaluation because it may depend on the
    current temperature.  The cache is keyed by the instruction object
    itself (identity hash) — not ``id(inst)``, whose values can be
    reused once an instruction is garbage-collected in a long-lived
    session — so entries can never alias across instructions.
    """

    def __init__(
        self,
        machine: MachineDescription,
        model: RFThermalModel,
        placement: PlacementModel,
        bitwidths: BitwidthInfo | None = None,
    ) -> None:
        self.machine = machine
        self.model = model
        self.placement = placement
        self.bitwidths = bitwidths
        self._dynamic_cache: dict[Instruction, np.ndarray] = {}

    def _access_width(self, reg: Value) -> int:
        if self.bitwidths is None:
            return 32
        return self.bitwidths.width(reg)

    def dynamic_power(self, inst: Instruction) -> np.ndarray:
        """Node power (W) from this instruction's register accesses."""
        cached = self._dynamic_cache.get(inst)
        if cached is not None:
            return cached
        energy = self.machine.energy
        num_regs = self.machine.geometry.num_registers
        reg_power = np.zeros(num_regs)
        for reg in inst.uses():
            reg_power += self.placement.distribution(reg) * energy.access_power(
                is_write=False, bitwidth=self._access_width(reg)
            )
        for reg in inst.defs():
            reg_power += self.placement.distribution(reg) * energy.access_power(
                is_write=True, bitwidth=self._access_width(reg)
            )
        node_power = self.model.grid.mapping @ reg_power
        self._dynamic_cache[inst] = node_power
        return node_power

    def total_power(
        self, inst: Instruction, state: ThermalState, include_leakage: bool = True
    ) -> np.ndarray:
        """Dynamic + (optionally temperature-dependent) leakage power."""
        power = self.dynamic_power(inst)
        if include_leakage:
            feedback = self.machine.energy.leakage_temp_coeff != 0.0
            power = power + self.model.leakage_vector(state if feedback else None)
        return power

    @property
    def has_leakage_feedback(self) -> bool:
        """True when leakage depends on temperature (non-linear transfer)."""
        return self.machine.energy.leakage_temp_coeff != 0.0
