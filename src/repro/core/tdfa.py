"""Thermal data flow analysis — the paper's core contribution (Fig. 2).

The algorithm, verbatim from the pseudocode::

    Do
      Boolean: stop ← True
      For each basic block B
        For each instruction I ∈ B, taken in forward order
          Estimate thermal state after I
          If the change in I's thermal state exceeds δ
            stop ← False
          EndIf
        EndFor
      EndFor
    While( stop = False )
    Output the thermal state of each instruction

Our realization fills in the parts the two-page paper leaves open:

* **Transfer function** — one cycle of the RC network under the
  instruction's access power (:mod:`repro.core.estimator`), exact via
  the precomputed matrix exponential.
* **CFG joins** — the paper's pseudocode iterates blocks but does not
  say how predecessor states combine.  We provide three merges:
  ``max`` (element-wise maximum — conservative for hot-spot detection),
  ``mean`` (plain average) and ``freq`` (static-profile weighted
  average, the default).  Experiment E8 ablates the choice.
* **Convergence** — the paper: *"there does not appear to be a way to
  guarantee convergence; however, if the analysis does not converge
  after a reasonable number of iterations ... the thermal state of the
  program may be too difficult to predict at compile time."*  With the
  purely linear model the per-sweep map is an affine contraction, so
  convergence is actually guaranteed (a property test asserts it); with
  temperature-dependent leakage the transfer is non-linear and genuinely
  diverges under runaway coefficients.  ``TDFAResult.converged`` and the
  δ-history expose both behaviours; by default non-convergence is
  reported, not raised.

Engines
-------
Two interchangeable fixed-point engines implement the sweep:

* ``"compiled"`` (default for linear models) — every basic block's
  per-instruction affine steps are pre-composed into one ``(A_B, b_B)``
  map (:mod:`repro.core.transfer`); the sweep iterates **block-level**
  maps only and the per-instruction ``after`` states are materialized in
  a single reconstruction sweep after convergence.  Exact for the linear
  model, and typically an order of magnitude faster on loop kernels.
* ``"stepped"`` — the literal Fig. 2 loop, one RC step per instruction
  per sweep.  Required whenever leakage feeds back on temperature (the
  per-instruction transfer is then state-dependent, hence not affine).

``TDFAConfig.engine`` selects one; ``"auto"`` picks ``compiled`` exactly
when the power model has no leakage feedback.  Both engines share merge
semantics and δ-convergence, and agree to within the analysis δ — an
equivalence test asserts it across the workload suite.

The compiled engine additionally has two sweep strategies
(``TDFAConfig.sweep``): ``"batched"`` (default under the affine
``freq``/``mean`` merges) runs one whole Gauss–Seidel sweep as a single
stacked ``(m·n, m·n)`` mat-vec over the concatenated block-exit states
(:class:`~repro.core.transfer.CompiledSweep`), while ``"blockwise"``
is the per-block Python loop (and the only strategy for the non-affine
``max`` merge).  Both visit the same fixed point with the same
Gauss–Seidel iteration structure.

Analyses *retain* their compiled transfers: an engine-built
:class:`~repro.core.transfer.BlockTransferCache` is kept on the
analysis object, so repeated ``run()`` calls — and every analysis
sharing one :class:`~repro.core.context.AnalysisContext` — pay block
compilation once, not once per run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..arch.machine import MachineDescription
from ..dataflow.freq import StaticProfile, static_profile
from ..errors import ConvergenceError, DataflowError
from ..ir.cfg import reverse_postorder
from ..ir.function import Function
from ..obs.metrics import default_registry
from ..thermal.rcmodel import RFThermalModel
from ..thermal.state import ThermalState
from .estimator import ExactPlacement, InstructionPowerModel, PlacementModel
from .transfer import BlockTransferCache, affine_merge_plan, choose_sweep_form

#: The process-wide metrics registry (a singleton object — enablement
#: is a flag flip, so binding it at import time is safe).  Disabled by
#: default: the per-sweep instrumentation below costs one boolean check.
_METRICS = default_registry()

#: Valid CFG merge modes.
MERGE_MODES = ("max", "mean", "freq")

#: Valid fixed-point engines ("auto" resolves per power model).
ENGINE_MODES = ("auto", "compiled", "stepped")

#: Valid compiled-engine sweep strategies ("auto" resolves per merge
#: and, for the batched path, per measured block density).
SWEEP_MODES = ("auto", "batched", "blockwise", "sparse")

#: Valid convergence stop rules.
STOP_MODES = ("change", "bound")


def sweep_event(progress, iteration: int, delta: float) -> None:
    """Emit one per-sweep progress event (no-op without a callback).

    The single emit site for every fixed-point loop — batched,
    blockwise, stepped, and the stacked pipeline sweep — so the event
    shape (``{"event": "sweep", "iteration": ..., "delta": ...}``)
    cannot drift between engines.  ``delta`` is the sweep's measured
    change in Kelvin; the first sweep has nothing to diff against and
    reports ``inf``.
    """
    if _METRICS.enabled:
        # One site instruments every engine, exactly like the event.
        _METRICS.inc("tdfa.sweeps")
        _METRICS.gauge("tdfa.last_delta_kelvin", float(delta))
    if progress is not None:
        progress({"event": "sweep", "iteration": iteration,
                  "delta": float(delta)})


def converged_by(
    stop: str, delta: float, sweep_delta: float, prev_delta: float
) -> bool:
    """Whether a sweep's measured change satisfies the stop rule.

    ``"change"`` is the paper's literal criterion: stop when no state
    changed by more than δ between sweeps.  For a contraction with
    factor ρ that leaves the result up to ``δ·ρ/(1−ρ)`` away from the
    true fixed point — harmless for one kernel, but different iteration
    *paths* (a stacked pipeline sweep vs. a per-kernel carry-through)
    then land on different sides of the fixed point and disagree by far
    more than δ.  ``"bound"`` closes that gap: it estimates ρ from the
    last two sweep deltas (linear convergence makes the ratio stabilize)
    and stops only when the implied distance to the fixed point,
    ``sweep_delta·ρ̂/(1−ρ̂)``, is within δ — which is what lets the
    pipeline strategies prove 2δ agreement against the closed-form
    composed summaries.
    """
    if stop == "bound":
        if sweep_delta <= delta * 1e-6:
            # Roundoff floor: a sweep that changed nothing beyond
            # solver noise started at the fixed point (warm starts from
            # an exact linear solve land here on their first measured
            # sweep, where no ρ estimate exists yet).
            return True
        if not (np.isfinite(sweep_delta) and np.isfinite(prev_delta)):
            return False
        rho = sweep_delta / prev_delta
        if rho >= 1.0:
            return False
        return sweep_delta * rho / (1.0 - rho) <= delta
    return sweep_delta <= delta


@dataclass(frozen=True)
class TDFAConfig:
    """User-tunable parameters of the analysis.

    ``delta`` is the paper's δ (Kelvin): the analysis stops when no
    instruction's thermal state changed by more than δ between sweeps.
    ``max_iterations`` is the paper's "reasonable number of iterations";
    exceeding it flags non-convergence.  ``merge`` selects the CFG join.
    ``engine`` selects the fixed-point engine: ``"compiled"`` sweeps
    pre-composed block-level affine maps (linear models only),
    ``"stepped"`` is the literal per-instruction Fig. 2 loop, and
    ``"auto"`` (default) picks ``compiled`` whenever the power model has
    no leakage-temperature feedback.  ``sweep`` selects the compiled
    engine's sweep strategy: ``"batched"`` runs one whole sweep as a
    single stacked mat-vec (affine merges only), ``"sparse"`` is the
    same stacked map held CSR (same fixed point, iteration counts and
    δ-histories — only the storage form differs), ``"blockwise"`` is
    the per-block loop, and ``"auto"`` (default) picks the stacked path
    exactly when the merge is affine (``freq``/``mean``), upgrading to
    CSR storage when the composed map is big and sparse enough to win
    (:func:`~repro.core.transfer.choose_sweep_form`).
    ``warm_start`` lets a stacked run start its fixed point from the
    owning context's previously converged solution for the same
    (function, merge, leakage) instead of from ambient — the
    incremental re-analysis path after ``invalidate(function,
    blocks=...)`` or a factored
    :meth:`~repro.core.context.AnalysisContext.update_instruction`
    edit.  Stacked *pipeline* runs honour the same flag one level up,
    restarting from the context's stored pipeline-wide fixed point.
    Off by default so repeated runs stay bitwise reproducible.
    ``stop`` selects the convergence rule: ``"change"`` (default) is the
    paper's literal per-sweep-change test; ``"bound"`` additionally
    requires the contraction-estimated distance to the fixed point to be
    within δ (see :func:`converged_by`) — the pipeline strategies use it
    so different iteration paths land on the same answer.
    ``raise_on_divergence`` switches non-convergence from a reported
    outcome to a :class:`ConvergenceError`.
    """

    delta: float = 0.01
    max_iterations: int = 2000
    merge: str = "freq"
    include_leakage: bool = True
    raise_on_divergence: bool = False
    engine: str = "auto"
    sweep: str = "auto"
    stop: str = "change"
    warm_start: bool = False

    def __post_init__(self) -> None:
        if self.delta <= 0:
            raise DataflowError("delta must be positive")
        if self.max_iterations < 1:
            raise DataflowError("max_iterations must be at least 1")
        if self.merge not in MERGE_MODES:
            raise DataflowError(f"merge must be one of {MERGE_MODES}")
        if self.engine not in ENGINE_MODES:
            raise DataflowError(f"engine must be one of {ENGINE_MODES}")
        if self.sweep not in SWEEP_MODES:
            raise DataflowError(f"sweep must be one of {SWEEP_MODES}")
        if self.stop not in STOP_MODES:
            raise DataflowError(f"stop must be one of {STOP_MODES}")
        if self.sweep in ("batched", "sparse") and self.merge == "max":
            raise DataflowError(
                f"sweep={self.sweep!r} requires an affine merge "
                "('freq'/'mean'); max joins are not affine — use "
                "sweep='blockwise' (or 'auto')"
            )


@dataclass
class TDFAResult:
    """Output of the analysis: a thermal state *after every instruction*.

    Exactly what Fig. 2 outputs, plus convergence diagnostics and the
    block-boundary states analyses downstream (critical variables, rules,
    optimization passes) consume.
    """

    function: Function
    config: TDFAConfig
    converged: bool
    iterations: int
    delta_history: list[float]
    after: dict[tuple[str, int], ThermalState]
    block_in: dict[str, ThermalState]
    block_out: dict[str, ThermalState]
    profile: StaticProfile
    wall_time_seconds: float = 0.0
    #: Which fixed-point engine actually ran ("compiled" or "stepped").
    engine: str = "stepped"
    #: Which sweep strategy the compiled engine used ("batched" or
    #: "blockwise"; empty for the stepped engine).
    sweep: str = ""

    def state_after(self, block: str, index: int) -> ThermalState:
        """Thermal state immediately after instruction *index* of *block*."""
        return self.after[(block, index)]

    def exit_state(self) -> ThermalState:
        """Merged state at the function's exit blocks (freq-weighted)."""
        exits = [
            name
            for name, block in self.function.blocks.items()
            if not block.successors() and name in self.block_out
        ]
        if not exits:
            # Infinite loop: fall back to the hottest block-out state.
            exits = list(self.block_out)
        states = [self.block_out[name] for name in exits]
        weights = [self.profile.block_freq.get(name, 0.0) for name in exits]
        return ThermalState.weighted_mean(states, weights)

    def peak_state(self) -> ThermalState:
        """Element-wise maximum over all per-instruction states.

        The "worst case anywhere in the program" map: the natural field
        to compare against an emulator's steady-state map.
        """
        first = next(iter(self.after.values()))
        acc = first.temperatures.copy()
        for state in self.after.values():
            acc = np.maximum(acc, state.temperatures)
        return ThermalState(first.grid, acc)

    def frequency_weighted_state(self) -> ThermalState:
        """Expected map: per-instruction states weighted by block frequency."""
        states: list[ThermalState] = []
        weights: list[float] = []
        for (block, _idx), state in self.after.items():
            states.append(state)
            weights.append(self.profile.block_freq.get(block, 0.0))
        return ThermalState.weighted_mean(states, weights)

    def hottest_instructions(self, k: int = 5) -> list[tuple[str, int, float]]:
        """The *k* instructions with the hottest post-states.

        Returns ``(block, index, peak_kelvin)`` triples — the "parts of
        the program likely to exacerbate thermal problems" of §4.
        """
        ranked = sorted(
            ((blk, idx, state.peak) for (blk, idx), state in self.after.items()),
            key=lambda t: (-t[2], t[0], t[1]),
        )
        return ranked[:k]

    @property
    def final_delta(self) -> float:
        return self.delta_history[-1] if self.delta_history else 0.0


class ThermalDataflowAnalysis:
    """The forward thermal data flow analysis of Fig. 2.

    Parameters
    ----------
    machine:
        Target machine description.
    model:
        RC thermal model (defaults to one node per register cell).
    placement:
        Where registers live: :class:`ExactPlacement` for allocated code
        (default), or a predictive placement for pre-allocation analysis.
    config:
        δ, iteration budget, merge mode, leakage switch.
    power_model:
        Override the per-instruction power estimator.  Any object with
        ``total_power(inst, state, include_leakage)`` and
        ``has_leakage_feedback`` works; the chip-level model
        (:class:`~repro.thermal.chip.ChipPowerModel`) uses this hook.
        When given, *placement* is ignored (the power model owns it).
    transfer_cache:
        Pre-populated :class:`~repro.core.transfer.BlockTransferCache`
        to reuse across runs (and with exact summary extraction) so
        blocks are not recompiled.  Must have been built against this
        analysis's model, power model, cycle time and leakage setting —
        a mismatched cache is silently ignored and a fresh one built.
        When omitted, the analysis builds one on first compiled run and
        *keeps it*, so repeated runs never recompile.
    context:
        Owning :class:`~repro.core.context.AnalysisContext`, if any.
        Used to share per-function artifacts (static profiles) beyond
        what the transfer cache covers; plain analyses pass ``None``.
    """

    def __init__(
        self,
        machine: MachineDescription,
        model: RFThermalModel | None = None,
        placement: PlacementModel | None = None,
        config: TDFAConfig | None = None,
        power_model=None,
        transfer_cache: BlockTransferCache | None = None,
        context=None,
    ) -> None:
        self.machine = machine
        self.model = model or RFThermalModel(machine.geometry, energy=machine.energy)
        self.placement = placement or ExactPlacement(machine.geometry.num_registers)
        self.config = config or TDFAConfig()
        # Materialized once: the power model is a pure function of
        # (machine, model, placement), and a stable identity is what
        # lets the transfer cache match across runs.
        self.power_model = power_model or InstructionPowerModel(
            machine=self.machine, model=self.model, placement=self.placement
        )
        self.transfer_cache = transfer_cache
        self.context = context

    def resolve_engine(self, power_model=None) -> str:
        """The engine that :meth:`run` will actually use.

        Resolves ``"auto"`` against the power model's linearity and
        rejects ``"compiled"`` when leakage feedback makes the
        per-instruction transfer non-affine.
        """
        power_model = power_model or self.power_model
        linear = not power_model.has_leakage_feedback
        engine = self.config.engine
        if engine == "auto":
            return "compiled" if linear else "stepped"
        if engine == "compiled" and not linear:
            raise DataflowError(
                "engine='compiled' requires a linear thermal model; this "
                "power model has leakage-temperature feedback — use "
                "engine='stepped' (or 'auto')"
            )
        return engine

    def resolve_sweep(self) -> str:
        """The compiled-engine sweep strategy :meth:`run` will use."""
        if self.config.sweep == "auto":
            return "batched" if self.config.merge in ("freq", "mean") else "blockwise"
        return self.config.sweep

    def run(
        self,
        function: Function,
        entry_state: ThermalState | None = None,
        progress=None,
    ) -> TDFAResult:
        """Analyze *function*; returns a state after every instruction.

        *entry_state* is the thermal state assumed at function entry
        (default: uniform ambient).  Passing a previous analysis's exit
        state chains analyses across kernels — the basis of the affine
        function summaries in :mod:`repro.core.summaries`.

        *progress*, when given, is called once per completed sweep with
        ``{"event": "sweep", "iteration": i, "delta": d}`` (the first
        sweep has no previous state to diff against, so its ``delta``
        is ``inf``) — what feeds a job handle's live event stream.
        """
        started = time.perf_counter()
        config = self.config
        power_model = self.power_model
        engine = self.resolve_engine(power_model)
        sweep = self.resolve_sweep() if engine == "compiled" else ""
        if self.context is not None:
            profile = self.context.static_profile(function)
        else:
            profile = static_profile(function)
        rpo = reverse_postorder(function)
        preds = function.predecessors_map()
        entry = function.entry.name
        ambient = entry_state or self.model.ambient_state()
        dt = self.machine.energy.cycle_time

        block_in: dict[str, ThermalState] = {name: ambient for name in rpo}
        block_out: dict[str, ThermalState] = {name: ambient for name in rpo}
        after: dict[tuple[str, int], ThermalState] = {}

        def merge(name: str) -> ThermalState:
            sources = [p for p in preds[name] if p in block_out]
            states = [block_out[p] for p in sources]
            if name == entry:
                states = states + [ambient]
                sources = sources + [None]
            if not states:
                return ambient
            if len(states) == 1:
                return states[0]
            if config.merge == "max":
                return states[0].merge_max(states[1:])
            if config.merge == "mean":
                return ThermalState.weighted_mean(states, [1.0] * len(states))
            weights = [
                profile.edge_freq(src, name) if src is not None else 1.0
                for src in sources
            ]
            return ThermalState.weighted_mean(states, weights)

        if engine == "compiled":
            if sweep in ("batched", "sparse"):
                converged, iterations, delta_history, sweep = (
                    self._iterate_batched(
                        function, rpo, preds, profile, entry, ambient,
                        block_in, block_out, after, power_model, dt,
                        progress, requested=sweep,
                    )
                )
            else:
                converged, iterations, delta_history = self._iterate_blockwise(
                    function, rpo, preds, profile, entry, ambient,
                    block_in, block_out, after, power_model, dt, progress,
                )
        else:
            converged, iterations, delta_history = self._iterate_stepped(
                function, rpo, merge, block_in, block_out, after,
                power_model, dt, progress,
            )

        result = TDFAResult(
            function=function,
            config=config,
            converged=converged,
            iterations=iterations,
            delta_history=delta_history,
            after=after,
            block_in=block_in,
            block_out=block_out,
            profile=profile,
            wall_time_seconds=time.perf_counter() - started,
            engine=engine,
            sweep=sweep,
        )
        if not converged and config.raise_on_divergence:
            raise ConvergenceError(
                f"thermal DFA did not converge within {config.max_iterations} "
                f"iterations (last sweep δ={result.final_delta:.4g} K) — the "
                "paper's prescription: re-optimize the program for thermal "
                "predictability",
                partial_result=result,
                iterations=iterations,
            )
        return result

    # ------------------------------------------------------------------
    # Fixed-point engines
    # ------------------------------------------------------------------
    def _ensure_cache(self, power_model, dt) -> BlockTransferCache:
        """The transfer cache compiled runs use, built (and kept) once.

        A supplied cache is honoured when it matches this analysis's
        model, power model, step size and leakage setting; otherwise a
        fresh cache is built and *retained* on the analysis, so repeated
        runs — the before/after/rule analyses of a pipeline, or a whole
        suite through one context — amortize block compilation.
        """
        cache = self.transfer_cache
        if (
            cache is None
            or cache.model is not self.model
            or cache.power_model is not power_model
            or cache.dt != dt
            or cache.include_leakage != self.config.include_leakage
        ):
            cache = BlockTransferCache(
                self.model, power_model, dt,
                include_leakage=self.config.include_leakage,
            )
            self.transfer_cache = cache
        return cache

    def _iterate_batched(
        self, function, rpo, preds, profile, entry, ambient,
        block_in, block_out, after, power_model, dt, progress=None,
        requested: str = "batched",
    ) -> tuple[bool, int, list[float], str]:
        """Two stacked mat-vecs per sweep over the composed sweep map.

        The whole Gauss–Seidel sweep — merge every block's predecessors
        and apply its transfer, in reverse post-order — is pre-composed
        into a single affine map on the ``(m·n,)`` stacked vector of
        block-exit states (:class:`~repro.core.transfer.CompiledSweep`),
        so each iteration is two ``(m·n)²`` mat-vecs (entry states and
        exit states) with no Python loop.  Convergence is measured on
        exactly the quantities the blockwise sweep measures — the
        change of every block's entry and exit state — so iteration
        counts and delta histories match the blockwise engine sweep for
        sweep.  After convergence, interior states are materialized in
        one reconstruction sweep from the final entry states.

        *requested* is the resolved sweep strategy: ``"sparse"`` forces
        CSR storage of the stacked map; ``"batched"`` keeps it dense
        unless ``config.sweep == "auto"`` and the merge plan's measured
        block density says CSR wins — the map is the same either way,
        so the iteration trace is identical.  Returns the storage form
        actually used as the fourth element.
        """
        config = self.config
        cache = self._ensure_cache(power_model, dt)
        compiled = {name: cache.block(function.block(name)) for name in rpo}
        plan = affine_merge_plan(function, rpo, preds, profile, config.merge, entry)

        amb = ambient.temperatures
        grid = ambient.grid
        n = grid.num_nodes
        if requested == "sparse":
            form = "sparse"
        elif config.sweep == "auto":
            form = choose_sweep_form(plan, rpo, n)
        else:
            form = "dense"
        sweep = cache.sweep(
            function, rpo, plan, config.merge, compiled, form=form
        )
        label = "sparse" if form == "sparse" else "batched"

        outs = None
        if config.warm_start and self.context is not None:
            outs = self.context.warm_start(
                function, config.merge, config.include_leakage, rpo
            )
        if outs is None:
            outs = np.tile(amb, len(rpo))
        ins = outs
        in_term, out_term = sweep.entry_terms(amb)

        iterations = 0
        delta_history: list[float] = []
        converged = False
        prev_delta = float("inf")
        while iterations < config.max_iterations:
            iterations += 1
            new_ins, new_outs = sweep.apply(outs, in_term, out_term)
            # First sweep has no previous state to diff against — same
            # "change = inf" convention as the other engines.
            if iterations == 1:
                sweep_delta = float("inf")
            else:
                sweep_delta = max(
                    float(np.abs(new_ins - ins).max()),
                    float(np.abs(new_outs - outs).max()),
                )
            ins = new_ins
            outs = new_outs
            delta_history.append(sweep_delta)
            sweep_event(progress, iterations, sweep_delta)
            if converged_by(config.stop, config.delta, sweep_delta, prev_delta):
                converged = True
                break
            prev_delta = sweep_delta
            if outs.max() > 1000.0:
                break

        if converged and self.context is not None:
            self.context.store_warm_start(
                function, config.merge, config.include_leakage, rpo, outs
            )

        # One reconstruction sweep per block: per-instruction states and
        # exit states all derive from the final sweep's entry states.
        ins_per_block = ins.reshape(len(rpo), n)
        for i, name in enumerate(rpo):
            vec = ins_per_block[i]
            states = compiled[name].reconstruct(vec)
            block_in[name] = ThermalState(grid, vec)
            block_out[name] = ThermalState(grid, states[-1] if states else vec)
            for idx, temps in enumerate(states):
                after[(name, idx)] = ThermalState(grid, temps)
        return converged, iterations, delta_history, label

    def _iterate_blockwise(
        self, function, rpo, preds, profile, entry, ambient,
        block_in, block_out, after, power_model, dt, progress=None,
    ) -> tuple[bool, int, list[float]]:
        """Block-granular sweep over pre-composed affine transfers.

        The sweep runs entirely on raw temperature vectors: merges are
        replayed from the static weight plan (one weighted vector sum)
        and each block is one mat-vec.  Convergence is measured on block
        boundary states; because every compiled transfer's linear part
        is an ∞-norm contraction, interior per-instruction changes are
        bounded by the block-entry changes, so the block-level δ test is
        at least as strict as the stepped engine's per-instruction test.
        Interior states are materialized once, in the final
        reconstruction sweep.
        """
        config = self.config
        cache = self._ensure_cache(power_model, dt)
        compiled = {name: cache.block(function.block(name)) for name in rpo}
        matrices = {name: compiled[name].transfer.matrix for name in rpo}
        offsets = {name: compiled[name].transfer.offset for name in rpo}

        amb = ambient.temperatures
        grid = ambient.grid
        t_in = {name: amb for name in rpo}
        t_out = {name: amb for name in rpo}

        affine = config.merge in ("freq", "mean")
        if affine:
            plan = affine_merge_plan(
                function, rpo, preds, profile, config.merge, entry
            )
        else:  # max merge: element-wise maximum over the same sources
            rpo_set = set(rpo)
            max_sources: dict[str, list[str | None]] = {}
            for name in rpo:
                sources: list[str | None] = [
                    p for p in preds[name] if p in rpo_set
                ]
                if name == entry:
                    sources = sources + [None]
                max_sources[name] = sources or [None]

        iterations = 0
        delta_history: list[float] = []
        converged = False
        prev_delta = float("inf")
        while iterations < config.max_iterations:
            iterations += 1
            # First sweep has no previous state to diff against — same
            # "change = inf" convention as the stepped engine.
            first = iterations == 1
            sweep_delta = float("inf") if first else 0.0
            for name in rpo:
                if affine:
                    pairs = plan[name]
                    if len(pairs) == 1:
                        src = pairs[0][0]
                        vec = t_out[src] if src is not None else amb
                    else:
                        vec = sum(
                            w * (t_out[s] if s is not None else amb)
                            for s, w in pairs
                        )
                else:
                    arrays = [
                        t_out[s] if s is not None else amb
                        for s in max_sources[name]
                    ]
                    vec = arrays[0] if len(arrays) == 1 else np.maximum.reduce(arrays)
                new_out = matrices[name] @ vec + offsets[name]
                if not first:
                    sweep_delta = max(
                        sweep_delta,
                        float(np.abs(vec - t_in[name]).max()),
                        float(np.abs(new_out - t_out[name]).max()),
                    )
                t_in[name] = vec
                t_out[name] = new_out
            delta_history.append(sweep_delta)
            sweep_event(progress, iterations, sweep_delta)
            if converged_by(config.stop, config.delta, sweep_delta, prev_delta):
                converged = True
                break
            prev_delta = sweep_delta
            if any(t.max() > 1000.0 for t in t_out.values()):
                break

        # Single reconstruction sweep: per-instruction after-states from
        # the converged block-entry states.
        for name in rpo:
            block_in[name] = ThermalState(grid, t_in[name])
            block_out[name] = ThermalState(grid, t_out[name])
            for idx, temps in enumerate(compiled[name].reconstruct(t_in[name])):
                after[(name, idx)] = ThermalState(grid, temps)
        return converged, iterations, delta_history

    def _iterate_stepped(
        self, function, rpo, merge, block_in, block_out, after, power_model,
        dt, progress=None,
    ) -> tuple[bool, int, list[float]]:
        """The literal Fig. 2 loop: one RC step per instruction per sweep."""
        config = self.config
        linear = not power_model.has_leakage_feedback

        # Steady-state targets are constant in the linear regime; cached
        # under the stable (block, index) key — never id(inst), whose
        # values can be reused after garbage collection.
        target_cache: dict[tuple[str, int], ThermalState] = {}

        def step(state: ThermalState, inst, key: tuple[str, int]) -> ThermalState:
            if linear:
                target = target_cache.get(key)
                if target is None:
                    power = power_model.total_power(
                        inst, state, include_leakage=config.include_leakage
                    )
                    target = self.model.steady_state(power)
                    target_cache[key] = target
                op = self.model.step_operator(dt)
                deviation = state.temperatures - target.temperatures
                return ThermalState(state.grid, target.temperatures + op @ deviation)
            power = power_model.total_power(
                inst, state, include_leakage=config.include_leakage
            )
            return self.model.step(state, power, dt=dt)

        iterations = 0
        delta_history: list[float] = []
        converged = False
        prev_delta = float("inf")
        while iterations < config.max_iterations:
            iterations += 1
            sweep_delta = 0.0
            for name in rpo:
                state = merge(name)
                block_in[name] = state
                for idx, inst in enumerate(function.block(name).instructions):
                    new_state = step(state, inst, (name, idx))
                    previous = after.get((name, idx))
                    if previous is not None:
                        change = new_state.max_abs_diff(previous)
                    else:
                        change = float("inf")
                    sweep_delta = max(sweep_delta, change)
                    after[(name, idx)] = new_state
                    state = new_state
                block_out[name] = state
            delta_history.append(
                sweep_delta if np.isfinite(sweep_delta) else float("inf")
            )
            sweep_event(progress, iterations, sweep_delta)
            if converged_by(config.stop, config.delta, sweep_delta, prev_delta):
                converged = True
                break
            prev_delta = sweep_delta
            # Early divergence detection: runaway temperatures.
            if any(s.peak > 1000.0 for s in block_out.values()):
                break
        return converged, iterations, delta_history


def analyze(
    function: Function,
    machine: MachineDescription,
    delta: float = 0.01,
    merge: str = "freq",
    max_iterations: int = 2000,
    placement: PlacementModel | None = None,
    model: RFThermalModel | None = None,
    engine: str = "auto",
    sweep: str = "auto",
) -> TDFAResult:
    """One-call convenience wrapper around :class:`ThermalDataflowAnalysis`."""
    analysis = ThermalDataflowAnalysis(
        machine=machine,
        model=model,
        placement=placement,
        config=TDFAConfig(
            delta=delta, merge=merge, max_iterations=max_iterations,
            engine=engine, sweep=sweep,
        ),
    )
    return analysis.run(function)
