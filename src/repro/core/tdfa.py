"""Thermal data flow analysis — the paper's core contribution (Fig. 2).

The algorithm, verbatim from the pseudocode::

    Do
      Boolean: stop ← True
      For each basic block B
        For each instruction I ∈ B, taken in forward order
          Estimate thermal state after I
          If the change in I's thermal state exceeds δ
            stop ← False
          EndIf
        EndFor
      EndFor
    While( stop = False )
    Output the thermal state of each instruction

Our realization fills in the parts the two-page paper leaves open:

* **Transfer function** — one cycle of the RC network under the
  instruction's access power (:mod:`repro.core.estimator`), exact via
  the precomputed matrix exponential.
* **CFG joins** — the paper's pseudocode iterates blocks but does not
  say how predecessor states combine.  We provide three merges:
  ``max`` (element-wise maximum — conservative for hot-spot detection),
  ``mean`` (plain average) and ``freq`` (static-profile weighted
  average, the default).  Experiment E8 ablates the choice.
* **Convergence** — the paper: *"there does not appear to be a way to
  guarantee convergence; however, if the analysis does not converge
  after a reasonable number of iterations ... the thermal state of the
  program may be too difficult to predict at compile time."*  With the
  purely linear model the per-sweep map is an affine contraction, so
  convergence is actually guaranteed (a property test asserts it); with
  temperature-dependent leakage the transfer is non-linear and genuinely
  diverges under runaway coefficients.  ``TDFAResult.converged`` and the
  δ-history expose both behaviours; by default non-convergence is
  reported, not raised.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..arch.machine import MachineDescription
from ..dataflow.freq import StaticProfile, static_profile
from ..errors import ConvergenceError, DataflowError
from ..ir.cfg import reverse_postorder
from ..ir.function import Function
from ..thermal.rcmodel import RFThermalModel
from ..thermal.state import ThermalState
from .estimator import ExactPlacement, InstructionPowerModel, PlacementModel

#: Valid CFG merge modes.
MERGE_MODES = ("max", "mean", "freq")


@dataclass(frozen=True)
class TDFAConfig:
    """User-tunable parameters of the analysis.

    ``delta`` is the paper's δ (Kelvin): the analysis stops when no
    instruction's thermal state changed by more than δ between sweeps.
    ``max_iterations`` is the paper's "reasonable number of iterations";
    exceeding it flags non-convergence.  ``merge`` selects the CFG join.
    ``raise_on_divergence`` switches non-convergence from a reported
    outcome to a :class:`ConvergenceError`.
    """

    delta: float = 0.01
    max_iterations: int = 2000
    merge: str = "freq"
    include_leakage: bool = True
    raise_on_divergence: bool = False

    def __post_init__(self) -> None:
        if self.delta <= 0:
            raise DataflowError("delta must be positive")
        if self.max_iterations < 1:
            raise DataflowError("max_iterations must be at least 1")
        if self.merge not in MERGE_MODES:
            raise DataflowError(f"merge must be one of {MERGE_MODES}")


@dataclass
class TDFAResult:
    """Output of the analysis: a thermal state *after every instruction*.

    Exactly what Fig. 2 outputs, plus convergence diagnostics and the
    block-boundary states analyses downstream (critical variables, rules,
    optimization passes) consume.
    """

    function: Function
    config: TDFAConfig
    converged: bool
    iterations: int
    delta_history: list[float]
    after: dict[tuple[str, int], ThermalState]
    block_in: dict[str, ThermalState]
    block_out: dict[str, ThermalState]
    profile: StaticProfile
    wall_time_seconds: float = 0.0

    def state_after(self, block: str, index: int) -> ThermalState:
        """Thermal state immediately after instruction *index* of *block*."""
        return self.after[(block, index)]

    def exit_state(self) -> ThermalState:
        """Merged state at the function's exit blocks (freq-weighted)."""
        exits = [
            name
            for name, block in self.function.blocks.items()
            if not block.successors() and name in self.block_out
        ]
        if not exits:
            # Infinite loop: fall back to the hottest block-out state.
            exits = list(self.block_out)
        states = [self.block_out[name] for name in exits]
        weights = [self.profile.block_freq.get(name, 0.0) for name in exits]
        return ThermalState.weighted_mean(states, weights)

    def peak_state(self) -> ThermalState:
        """Element-wise maximum over all per-instruction states.

        The "worst case anywhere in the program" map: the natural field
        to compare against an emulator's steady-state map.
        """
        first = next(iter(self.after.values()))
        acc = first.temperatures.copy()
        for state in self.after.values():
            acc = np.maximum(acc, state.temperatures)
        return ThermalState(first.grid, acc)

    def frequency_weighted_state(self) -> ThermalState:
        """Expected map: per-instruction states weighted by block frequency."""
        states: list[ThermalState] = []
        weights: list[float] = []
        for (block, _idx), state in self.after.items():
            states.append(state)
            weights.append(self.profile.block_freq.get(block, 0.0))
        return ThermalState.weighted_mean(states, weights)

    def hottest_instructions(self, k: int = 5) -> list[tuple[str, int, float]]:
        """The *k* instructions with the hottest post-states.

        Returns ``(block, index, peak_kelvin)`` triples — the "parts of
        the program likely to exacerbate thermal problems" of §4.
        """
        ranked = sorted(
            ((blk, idx, state.peak) for (blk, idx), state in self.after.items()),
            key=lambda t: (-t[2], t[0], t[1]),
        )
        return ranked[:k]

    @property
    def final_delta(self) -> float:
        return self.delta_history[-1] if self.delta_history else 0.0


class ThermalDataflowAnalysis:
    """The forward thermal data flow analysis of Fig. 2.

    Parameters
    ----------
    machine:
        Target machine description.
    model:
        RC thermal model (defaults to one node per register cell).
    placement:
        Where registers live: :class:`ExactPlacement` for allocated code
        (default), or a predictive placement for pre-allocation analysis.
    config:
        δ, iteration budget, merge mode, leakage switch.
    power_model:
        Override the per-instruction power estimator.  Any object with
        ``total_power(inst, state, include_leakage)`` and
        ``has_leakage_feedback`` works; the chip-level model
        (:class:`~repro.thermal.chip.ChipPowerModel`) uses this hook.
        When given, *placement* is ignored (the power model owns it).
    """

    def __init__(
        self,
        machine: MachineDescription,
        model: RFThermalModel | None = None,
        placement: PlacementModel | None = None,
        config: TDFAConfig | None = None,
        power_model=None,
    ) -> None:
        self.machine = machine
        self.model = model or RFThermalModel(machine.geometry, energy=machine.energy)
        self.placement = placement or ExactPlacement(machine.geometry.num_registers)
        self.config = config or TDFAConfig()
        self.power_model = power_model

    def run(
        self, function: Function, entry_state: ThermalState | None = None
    ) -> TDFAResult:
        """Analyze *function*; returns a state after every instruction.

        *entry_state* is the thermal state assumed at function entry
        (default: uniform ambient).  Passing a previous analysis's exit
        state chains analyses across kernels — the basis of the affine
        function summaries in :mod:`repro.core.summaries`.
        """
        started = time.perf_counter()
        config = self.config
        power_model = self.power_model or InstructionPowerModel(
            machine=self.machine, model=self.model, placement=self.placement
        )
        profile = static_profile(function)
        rpo = reverse_postorder(function)
        preds = function.predecessors_map()
        entry = function.entry.name
        ambient = entry_state or self.model.ambient_state()
        dt = self.machine.energy.cycle_time

        # Pre-compute, per instruction, the steady-state target of its
        # constant power — valid whenever leakage has no feedback, which
        # makes the per-instruction step a single mat-vec.
        linear = not power_model.has_leakage_feedback

        block_in: dict[str, ThermalState] = {name: ambient for name in rpo}
        block_out: dict[str, ThermalState] = {name: ambient for name in rpo}
        after: dict[tuple[str, int], ThermalState] = {}

        target_cache: dict[int, ThermalState] = {}

        def step(state: ThermalState, inst) -> ThermalState:
            if linear:
                target = target_cache.get(id(inst))
                if target is None:
                    power = power_model.total_power(
                        inst, state, include_leakage=config.include_leakage
                    )
                    target = self.model.steady_state(power)
                    target_cache[id(inst)] = target
                op = self.model._step_operator(dt)
                deviation = state.temperatures - target.temperatures
                return ThermalState(state.grid, target.temperatures + op @ deviation)
            power = power_model.total_power(
                inst, state, include_leakage=config.include_leakage
            )
            return self.model.step(state, power, dt=dt)

        def merge(name: str) -> ThermalState:
            sources = [p for p in preds[name] if p in block_out]
            states = [block_out[p] for p in sources]
            if name == entry:
                states = states + [ambient]
                sources = sources + [None]
            if not states:
                return ambient
            if len(states) == 1:
                return states[0]
            if config.merge == "max":
                return states[0].merge_max(states[1:])
            if config.merge == "mean":
                return ThermalState.weighted_mean(states, [1.0] * len(states))
            weights = [
                profile.edge_freq(src, name) if src is not None else 1.0
                for src in sources
            ]
            return ThermalState.weighted_mean(states, weights)

        iterations = 0
        delta_history: list[float] = []
        converged = False
        while iterations < config.max_iterations:
            iterations += 1
            sweep_delta = 0.0
            for name in rpo:
                state = merge(name)
                block_in[name] = state
                for idx, inst in enumerate(function.block(name).instructions):
                    new_state = step(state, inst)
                    previous = after.get((name, idx))
                    if previous is not None:
                        change = new_state.max_abs_diff(previous)
                    else:
                        change = float("inf")
                    sweep_delta = max(sweep_delta, change)
                    after[(name, idx)] = new_state
                    state = new_state
                block_out[name] = state
            delta_history.append(
                sweep_delta if np.isfinite(sweep_delta) else float("inf")
            )
            if sweep_delta <= config.delta:
                converged = True
                break
            # Early divergence detection: runaway temperatures.
            if any(s.peak > 1000.0 for s in block_out.values()):
                break

        result = TDFAResult(
            function=function,
            config=config,
            converged=converged,
            iterations=iterations,
            delta_history=delta_history,
            after=after,
            block_in=block_in,
            block_out=block_out,
            profile=profile,
            wall_time_seconds=time.perf_counter() - started,
        )
        if not converged and config.raise_on_divergence:
            raise ConvergenceError(
                f"thermal DFA did not converge within {config.max_iterations} "
                f"iterations (last sweep δ={result.final_delta:.4g} K) — the "
                "paper's prescription: re-optimize the program for thermal "
                "predictability",
                partial_result=result,
                iterations=iterations,
            )
        return result


def analyze(
    function: Function,
    machine: MachineDescription,
    delta: float = 0.01,
    merge: str = "freq",
    max_iterations: int = 2000,
    placement: PlacementModel | None = None,
    model: RFThermalModel | None = None,
) -> TDFAResult:
    """One-call convenience wrapper around :class:`ThermalDataflowAnalysis`."""
    analysis = ThermalDataflowAnalysis(
        machine=machine,
        model=model,
        placement=placement,
        config=TDFAConfig(delta=delta, merge=merge, max_iterations=max_iterations),
    )
    return analysis.run(function)
