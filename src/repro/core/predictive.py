"""Pre-allocation (predictive) placement models.

The paper's "more ambitious possibility ... never considered before":
run the thermal analysis *before* register allocation and assignment,
when no variable has a physical location yet.  The missing information
is modeled as a probability distribution over register-file cells for
each virtual register:

* :class:`UniformPlacement` — the zero-knowledge baseline: every
  variable is equally likely to land anywhere.  Predicts total power
  correctly but no spatial structure.
* :class:`PolicyPlacement` — the informed model: since the assignment
  policy and the (liveness-derived) allocation order are already known
  before assignment runs, *simulate* the allocator: run K virtual
  linear-scan allocations under the policy and average the resulting
  one-hot placements.  Deterministic policies (first-free, chessboard)
  collapse to exact predictions; randomized policies yield their true
  placement distribution.  Variables predicted to spill receive no RF
  power (they live in memory).
* :class:`AllocationPlacement` — one-hot placement taken from a
  completed allocation; lets the analysis run on the *virtual* function
  with post-assignment precision.  This is what the optimization
  pipeline uses so criticality lands on virtual registers (the entities
  the spill/split passes can act on).

All predictive placements yield *state-independent* per-instruction
powers (a distribution is fixed once sampled), so pre-allocation
analyses are linear and run under the compiled block-transfer engine
(:mod:`repro.core.transfer`) by default — the probability smearing
costs nothing extra: it is folded into each block's ``(A_B, b_B)`` map
at compile time, once.

Experiment E7 scores all of these against emulated ground truth.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..arch.machine import MachineDescription
from ..errors import ThermalModelError
from ..ir.function import Function
from ..ir.values import PhysicalRegister, Value, VirtualRegister
from ..regalloc.assignment import Allocation
from ..regalloc.linearscan import allocate_linear_scan
from ..regalloc.policies import AssignmentPolicy, FirstFreePolicy
from .estimator import PlacementModel


class UniformPlacement(PlacementModel):
    """Every virtual register is uniformly likely to occupy any cell."""

    name = "uniform"

    def __init__(self, machine: MachineDescription) -> None:
        allocatable = machine.allocatable_registers()
        self._vector = np.zeros(machine.geometry.num_registers)
        self._vector[allocatable] = 1.0 / len(allocatable)

    def distribution(self, reg: Value) -> np.ndarray:
        if isinstance(reg, PhysicalRegister):
            vec = np.zeros_like(self._vector)
            vec[reg.index] = 1.0
            return vec
        return self._vector


class AllocationPlacement(PlacementModel):
    """One-hot placement from a completed allocation's mapping.

    Virtual registers that were spilled map to the zero vector: their
    accesses go to memory, not the register file.
    """

    name = "allocation"

    def __init__(self, allocation: Allocation, num_registers: int) -> None:
        self.num_registers = num_registers
        self._mapping = dict(allocation.mapping)
        self._zero = np.zeros(num_registers)
        self._cache: dict[Value, np.ndarray] = {}

    @classmethod
    def from_mapping(
        cls, mapping: dict[VirtualRegister, int], num_registers: int
    ) -> "AllocationPlacement":
        instance = cls.__new__(cls)
        instance.num_registers = num_registers
        instance._mapping = dict(mapping)
        instance._zero = np.zeros(num_registers)
        instance._cache = {}
        return instance

    def distribution(self, reg: Value) -> np.ndarray:
        cached = self._cache.get(reg)
        if cached is not None:
            return cached
        if isinstance(reg, PhysicalRegister):
            index = reg.index
        elif reg in self._mapping:
            index = self._mapping[reg]  # type: ignore[index]
        else:
            self._cache[reg] = self._zero
            return self._zero
        if not 0 <= index < self.num_registers:
            raise ThermalModelError(f"assignment of {reg} out of range: {index}")
        vec = np.zeros(self.num_registers)
        vec[index] = 1.0
        self._cache[reg] = vec
        return vec


class PolicyPlacement(PlacementModel):
    """Empirical placement distribution from K virtual allocations.

    Parameters
    ----------
    function:
        The pre-allocation (virtual-register) function.
    machine:
        Target machine.
    policy_factory:
        ``seed -> AssignmentPolicy``; called once per sample so
        randomized policies explore their distribution while
        deterministic ones are sampled once effectively.
    samples:
        Number of virtual allocations to average.
    """

    name = "policy"

    def __init__(
        self,
        function: Function,
        machine: MachineDescription,
        policy_factory: Callable[[int], AssignmentPolicy] | None = None,
        samples: int = 16,
    ) -> None:
        if samples < 1:
            raise ThermalModelError("samples must be at least 1")
        if policy_factory is None:
            policy_factory = lambda seed: FirstFreePolicy()  # noqa: E731
        num_regs = machine.geometry.num_registers
        accumulator: dict[Value, np.ndarray] = {}
        for sample in range(samples):
            policy = policy_factory(sample)
            allocation = allocate_linear_scan(function, machine, policy)
            for vreg, index in allocation.mapping.items():
                vec = accumulator.setdefault(vreg, np.zeros(num_regs))
                vec[index] += 1.0 / samples
        self.num_registers = num_regs
        self._distributions = accumulator
        self._zero = np.zeros(num_regs)

    def distribution(self, reg: Value) -> np.ndarray:
        if isinstance(reg, PhysicalRegister):
            vec = np.zeros(self.num_registers)
            vec[reg.index] = 1.0
            return vec
        return self._distributions.get(reg, self._zero)

    def spill_probability(self, reg: Value) -> float:
        """Fraction of virtual allocations in which *reg* was spilled."""
        vec = self._distributions.get(reg)
        if vec is None:
            return 1.0
        return float(max(0.0, 1.0 - vec.sum()))
