"""Cross-function pipeline analysis: one thermal program, many kernels.

The paper analyzes one kernel at a time, but real schedules run
*sequences* of tasks whose thermal state carries from one to the next
(conv → dct → crc …): the entry state of kernel ``k+1`` is the exit
state of kernel ``k``.  This module is the first interprocedural layer
of the reproduction — it analyzes a whole pipeline of kernels as one
thermal program, with three interchangeable strategies:

``"sequential"``
    Per-kernel carry-through: analyze stage 0 from the pipeline entry
    state, feed its exit state into stage 1, and so on.  The reference
    semantics, and the only strategy for non-affine configurations
    (``max`` joins, leakage-temperature feedback).
``"composed"``
    Exact summary composition: each *distinct* kernel's affine exit map
    ``T_exit = A·T_in + b`` is extracted once (one linear solve, via the
    shared context's summary cache — no fixed-point run at all), then
    the pipeline is evaluated with two mat-vecs per stage — O(1) per
    repeated kernel.
``"stacked"``
    One pipeline-wide affine fixed point: every stage's compiled
    Gauss–Seidel sweep is chained — stage ``k``'s entry substituting
    stage ``k−1``'s already-updated exit expression — into a single
    stacked ``(Σ m_k·n, Σ m_k·n)`` map
    (:func:`~repro.core.transfer.compile_pipeline_sweep`), iterated with
    two stacked mat-vecs per sweep.  Entry-state information crosses
    every stage boundary *within* one sweep, and the per-instruction
    states of every stage are materialized in one reconstruction pass.

All three strategies converge to the same fixed point (the stacked map's
fixed point satisfies, stage by stage, exactly the sequential
carry-through equations; the composed summaries solve those equations in
closed form), so they agree within the usual 2δ tolerance — asserted
suite-wide by the pipeline correctness tests and
``benchmarks/bench_pipeline.py``.

:func:`run_pipeline` is the report-level entry point (CLI ``pipeline``
subcommand, ``PipelineRequest`` executor): it resolves workload names,
allocates each distinct stage once (identity-keyed caches then serve
repeated kernels for free), analyzes through one shared
:class:`~repro.core.context.AnalysisContext` and emits a
machine-readable :class:`PipelineReport` (``BENCH_pipeline.json``;
schema in ``benchmarks/README.md``).
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field, replace
from dataclasses import fields as dataclass_fields

import numpy as np

from ..arch import MACHINE_PRESETS
from ..errors import DataflowError
from ..ir.cfg import reverse_postorder
from ..ir.function import Function
from ..obs.metrics import default_registry
from ..regalloc.linearscan import allocate_linear_scan
from ..regalloc.policies import policy_by_name
from ..thermal.state import ThermalState
from ..workloads import load
from .context import AnalysisContext

_METRICS = default_registry()
from .summaries import FunctionSummary, compose_pipeline, exit_weight_plan
from .tdfa import TDFAResult, converged_by, sweep_event
from .transfer import affine_merge_plan, choose_sweep_form

#: Report schema identifier (bump on incompatible changes).
SCHEMA = "repro.pipeline/1"

#: Valid pipeline analysis strategies.
PIPELINE_STRATEGIES = ("stacked", "composed", "sequential")


@dataclass
class PipelineAnalysis:
    """Rich result of one pipeline analysis (any strategy).

    ``entry_states[k]`` / ``exit_states[k]`` bracket stage *k*;
    ``exit_states[k]`` is ``entry_states[k+1]``.  ``stage_results``
    holds one full :class:`~repro.core.tdfa.TDFAResult` per stage for
    the state-materializing strategies (``sequential`` / ``stacked``)
    and is ``None`` for ``composed``, which only tracks boundary states.
    ``summary`` is the composed whole-pipeline affine map (``composed``
    strategy only).
    """

    strategy: str
    functions: list[Function]
    entry_states: list[ThermalState]
    exit_states: list[ThermalState]
    stage_results: list[TDFAResult] | None
    summary: FunctionSummary | None
    converged: bool
    iterations: int
    wall_time_seconds: float = 0.0
    #: Storage form each stacked stage sweep actually used ("dense" /
    #: "sparse", per stage); ``None`` for the non-stacked strategies.
    stage_sweep_forms: list[str] | None = None

    @property
    def num_stages(self) -> int:
        return len(self.functions)

    def exit_state(self) -> ThermalState:
        """The whole pipeline's exit state (last stage's exit)."""
        return self.exit_states[-1]


def _require_affine(context: AnalysisContext, config, strategy: str) -> None:
    """Stacked/composed strategies need the linear, affine-merge regime."""
    if config.merge not in ("freq", "mean"):
        raise DataflowError(
            f"pipeline strategy {strategy!r} requires an affine merge "
            f"('freq'/'mean'), got {config.merge!r} — use "
            "strategy='sequential' for max joins"
        )
    if config.engine == "stepped":
        raise DataflowError(
            f"pipeline strategy {strategy!r} runs on compiled affine maps; "
            "engine='stepped' only composes with strategy='sequential'"
        )
    power_model = context.power_model()
    if getattr(power_model, "has_leakage_feedback", False):
        raise DataflowError(
            f"pipeline strategy {strategy!r} requires a linear thermal "
            "model (no leakage-temperature feedback) — use "
            "strategy='sequential'"
        )


def analyze_pipeline(
    context: AnalysisContext,
    functions: list[Function],
    strategy: str = "stacked",
    entry_state: ThermalState | None = None,
    progress=None,
    **overrides,
) -> PipelineAnalysis:
    """Analyze *functions* as one pipeline through *context*.

    Implementation behind
    :meth:`AnalysisContext.analyze_pipeline
    <repro.core.context.AnalysisContext.analyze_pipeline>`; keyword
    *overrides* (``delta=…``, ``merge=…``, …) apply on top of the
    context's default :class:`~repro.core.tdfa.TDFAConfig`.

    *progress*, when given, receives one ``{"event": "stage", "index":
    k, "total": K, "name": ...}`` dict as each stage's states land,
    and (stacked strategy) one ``{"event": "sweep", ...}`` dict per
    pipeline-wide Gauss–Seidel sweep.
    """
    if not functions:
        raise DataflowError("cannot analyze an empty pipeline")
    if strategy not in PIPELINE_STRATEGIES:
        raise DataflowError(
            f"strategy must be one of {PIPELINE_STRATEGIES}, got {strategy!r}"
        )
    # Pipelines default to the error-bound stop rule: every strategy
    # must land within δ of the true fixed point for the cross-strategy
    # 2δ agreement to hold (see tdfa.converged_by).  An explicit
    # stop=… override still wins.
    overrides = {"stop": "bound", **overrides}
    config = replace(context.config, **overrides)
    started = time.perf_counter()
    entry = entry_state or context.model.ambient_state()

    if strategy == "sequential":
        analysis = _analyze_sequential(
            context, functions, entry, overrides, progress
        )
    elif strategy == "composed":
        _require_affine(context, config, strategy)
        analysis = _analyze_composed(
            context, functions, entry, config, progress
        )
    else:
        _require_affine(context, config, strategy)
        analysis = _analyze_stacked(
            context, functions, entry, config, progress
        )
    analysis.wall_time_seconds = time.perf_counter() - started
    return analysis


def _stage_event(progress, index: int, total: int, function: Function) -> None:
    """Emit one per-stage completion event (no-op without a callback)."""
    if _METRICS.enabled:
        _METRICS.inc("pipeline.stages")
    if progress is not None:
        progress({"event": "stage", "index": index, "total": total,
                  "name": function.name})


def _analyze_sequential(
    context: AnalysisContext,
    functions: list[Function],
    entry: ThermalState,
    overrides: dict,
    progress=None,
) -> PipelineAnalysis:
    """Per-kernel carry-through: K analyses, exit feeding entry."""
    entry_states: list[ThermalState] = []
    exit_states: list[ThermalState] = []
    results: list[TDFAResult] = []
    state = entry
    for k, function in enumerate(functions):
        entry_states.append(state)
        result = context.analyze(function, entry_state=state, **overrides)
        results.append(result)
        state = result.exit_state()
        exit_states.append(state)
        _stage_event(progress, k, len(functions), function)
    return PipelineAnalysis(
        strategy="sequential",
        functions=list(functions),
        entry_states=entry_states,
        exit_states=exit_states,
        stage_results=results,
        summary=None,
        converged=all(r.converged for r in results),
        iterations=sum(r.iterations for r in results),
    )


def _analyze_composed(
    context: AnalysisContext,
    functions: list[Function],
    entry: ThermalState,
    config,
    progress=None,
) -> PipelineAnalysis:
    """Exact summary composition: one linear solve per distinct kernel."""
    entry_states: list[ThermalState] = []
    exit_states: list[ThermalState] = []
    summaries: list[FunctionSummary] = []
    state = entry
    for k, function in enumerate(functions):
        summary = context.summary(
            function,
            merge=config.merge,
            include_leakage=config.include_leakage,
        )
        summaries.append(summary)
        entry_states.append(state)
        state = summary.apply(state)
        exit_states.append(state)
        _stage_event(progress, k, len(functions), function)
    return PipelineAnalysis(
        strategy="composed",
        functions=list(functions),
        entry_states=entry_states,
        exit_states=exit_states,
        stage_results=None,
        summary=compose_pipeline(summaries),
        converged=True,  # closed form: the exact fixed point, no sweeps
        iterations=0,
    )


def _analyze_stacked(
    context: AnalysisContext,
    functions: list[Function],
    entry: ThermalState,
    config,
    progress=None,
) -> PipelineAnalysis:
    """One pipeline-wide stacked affine fixed point."""
    power_model = context.power_model()
    cache = context.transfer_cache(
        power_model, include_leakage=config.include_leakage
    )
    grid = context.model.grid
    n = grid.num_nodes

    rpos: list[list[str]] = []
    profiles = []
    compiled_stages = []
    stage_sweeps = []
    exit_plans = []
    for function in functions:
        profile = context.static_profile(function)
        rpo = reverse_postorder(function)
        preds = function.predecessors_map()
        compiled = {name: cache.block(function.block(name)) for name in rpo}
        plan = affine_merge_plan(
            function, rpo, preds, profile, config.merge, function.entry.name
        )
        if config.sweep == "sparse":
            form = "sparse"
        elif config.sweep == "auto":
            form = choose_sweep_form(plan, rpo, n)
        else:
            form = "dense"
        sweep = cache.sweep(
            function, rpo, plan, config.merge, compiled, form=form
        )
        index = {name: i for i, name in enumerate(rpo)}
        exit_plans.append(
            [(index[name], w) for name, w in
             exit_weight_plan(function, rpo, profile)]
        )
        rpos.append(rpo)
        profiles.append(profile)
        compiled_stages.append(compiled)
        stage_sweeps.append(sweep)
    pipeline = cache.pipeline(
        list(functions), stage_sweeps, exit_plans, config.merge
    )

    # Warm start, two tiers.  With ``warm_start=True`` and a stored
    # pipeline-level fixed point whose per-stage rpos still match
    # (context.pipeline_warm_start), restart from it directly — the
    # incremental path after invalidate(function, blocks=...), which
    # dropped the edited stage's block solutions, so re-deriving them
    # would cost the very solve the warm start is meant to skip.
    # Otherwise: every stage's block system is linear, so its exact
    # block-out fixed point given the entry state is one cached solve
    # per *distinct* kernel (context.block_solution — the same solve
    # summary extraction uses).  Chaining those solutions through the
    # exit extractors initializes the stacked vector essentially at the
    # pipeline-wide fixed point; the Gauss–Seidel sweeps below then
    # *verify* convergence under the configured stop rule.  Either
    # vector is only an initial guess of a contraction's fixed point —
    # correctness never depends on it.
    entry_vec = entry.temperatures
    outs = None
    if config.warm_start:
        stored = context.pipeline_warm_start(
            functions, config.merge, config.include_leakage, rpos
        )
        if stored is not None:
            outs = np.array(stored)
    if outs is None:
        outs = np.empty(pipeline.stacked_size)
        t_stage = entry_vec
        for k, function in enumerate(functions):
            solution, _rpo, _index = context.block_solution(
                function, config.merge,
                include_leakage=config.include_leakage,
            )
            rows = pipeline.stage_slice(k)
            outs[rows] = solution[:, :n] @ t_stage + solution[:, n]
            t_stage = pipeline.exit_matrices[k] @ outs[rows]
    ins = outs

    # The fixed-point loop — identical in shape to the batched
    # single-function engine, over the pipeline-wide stacked vector.
    iterations = 0
    delta_history: list[float] = []
    converged = False
    prev_delta = float("inf")
    while iterations < config.max_iterations:
        iterations += 1
        new_ins, new_outs = pipeline.apply(outs, entry_vec)
        if iterations == 1:
            sweep_delta = float("inf")
        else:
            sweep_delta = max(
                float(np.abs(new_ins - ins).max()),
                float(np.abs(new_outs - outs).max()),
            )
        ins = new_ins
        outs = new_outs
        delta_history.append(sweep_delta)
        sweep_event(progress, iterations, sweep_delta)
        if converged_by(config.stop, config.delta, sweep_delta, prev_delta):
            converged = True
            break
        prev_delta = sweep_delta
        if outs.max() > 1000.0:
            break
    if converged:
        # Always stored (warm-started or not): the next edit-then-
        # re-analyze cycle restarts from here.
        context.store_pipeline_warm_start(
            functions, config.merge, config.include_leakage, rpos,
            np.array(outs),
        )

    # One reconstruction pass per stage: per-instruction states, block
    # boundaries, and the stage-to-stage entry/exit chain.
    entry_states: list[ThermalState] = []
    exit_states: list[ThermalState] = []
    results: list[TDFAResult] = []
    state = entry
    for k, function in enumerate(functions):
        rpo = rpos[k]
        ins_per_block = ins[pipeline.stage_slice(k)].reshape(len(rpo), n)
        block_in: dict[str, ThermalState] = {}
        block_out: dict[str, ThermalState] = {}
        after: dict[tuple[str, int], ThermalState] = {}
        for i, name in enumerate(rpo):
            vec = ins_per_block[i]
            states = compiled_stages[k][name].reconstruct(vec)
            block_in[name] = ThermalState(grid, vec)
            block_out[name] = ThermalState(grid, states[-1] if states else vec)
            for idx, temps in enumerate(states):
                after[(name, idx)] = ThermalState(grid, temps)
        result = TDFAResult(
            function=function,
            config=config,
            converged=converged,
            iterations=iterations,
            delta_history=delta_history,
            after=after,
            block_in=block_in,
            block_out=block_out,
            profile=profiles[k],
            engine="compiled",
            sweep="stacked",
        )
        results.append(result)
        entry_states.append(state)
        state = result.exit_state()
        exit_states.append(state)
        _stage_event(progress, k, len(functions), function)
    return PipelineAnalysis(
        strategy="stacked",
        functions=list(functions),
        entry_states=entry_states,
        exit_states=exit_states,
        stage_results=results,
        summary=None,
        converged=converged,
        iterations=iterations,
        stage_sweep_forms=list(pipeline.stage_forms),
    )


# ----------------------------------------------------------------------
# Report layer: machine-readable pipeline runs (BENCH_pipeline.json)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PipelineStageItem:
    """One stage of an analyzed pipeline."""

    name: str
    policy: str
    instructions: int
    blocks: int
    entry_peak_kelvin: float
    exit_peak_kelvin: float
    exit_delta_kelvin: float
    #: Peak anywhere inside the stage (``None`` for the composed
    #: strategy, which materializes boundary states only).
    peak_kelvin: float | None
    #: Storage form the stage's stacked sweep actually used ("dense" /
    #: "sparse"; ``None`` for non-stacked strategies) — what lets a
    #: coordinator assert every worker of a sharded run picked the same
    #: per-stage form.
    sweep: str | None = None


@dataclass
class PipelineReport:
    """Machine-readable result of one pipeline run."""

    machine: str
    model: str                    # "rf" or "chip"
    strategy: str
    delta: float
    merge: str
    #: The requested stacked-sweep storage form ("auto"/"dense"/
    #: "sparse"); per-stage resolved forms live on the stage items.
    sweep: str = "auto"
    stages: list[PipelineStageItem] = field(default_factory=list)
    converged: bool = True
    iterations: int = 0
    wall_time_seconds: float = 0.0
    context_stats: dict[str, int] = field(default_factory=dict)
    #: Count of distinct analyzed (kernel, policy) pairs.  Set from the
    #: actual function objects when built by :func:`run_pipeline`
    #: (two ir_text stages may share a function *name* yet be distinct
    #: kernels); ``None`` falls back to distinct (name, policy) pairs.
    distinct_kernels: int | None = None
    #: The whole pipeline's exit state as a plain temperature vector,
    #: present only when :func:`run_pipeline` was asked for it
    #: (``include_exit_state=True``) — what lets a coordinator chain a
    #: further pipeline chunk from exactly where this one ended.
    exit_temperatures: list[float] | None = None

    def totals(self) -> dict[str, float]:
        distinct = (
            self.distinct_kernels
            if self.distinct_kernels is not None
            else len({(item.name, item.policy) for item in self.stages})
        )
        return {
            "stages": len(self.stages),
            "distinct_kernels": distinct,
            "instructions": sum(i.instructions for i in self.stages),
            "exit_peak_kelvin": (
                self.stages[-1].exit_peak_kelvin if self.stages else 0.0
            ),
            "exit_delta_kelvin": (
                self.stages[-1].exit_delta_kelvin if self.stages else 0.0
            ),
            "wall_time_seconds": self.wall_time_seconds,
        }

    def to_dict(self) -> dict:
        data = {
            "schema": SCHEMA,
            "machine": self.machine,
            "model": self.model,
            "strategy": self.strategy,
            "delta": self.delta,
            "merge": self.merge,
            "sweep": self.sweep,
            "converged": self.converged,
            "iterations": self.iterations,
            "totals": self.totals(),
            "context_stats": dict(self.context_stats),
            "stages": [asdict(item) for item in self.stages],
        }
        if self.exit_temperatures is not None:
            data["exit_temperatures"] = list(self.exit_temperatures)
        return data

    def write_json(self, path) -> None:
        """Write the report (e.g. as ``BENCH_pipeline.json``)."""
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def from_dict(cls, data: dict) -> "PipelineReport":
        """Revive a report from its ``to_dict`` form (inverse up to
        the derived ``schema``/``totals`` fields)."""
        item_fields = {f.name for f in dataclass_fields(PipelineStageItem)}
        stages = [
            PipelineStageItem(
                **{k: v for k, v in record.items() if k in item_fields}
            )
            for record in data.get("stages", [])
        ]
        return cls(
            machine=data["machine"],
            model=data["model"],
            strategy=data["strategy"],
            delta=data["delta"],
            merge=data["merge"],
            sweep=str(data.get("sweep", "auto")),
            stages=stages,
            converged=bool(data.get("converged", True)),
            iterations=int(data.get("iterations", 0)),
            wall_time_seconds=float(
                data.get("wall_time_seconds",
                         data.get("totals", {}).get("wall_time_seconds", 0.0))
            ),
            context_stats=dict(data.get("context_stats", {})),
            distinct_kernels=(
                int(distinct) if (distinct := data.get("totals", {})
                                  .get("distinct_kernels")) is not None
                else None
            ),
            exit_temperatures=(
                [float(t) for t in data["exit_temperatures"]]
                if data.get("exit_temperatures") is not None
                else None
            ),
        )


def run_pipeline(
    stages,
    machine_name: str = "rf64",
    *,
    context: AnalysisContext | None = None,
    chip: bool = False,
    strategy: str = "stacked",
    delta: float = 0.01,
    merge: str = "freq",
    engine: str = "auto",
    sweep: str = "auto",
    policy: str = "first-free",
    policies: list[str] | None = None,
    max_iterations: int = 2000,
    warm_start: bool = False,
    entry_state: ThermalState | None = None,
    allocator=None,
    progress=None,
    include_exit_state: bool = False,
) -> PipelineReport:
    """Allocate and analyze a pipeline of kernels, returning its report.

    Parameters
    ----------
    stages:
        Ordered pipeline: workload names (``repro.workloads.load``)
        and/or :class:`~repro.workloads.Workload` objects, freely mixed.
        Repeated names resolve to one shared workload object, so the
        identity-keyed caches compile each distinct kernel once.
    policies:
        Per-stage register-allocation policy names (default: *policy*
        for every stage).  Stages sharing (kernel, policy) share one
        allocated function object.
    strategy / delta / merge / engine / sweep:
        See :func:`analyze_pipeline` (``sweep`` selects the stacked
        stage maps' storage form: dense, CSR, or density-chosen auto).
    warm_start:
        Restart the stacked fixed point from the context's stored
        pipeline-level solution when one is still valid — the
        incremental re-analysis path after in-place stage edits.  Off
        by default so repeated runs stay bitwise reproducible.
    context:
        Use this shared context instead of building one
        (``chip=True`` builds a die-level context otherwise).
    allocator:
        Optional ``(virtual_function, policy_name) -> allocated_function``
        hook.  The service passes its identity-cached allocation here so
        repeated requests resolve to the *same* allocated objects and
        the transfer caches hit across requests.
    progress:
        Optional per-stage / per-sweep event callback (see
        :func:`analyze_pipeline`).
    include_exit_state:
        Carry the pipeline's exit temperature vector on the report
        (``exit_temperatures``) so a coordinator can chain a further
        chunk of stages — possibly on a different worker — from this
        exact state.
    """
    stages = list(stages)
    if not stages:
        raise DataflowError("cannot run an empty pipeline")
    if context is None:
        if machine_name not in MACHINE_PRESETS:
            raise DataflowError(
                f"unknown machine {machine_name!r}; "
                f"available: {sorted(MACHINE_PRESETS)}"
            )
        machine = MACHINE_PRESETS[machine_name]()
        context = (
            AnalysisContext.for_chip(machine)
            if chip
            else AnalysisContext(machine)
        )
    machine = context.machine
    stage_policies = (
        list(policies) if policies is not None else [policy] * len(stages)
    )
    if len(stage_policies) != len(stages):
        raise DataflowError(
            f"got {len(stage_policies)} policies for {len(stages)} stages "
            "— provide exactly one policy per stage (or a single default)"
        )

    # Resolve stages to allocated functions, deduplicating so repeated
    # (kernel, policy) pairs share one function object — the identity
    # keys the transfer and summary caches hit on.
    loaded: dict[str, object] = {}
    allocated: dict[tuple[int, str], Function] = {}
    names: list[str] = []
    functions: list[Function] = []
    workloads = []  # strong refs keep id() keys stable
    for spec, stage_policy in zip(stages, stage_policies):
        if isinstance(spec, str):
            if spec not in loaded:
                loaded[spec] = load(spec)
            workload = loaded[spec]
        else:
            workload = spec
        workloads.append(workload)
        key = (id(workload), stage_policy)
        function = allocated.get(key)
        if function is None:
            if allocator is not None:
                function = allocator(workload.function, stage_policy)
            else:
                function = allocate_linear_scan(
                    workload.function, machine, policy_by_name(stage_policy)
                ).function
            allocated[key] = function
        names.append(workload.name)
        functions.append(function)

    analysis = context.analyze_pipeline(
        functions,
        strategy=strategy,
        entry_state=entry_state,
        progress=progress,
        delta=delta,
        merge=merge,
        engine=engine,
        sweep=sweep,
        max_iterations=max_iterations,
        warm_start=warm_start,
    )

    ambient = context.model.params.ambient
    items = [
        PipelineStageItem(
            name=name,
            policy=stage_policy,
            instructions=function.instruction_count(),
            blocks=len(function.blocks),
            entry_peak_kelvin=float(
                analysis.entry_states[k].temperatures.max()
            ),
            exit_peak_kelvin=float(analysis.exit_states[k].temperatures.max()),
            exit_delta_kelvin=float(
                analysis.exit_states[k].temperatures.max() - ambient
            ),
            peak_kelvin=(
                analysis.stage_results[k].peak_state().peak
                if analysis.stage_results is not None
                else None
            ),
            sweep=(
                analysis.stage_sweep_forms[k]
                if analysis.stage_sweep_forms is not None
                else None
            ),
        )
        for k, (name, function, stage_policy) in enumerate(
            zip(names, functions, stage_policies)
        )
    ]
    return PipelineReport(
        machine=machine.name,
        model="chip" if chip else "rf",
        strategy=strategy,
        delta=delta,
        merge=merge,
        sweep=sweep,
        stages=items,
        converged=analysis.converged,
        iterations=analysis.iterations,
        wall_time_seconds=analysis.wall_time_seconds,
        context_stats=dict(context.stats),
        distinct_kernels=len(allocated),
        exit_temperatures=(
            [float(t) for t in analysis.exit_state().temperatures]
            if include_exit_state else None
        ),
    )
