"""Critical-variable identification."""

import pytest

from repro.arch import rf64
from repro.core import (
    AllocationPlacement,
    ExactPlacement,
    analyze,
    hotspot_contribution_map,
    rank_critical_variables,
)
from repro.ir.values import vreg
from repro.regalloc import FirstFreePolicy, allocate_linear_scan
from repro.workloads import load


@pytest.fixture(scope="module")
def machine():
    return rf64()


@pytest.fixture(scope="module")
def setup(machine):
    wl = load("fib")  # %a/%b ping-pong: clear critical pair
    allocation = allocate_linear_scan(wl.function, machine, FirstFreePolicy())
    placement = AllocationPlacement(allocation, 64)
    result = analyze(wl.function, machine, delta=0.01, placement=placement)
    return wl, allocation, placement, result


class TestRanking:
    def test_loop_variables_rank_above_entry_constants(self, setup):
        wl, _alloc, placement, result = setup
        ranking = rank_critical_variables(result, placement)
        assert ranking, "ranking must not be empty"
        top_names = {str(cv.reg) for cv in ranking[:3]}
        # The fib loop registers dominate; the loop bound %t2 (limit) is
        # read every iteration too, so accept any loop-resident register.
        loop_regs = {"%t0", "%t1", "%t2", "%t3", "%l_i4", "%i_i0"}
        assert top_names & loop_regs

    def test_scores_non_negative_and_sorted(self, setup):
        _wl, _alloc, placement, result = setup
        ranking = rank_critical_variables(result, placement)
        scores = [cv.score for cv in ranking]
        assert scores == sorted(scores, reverse=True)
        assert all(s >= 0 for s in scores)

    def test_top_k_truncation(self, setup):
        _wl, _alloc, placement, result = setup
        assert len(rank_critical_variables(result, placement, top_k=2)) == 2

    def test_spilled_variables_excluded(self, machine):
        """Variables with zero placement mass (memory-resident) don't rank."""
        wl = load("fib")
        allocation = allocate_linear_scan(wl.function, machine)
        mapping = dict(allocation.mapping)
        # Pretend the hottest variable was spilled.
        victim = next(iter(mapping))
        del mapping[victim]
        placement = AllocationPlacement.from_mapping(mapping, 64)
        result = analyze(wl.function, machine, delta=0.05, placement=placement)
        ranking = rank_critical_variables(result, placement)
        assert victim not in {cv.reg for cv in ranking}

    def test_accesses_counted(self, setup):
        _wl, _alloc, placement, result = setup
        ranking = rank_critical_variables(result, placement)
        by_name = {str(cv.reg): cv for cv in ranking}
        # fib's %t0 (a) is defined once + copied/used every iteration.
        for cv in ranking:
            assert cv.accesses >= 1
            assert cv.peak_excess >= 0.0


class TestContributionMap:
    def test_mass_where_assigned(self, setup):
        _wl, alloc, placement, result = setup
        contributions = hotspot_contribution_map(result, placement)
        for reg, contribution in contributions.items():
            if reg in alloc.mapping:
                assert contribution[alloc.mapping[reg]] > 0.0

    def test_loop_register_contributes_most(self, setup):
        _wl, _alloc, placement, result = setup
        contributions = hotspot_contribution_map(result, placement)
        totals = {str(r): c.sum() for r, c in contributions.items()}
        # Loop-resident registers out-contribute the one-shot entry li's.
        hottest = max(totals, key=totals.get)
        assert totals[hottest] > 5.0
